#!/usr/bin/env python3
"""Quickstart: detect and remove an unnecessary DISTINCT.

Builds the paper's supplier database (Figure 1), runs Example 1's query,
asks Algorithm 1 whether the DISTINCT is needed, rewrites the query, and
shows that the rewritten query returns the same rows without sorting.

Run:  python examples/quickstart.py
"""

from repro import Stats, execute, optimize, test_uniqueness
from repro.engine import Database

SCHEMA_AND_DATA = """
CREATE TABLE SUPPLIER (
  SNO INT, SNAME VARCHAR(30), SCITY VARCHAR(20), BUDGET INT, STATUS VARCHAR(10),
  PRIMARY KEY (SNO),
  CHECK (SNO BETWEEN 1 AND 499),
  CHECK (SCITY IN ('Chicago', 'New York', 'Toronto')));

CREATE TABLE PARTS (
  SNO INT, PNO INT, PNAME VARCHAR(30), OEM-PNO INT, COLOR VARCHAR(10),
  PRIMARY KEY (SNO, PNO),
  UNIQUE (OEM-PNO));

INSERT INTO SUPPLIER VALUES
  (1, 'Acme', 'Toronto', 100, 'Active'),
  (2, 'Baker', 'Chicago', 50, 'Active'),
  (3, 'Acme', 'Toronto', 75, 'Active');

INSERT INTO PARTS VALUES
  (1, 10, 'bolt', 100, 'RED'),
  (1, 11, 'nut', 101, 'BLUE'),
  (2, 10, 'bolt', 102, 'RED'),
  (3, 12, 'cam', 103, 'RED');
"""

QUERY = """
SELECT DISTINCT S.SNO, P.PNO, P.PNAME
FROM SUPPLIER S, PARTS P
WHERE S.SNO = P.SNO AND P.COLOR = 'RED'
"""


def main() -> None:
    db = Database.from_script(SCHEMA_AND_DATA)

    print("Query (the paper's Example 1):")
    print(QUERY.strip(), "\n")

    # 1. Ask Algorithm 1 directly.
    verdict = test_uniqueness(QUERY, db.catalog)
    print("Algorithm 1 says:", "YES — DISTINCT is unnecessary"
          if verdict.unique else "NO — keep DISTINCT")
    print(verdict.explain(), "\n")

    # 2. Let the optimizer rewrite the query.
    optimized = optimize(QUERY, db.catalog)
    print("Rewritten SQL:", optimized.sql, "\n")
    print(optimized.explain(), "\n")

    # 3. Execute both and compare.
    stats_before, stats_after = Stats(), Stats()
    before = execute(QUERY, db, stats=stats_before)
    after = execute(optimized.query, db, stats=stats_after)

    print("Result (identical for both):")
    print(after.to_table(), "\n")
    print(f"original:  {stats_before.sorts} sort(s), "
          f"{stats_before.sort_rows} rows sorted")
    print(f"rewritten: {stats_after.sorts} sort(s), "
          f"{stats_after.sort_rows} rows sorted")
    assert before == after


if __name__ == "__main__":
    main()
