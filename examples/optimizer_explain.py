#!/usr/bin/env python3
"""Walk through every worked example in the paper with full traces.

For each of the paper's Examples 1–11: print the original SQL, the
optimizer's rewrite trace (which theorem justified each step), the final
SQL, and — where a relational execution is meaningful — the physical
plan the engine chooses.

Run:  python examples/optimizer_explain.py
"""

from repro.core import Optimizer
from repro.engine import Planner
from repro.workloads import PAPER_QUERIES, build_catalog


def main() -> None:
    catalog = build_catalog()
    relational = Optimizer.for_relational(catalog)
    navigational = Optimizer.for_navigational(catalog)

    for query in PAPER_QUERIES:
        print("=" * 72)
        print(f"Example {query.example}: {query.description}")
        print("-" * 72)
        print("SQL:", query.sql)

        # Examples 10 and 11 target navigational backends.
        optimizer = navigational if query.example in ("10", "11") else relational
        outcome = optimizer.optimize(query.sql)
        print()
        if outcome.changed:
            print(outcome.explain())
            print()
            print("final SQL:", outcome.sql)
        else:
            print("(no rewrite applies — the query is already in its best "
                  "form for this backend)")

        if query.example not in ("10", "11"):
            plan = Planner(catalog).plan(outcome.query)
            print()
            print("physical plan:")
            print(plan.explain(indent=1))
        print()


if __name__ == "__main__":
    main()
