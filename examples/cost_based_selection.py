#!/usr/bin/env python3
"""Scenario: close the loop the paper leaves open — pick a strategy.

Section 5 of the paper: "Once the optimizer identifies possible
transformations, it can then choose the most appropriate strategy on
the basis of its cost model."  This example prices every rewrite stage
of three queries against a generated instance and shows the selector's
choice, then verifies the chosen form by executing it.

Run:  python examples/cost_based_selection.py
"""

from repro import Stats, execute, execute_planned
from repro.core import StrategySelector
from repro.workloads import SupplierScale, build_database, generate

QUERIES = [
    ("redundant DISTINCT (Example 1)",
     "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
     "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"),
    ("correlated EXISTS (Example 7 family)",
     "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S WHERE EXISTS "
     "(SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)"),
    ("INTERSECT (Example 9)",
     "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
     "INTERSECT SELECT ALL A.SNO FROM AGENTS A "
     "WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'"),
]

PARAMS = {"PART-NO": 3}


def main() -> None:
    db = build_database(
        generate(SupplierScale(suppliers=150, parts_per_supplier=12))
    )
    selector = StrategySelector(db)

    for label, sql in QUERIES:
        print("=" * 72)
        print(label)
        print("  ", sql)
        choice = selector.choose(sql)
        print()
        print(choice.explain())
        print()

        baseline = execute(sql, db, params=PARAMS)
        stats = Stats()
        chosen = execute_planned(choice.query, db, params=PARAMS, stats=stats)
        assert baseline.same_rows(chosen)
        print(f"chosen strategy verified: {len(chosen)} rows; "
              f"{stats.describe()}")
        print()


if __name__ == "__main__":
    main()
