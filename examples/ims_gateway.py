#!/usr/bin/env python3
"""Scenario: the paper's §6.1 — SQL over a relational view of IMS.

Builds the Figure 2 hierarchy (SUPPLIER root with PARTS and AGENTS
children), then runs Example 10's join both ways through the gateway:

* as the straightforward nested-loop *join* program (lines 21–29), and
* as the *nested query* program after the join→subquery rewrite
  (lines 30–35),

and shows the DL/I call counts — the nested form issues exactly half the
GNP calls against PARTS.

Run:  python examples/ims_gateway.py
"""

from repro.core import Optimizer
from repro.ims import GatewayStats, ImsGateway
from repro.workloads import SupplierScale, build_ims_database, generate

JOIN_SQL = (
    "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO"
)


def main() -> None:
    data = generate(SupplierScale(suppliers=50, parts_per_supplier=8))
    ims = build_ims_database(data)
    gateway = ImsGateway(ims)

    print("Relational view of the hierarchy:")
    print(gateway.catalog().describe(), "\n")

    # The navigational optimizer folds PARTS into an EXISTS probe.
    optimizer = Optimizer.for_navigational(gateway.catalog())
    rewritten = optimizer.optimize(JOIN_SQL)
    print("Original:  ", JOIN_SQL)
    print("Rewritten: ", rewritten.sql)
    print()
    print(rewritten.explain(), "\n")

    params = {"PARTNO": 3}
    join_stats, exists_stats = GatewayStats(), GatewayStats()
    join_result = gateway.execute(JOIN_SQL, params=params, stats=join_stats)
    exists_result = gateway.execute(
        rewritten.sql, params=params, stats=exists_stats
    )
    assert join_result.same_rows(exists_result)

    print(f"result rows: {len(join_result)} (identical for both programs)\n")
    print("DL/I work, join program (paper lines 21-29):")
    print("  " + join_stats.describe())
    print("DL/I work, nested program (paper lines 30-35):")
    print("  " + exists_stats.describe())
    print()
    halved = (
        join_stats.dli.calls_to("PARTS", "GNP")
        // exists_stats.dli.calls_to("PARTS", "GNP")
    )
    print(f"GNP calls against PARTS reduced by a factor of {halved} "
          "(the paper's claim: the second GNP per supplier always fails)")


if __name__ == "__main__":
    main()
