#!/usr/bin/env python3
"""Scenario: audit a CASE-tool query workload for redundant DISTINCTs.

The paper's §5.1 motivation: query generators and defensive coding put
DISTINCT on everything.  This example runs Algorithm 1 over a batch of
templated queries against the supplier schema, reports which DISTINCTs
are provably redundant, and measures the sort work saved at execution
time on a generated instance.

Run:  python examples/case_tool_audit.py
"""

from repro import Stats, execute, optimize, test_uniqueness
from repro.workloads import SupplierScale, build_database, generate

# What a code generator might emit: every query gets DISTINCT "to be safe".
WORKLOAD = [
    ("supplier directory",
     "SELECT DISTINCT SNO, SNAME, SCITY FROM SUPPLIER"),
    ("red part listing",
     "SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P "
     "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"),
    ("parts of one supplier",
     "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P "
     "WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO"),
    ("agents by supplier",
     "SELECT DISTINCT A.ANO, A.ANAME, S.SNO FROM AGENTS A, SUPPLIER S "
     "WHERE A.SNO = S.SNO"),
    ("cities with red parts",  # genuinely needs DISTINCT
     "SELECT DISTINCT S.SCITY FROM SUPPLIER S, PARTS P "
     "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"),
    ("supplier names",  # genuinely needs DISTINCT
     "SELECT DISTINCT SNAME FROM SUPPLIER"),
]

PARAMS = {"SUPPLIER-NO": 1}


def main() -> None:
    db = build_database(
        generate(SupplierScale(suppliers=200, parts_per_supplier=15))
    )

    print(f"{'query':<28}{'verdict':<22}{'rows sorted saved':>18}")
    print("-" * 68)

    total_saved = 0
    for label, sql in WORKLOAD:
        verdict = test_uniqueness(sql, db.catalog)
        if verdict.unique:
            optimized = optimize(sql, db.catalog)
            before, after = Stats(), Stats()
            execute(sql, db, params=PARAMS, stats=before)
            execute(optimized.query, db, params=PARAMS, stats=after)
            saved = before.sort_rows - after.sort_rows
            total_saved += saved
            print(f"{label:<28}{'DISTINCT removable':<22}{saved:>18}")
        else:
            print(f"{label:<28}{'DISTINCT required':<22}{'-':>18}")

    print("-" * 68)
    print(f"{'total rows spared the sort':<50}{total_saved:>18}")


if __name__ == "__main__":
    main()
