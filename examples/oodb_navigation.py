#!/usr/bin/env python3
"""Scenario: the paper's §6.2 — navigation strategies in an object store.

Builds the Figure 3 object model (PARTS and AGENTS hold OID pointers to
their SUPPLIER) and runs Example 11's join two ways:

* forward navigation (paper lines 36–42): start from PARTS via the PNO
  index, dereference every part's SUPPLIER pointer, discard parents
  outside the SNO range;
* rewritten navigation (lines 43–48): after the join→subquery rewrite,
  start from the selective SUPPLIER range and probe PARTS per supplier,
  stopping at the first match.

Object-fetch counts are printed for a sweep of range widths, exposing
the selectivity crossover the paper alludes to.

Run:  python examples/oodb_navigation.py
"""

from repro.core import Optimizer
from repro.oodb import ObjectStats, forward_join, selective_exists
from repro.workloads import (
    SupplierScale,
    build_catalog,
    build_object_store,
    generate,
)

QUERY = (
    "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
    "WHERE S.SNO BETWEEN :LO AND :HI AND S.SNO = P.SNO AND P.PNO = :PARTNO"
)
PARTNO = 3


def main() -> None:
    data = generate(SupplierScale(suppliers=100, parts_per_supplier=6))
    store = build_object_store(data)

    rewritten = Optimizer.for_navigational(build_catalog()).optimize(QUERY)
    print("Original:  ", QUERY)
    print("Rewritten: ", rewritten.sql, "\n")

    print(f"{'range':>8} {'forward fetches':>16} {'rewritten fetches':>18} "
          f"{'winner':>10}")
    print("-" * 56)
    for width in (2, 5, 10, 25, 50, 100):
        lo, hi = 1, width

        store.stats = ObjectStats()
        forward = forward_join(
            store, "PARTS", "PNO", PARTNO, "SUPPLIER",
            lambda s: lo <= s.get("SNO") <= hi,
        )
        f_cost = store.stats.total_fetches()

        store.stats = ObjectStats()
        probed = selective_exists(
            store, "SUPPLIER", "SNO", lo, hi,
            "PARTS", "PNO", PARTNO, "SUPPLIER",
        )
        r_cost = store.stats.total_fetches()

        assert sorted(o.get("SNO") for o in forward) == sorted(
            o.get("SNO") for o in probed
        )
        winner = "rewritten" if r_cost < f_cost else "forward"
        print(f"{width:>8} {f_cost:>16} {r_cost:>18} {winner:>10}")

    print("\nforward navigation touches every matching part's parent; the "
          "rewritten strategy's cost tracks the parent range width.")


if __name__ == "__main__":
    main()
