"""Object store with extents, attribute indexes, and fetch accounting.

Every object *fetch* (materializing an object from its OID or scanning
an extent) is counted — the §6.2 argument is entirely about how many
objects each navigation strategy touches.  Index lookups return OIDs
without fetching; dereferencing them is the part that costs.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import OodbError
from ..types.values import SqlValue
from .model import Oid, OoClass, OoObject


@dataclass
class ObjectStats:
    """Work counters for navigational execution."""

    fetches: Counter = field(default_factory=Counter)  # class -> n
    index_lookups: int = 0
    pointer_derefs: int = 0

    def fetches_of(self, class_name: str) -> int:
        """Objects of one class fetched so far."""
        return self.fetches[class_name.upper()]

    def total_fetches(self) -> int:
        """Objects fetched across every class."""
        return sum(self.fetches.values())

    def reset(self) -> None:
        """Zero every counter."""
        self.fetches.clear()
        self.index_lookups = 0
        self.pointer_derefs = 0

    def describe(self) -> str:
        """Compact one-line summary of all counters."""
        parts = [
            f"fetch {name}={count}" for name, count in sorted(self.fetches.items())
        ]
        parts.append(f"index_lookups={self.index_lookups}")
        parts.append(f"pointer_derefs={self.pointer_derefs}")
        return ", ".join(parts)


class _Index:
    """A sorted attribute index mapping values to OID lists."""

    def __init__(self) -> None:
        self._keys: list = []
        self._buckets: dict = {}

    def add(self, value: SqlValue, oid: Oid) -> None:
        if value not in self._buckets:
            bisect.insort(self._keys, value)
            self._buckets[value] = []
        self._buckets[value].append(oid)

    def lookup(self, value: SqlValue) -> list[Oid]:
        return list(self._buckets.get(value, ()))

    def range(self, low: SqlValue, high: SqlValue) -> list[Oid]:
        start = bisect.bisect_left(self._keys, low)
        end = bisect.bisect_right(self._keys, high)
        oids: list[Oid] = []
        for key in self._keys[start:end]:
            oids.extend(self._buckets[key])
        return oids


class ObjectStore:
    """Class registry, extents, and indexes."""

    def __init__(self, stats: ObjectStats | None = None) -> None:
        self.stats = stats or ObjectStats()
        self._classes: dict[str, OoClass] = {}
        self._extents: dict[str, list[OoObject]] = {}
        self._indexes: dict[tuple[str, str], _Index] = {}

    # ------------------------------------------------------------------
    # schema

    def define_class(self, oo_class: OoClass) -> OoClass:
        """Register a class (reference targets must already exist)."""
        if oo_class.name in self._classes:
            raise OodbError(f"class {oo_class.name!r} already defined")
        for target in oo_class.references.values():
            if target not in self._classes:
                raise OodbError(
                    f"reference target class {target!r} is not defined"
                )
        self._classes[oo_class.name] = oo_class
        self._extents[oo_class.name] = []
        return oo_class

    def oo_class(self, name: str) -> OoClass:
        """Look up a class definition by name."""
        try:
            return self._classes[name.upper()]
        except KeyError:
            raise OodbError(f"unknown class {name!r}") from None

    def create_index(self, class_name: str, attribute: str) -> None:
        """Build an index on one attribute (retroactively as well)."""
        oo_class = self.oo_class(class_name)
        attribute = attribute.upper()
        if attribute not in oo_class.attributes:
            raise OodbError(
                f"class {oo_class.name!r} has no attribute {attribute!r}"
            )
        index = _Index()
        for obj in self._extents[oo_class.name]:
            index.add(obj.get(attribute), obj.oid)
        self._indexes[(oo_class.name, attribute)] = index

    # ------------------------------------------------------------------
    # objects

    def create(
        self,
        class_name: str,
        values: dict[str, SqlValue],
        refs: dict[str, Oid] | None = None,
    ) -> OoObject:
        """Store a new object; every scalar attribute must be supplied.

        *refs* maps reference attributes to OIDs of existing objects
        (the child→parent pointers of Figure 3).
        """
        oo_class = self.oo_class(class_name)
        normalized = {key.upper(): value for key, value in values.items()}
        missing = set(oo_class.attributes) - set(normalized)
        if missing:
            raise OodbError(f"missing attributes: {sorted(missing)}")
        normalized_refs: dict[str, Oid] = {}
        for attr, oid in (refs or {}).items():
            attr = attr.upper()
            if attr not in oo_class.references:
                raise OodbError(
                    f"class {oo_class.name!r} has no reference {attr!r}"
                )
            normalized_refs[attr] = oid
        extent = self._extents[oo_class.name]
        obj = OoObject(Oid(oo_class.name, len(extent)), normalized, normalized_refs)
        extent.append(obj)
        for (cls, attribute), index in self._indexes.items():
            if cls == oo_class.name:
                index.add(obj.get(attribute), obj.oid)
        return obj

    def deref(self, oid: Oid) -> OoObject:
        """Fetch an object through its OID (counted)."""
        try:
            obj = self._extents[oid.class_name][oid.slot]
        except (KeyError, IndexError):
            raise OodbError(f"dangling OID {oid}") from None
        self.stats.fetches[oid.class_name] += 1
        self.stats.pointer_derefs += 1
        return obj

    def scan(self, class_name: str) -> Iterator[OoObject]:
        """Full extent scan (each object fetch counted)."""
        for obj in self._extents[self.oo_class(class_name).name]:
            self.stats.fetches[obj.oid.class_name] += 1
            yield obj

    def extent_size(self, class_name: str) -> int:
        """Number of stored objects of one class."""
        return len(self._extents[self.oo_class(class_name).name])

    # ------------------------------------------------------------------
    # index access

    def index_lookup(self, class_name: str, attribute: str, value: SqlValue) -> list[Oid]:
        """Point lookup; returns OIDs without fetching."""
        self.stats.index_lookups += 1
        return self._index(class_name, attribute).lookup(value)

    def index_range(
        self, class_name: str, attribute: str, low: SqlValue, high: SqlValue
    ) -> list[Oid]:
        """Inclusive range lookup; returns OIDs without fetching."""
        self.stats.index_lookups += 1
        return self._index(class_name, attribute).range(low, high)

    def has_index(self, class_name: str, attribute: str) -> bool:
        """Whether an index exists on (class, attribute)."""
        return (self.oo_class(class_name).name, attribute.upper()) in self._indexes

    def _index(self, class_name: str, attribute: str) -> _Index:
        key = (self.oo_class(class_name).name, attribute.upper())
        try:
            return self._indexes[key]
        except KeyError:
            raise OodbError(
                f"no index on {key[0]}.{key[1]}; create_index first"
            ) from None
