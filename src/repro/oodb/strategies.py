"""Navigational execution strategies for parent/child joins (§6.2).

Example 11's query::

    SELECT ALL S.* FROM SUPPLIER S, PARTS P
    WHERE S.SNO BETWEEN 10 AND 20 AND S.SNO = P.SNO AND P.PNO = :PARTNO

admits two navigations over the child→parent pointer model:

* :func:`forward_join` (lines 36–42): start from the child class via
  its attribute index and dereference every child's parent pointer —
  many parents are fetched only to fail the range test;
* :func:`selective_exists` (lines 43–48): after the join→subquery
  rewrite, start from the *selective* parent range and probe the child
  index per parent, stopping at the first child whose parent pointer
  matches — the EXISTS semantics.

Which wins depends on selectivities; benchmark E8 sweeps the crossover.
"""

from __future__ import annotations

from typing import Callable

from ..types.values import SqlValue
from .model import OoObject
from .store import ObjectStore

ParentPredicate = Callable[[OoObject], bool]


def forward_join(
    store: ObjectStore,
    child_class: str,
    child_attr: str,
    child_value: SqlValue,
    parent_ref: str,
    parent_predicate: ParentPredicate,
) -> list[OoObject]:
    """Navigate child -> parent; emit each parent passing the predicate.

    One output per qualifying (child, parent) pair — the multiset join.
    """
    output: list[OoObject] = []
    for child_oid in store.index_lookup(child_class, child_attr, child_value):
        child = store.deref(child_oid)
        parent = store.deref(child.ref(parent_ref))
        if parent_predicate(parent):
            output.append(parent)
    return output


def selective_exists(
    store: ObjectStore,
    parent_class: str,
    parent_attr: str,
    low: SqlValue,
    high: SqlValue,
    child_class: str,
    child_attr: str,
    child_value: SqlValue,
    parent_ref: str,
) -> list[OoObject]:
    """Navigate parent-range -> child probe with early termination.

    For each parent in the attribute range, scan the child index bucket
    for *child_value* and stop at the first child pointing back at this
    parent (EXISTS semantics); emit the parent when found.
    """
    output: list[OoObject] = []
    for parent_oid in store.index_range(parent_class, parent_attr, low, high):
        parent = store.deref(parent_oid)
        store.stats.index_lookups += 1
        found = False
        for child_oid in store._index(child_class, child_attr).lookup(child_value):
            child = store.deref(child_oid)
            if child.ref(parent_ref) == parent.oid:
                found = True
                break
        if found:
            output.append(parent)
    return output


def full_scan_join(
    store: ObjectStore,
    parent_class: str,
    parent_predicate: ParentPredicate,
    child_class: str,
    child_attr: str,
    child_value: SqlValue,
    parent_ref: str,
) -> list[OoObject]:
    """Baseline without any index: scan the child extent, dereference
    parents, filter.  The worst strategy; included for benchmarks."""
    output: list[OoObject] = []
    for child in store.scan(child_class):
        if child.get(child_attr) != child_value:
            continue
        parent = store.deref(child.ref(parent_ref))
        if parent_predicate(parent):
            output.append(parent)
    return output
