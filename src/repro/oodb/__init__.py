"""Object-oriented database simulator: OIDs, extents, navigation."""

from .model import Oid, OoClass, OoObject
from .store import ObjectStats, ObjectStore
from .strategies import forward_join, full_scan_join, selective_exists

__all__ = [
    "ObjectStats",
    "ObjectStore",
    "Oid",
    "OoClass",
    "OoObject",
    "forward_join",
    "full_scan_join",
    "selective_exists",
]
