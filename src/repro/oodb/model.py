"""Object model: classes, objects, and physical OIDs (Figure 3).

In the paper's object-oriented setting (modelled on EXODUS and O₂),
*object identifiers* replace foreign keys, and each child object holds a
pointer **to its parent** — the direction that makes parent-restricted
joins awkward, motivating the join→subquery rewrite of §6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import OodbError
from ..types.values import SqlValue


@dataclass(frozen=True)
class Oid:
    """A physical object identifier: class name plus slot number."""

    class_name: str
    slot: int

    def __str__(self) -> str:
        return f"{self.class_name}#{self.slot}"


@dataclass
class OoClass:
    """A class definition.

    Attributes:
        name: class name (upper case).
        attributes: scalar attribute names.
        key_attribute: the primary-key attribute (unique per parent for
            child classes, mirroring the paper's relational schema).
        references: reference attribute -> target class name; these hold
            OIDs (child→parent pointers in the supplier model).
    """

    name: str
    attributes: list[str]
    key_attribute: str | None = None
    references: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.name = self.name.upper()
        self.attributes = [a.upper() for a in self.attributes]
        if self.key_attribute is not None:
            self.key_attribute = self.key_attribute.upper()
            if self.key_attribute not in self.attributes:
                raise OodbError(
                    f"key attribute {self.key_attribute!r} is not an "
                    f"attribute of class {self.name!r}"
                )
        self.references = {
            attr.upper(): target.upper()
            for attr, target in self.references.items()
        }


@dataclass
class OoObject:
    """One stored object."""

    oid: Oid
    values: dict[str, SqlValue]
    refs: dict[str, Oid] = field(default_factory=dict)

    def get(self, attribute: str) -> SqlValue:
        """The value of one scalar attribute."""
        try:
            return self.values[attribute.upper()]
        except KeyError:
            raise OodbError(
                f"object {self.oid} has no attribute {attribute!r}"
            ) from None

    def ref(self, attribute: str) -> Oid:
        """The OID stored in one reference attribute."""
        try:
            return self.refs[attribute.upper()]
        except KeyError:
            raise OodbError(
                f"object {self.oid} has no reference {attribute!r}"
            ) from None
