"""Column metadata."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..types.domains import Domain


@dataclass(frozen=True)
class Column:
    """A column of a base table.

    Attributes:
        name: column name (upper case, matching the lexer's normalization).
        type_name: declared SQL type name.
        length: declared length for character types, if any.
        nullable: whether NULL may be stored. Primary-key columns are
            automatically non-nullable.
        domain: the value domain, possibly narrowed by CHECK constraints.
    """

    name: str
    type_name: str = "INT"
    length: int | None = None
    nullable: bool = True
    domain: Domain | None = None

    def effective_domain(self) -> Domain:
        """The column's domain, defaulting to an open domain of its type."""
        if self.domain is not None:
            if self.domain.nullable != self.nullable:
                return replace(self.domain, nullable=self.nullable)
            return self.domain
        return Domain(type_name=self.type_name, nullable=self.nullable)

    def with_nullable(self, nullable: bool) -> "Column":
        """A copy with a different nullability."""
        return replace(self, nullable=nullable)

    def with_domain(self, domain: Domain) -> "Column":
        """A copy with a (narrowed) domain attached."""
        return replace(self, domain=domain)
