"""The catalog: a registry of table schemas, loadable from DDL."""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from ..errors import CatalogError, UnknownTableError
from ..sql.ast import (
    CheckClause,
    CreateTable,
    ForeignKeyClause,
    PrimaryKeyClause,
    UniqueClause,
)
from ..sql.parser import parse_script
from .column import Column
from .constraints import CheckConstraint, ForeignKeyConstraint, KeyConstraint
from .inference import narrow_domains
from .table import TableSchema


class Catalog:
    """A named collection of :class:`TableSchema` objects.

    Schemas can be registered directly (see
    :class:`repro.catalog.builder.TableBuilder`) or created from
    ``CREATE TABLE`` statements with :meth:`execute_ddl` /
    :meth:`from_ddl`.
    """

    #: Process-wide id source so fingerprints never collide across
    #: catalog instances (object ids can be recycled by the allocator).
    _tokens = itertools.count(1)

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}
        self._token = next(Catalog._tokens)
        self._version = 0

    # ------------------------------------------------------------------
    # registration and lookup

    def register(self, schema: TableSchema) -> TableSchema:
        """Add *schema*; replaces any table of the same name."""
        self._tables[schema.name.upper()] = schema
        self._version += 1
        return schema

    def drop(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name.upper() not in self._tables:
            raise UnknownTableError(name)
        del self._tables[name.upper()]
        self._version += 1

    def fingerprint(self) -> tuple[int, int]:
        """A hashable token identifying this catalog *at this schema
        version*.

        Every DDL action (:meth:`register`, :meth:`drop`, and therefore
        :meth:`execute_ddl`) bumps the version, so any cache keyed on
        the fingerprint is invalidated by schema change without the
        cache ever being told.  Registered :class:`TableSchema` objects
        are treated as immutable — mutating one in place bypasses this
        contract (re-register instead).
        """
        return (self._token, self._version)

    def table(self, name: str) -> TableSchema:
        """Look up a table schema by (case-insensitive) name."""
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        """Whether a table of this name is registered."""
        return name.upper() in self._tables

    def table_names(self) -> list[str]:
        """All registered table names, sorted."""
        return sorted(self._tables)

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __len__(self) -> int:
        return len(self._tables)

    # ------------------------------------------------------------------
    # DDL ingestion

    def execute_ddl(self, statement: CreateTable) -> TableSchema:
        """Create a table from a parsed ``CREATE TABLE`` statement."""
        if self.has_table(statement.name):
            raise CatalogError(f"table {statement.name!r} already exists")

        columns: list[Column] = []
        checks: list[CheckConstraint] = []
        keys: list[KeyConstraint] = []
        foreign_keys: list[ForeignKeyConstraint] = []

        for column_def in statement.columns:
            columns.append(
                Column(
                    name=column_def.name,
                    type_name=column_def.type_name,
                    length=column_def.length,
                    nullable=not column_def.not_null,
                )
            )
            if column_def.check is not None:
                checks.append(CheckConstraint(column_def.check))

        for clause in statement.constraints:
            if isinstance(clause, PrimaryKeyClause):
                if any(key.is_primary for key in keys):
                    raise CatalogError(
                        f"table {statement.name!r} has two primary keys"
                    )
                keys.append(KeyConstraint(clause.columns, is_primary=True))
            elif isinstance(clause, UniqueClause):
                keys.append(KeyConstraint(clause.columns, is_primary=False))
            elif isinstance(clause, CheckClause):
                checks.append(CheckConstraint(clause.condition))
            elif isinstance(clause, ForeignKeyClause):
                foreign_keys.append(
                    ForeignKeyConstraint(
                        clause.columns, clause.ref_table, clause.ref_columns
                    )
                )
            else:  # pragma: no cover - parser produces only the above
                raise CatalogError(f"unsupported constraint: {clause!r}")

        # Primary-key columns cannot contain NULL (SQL2 / paper §2.1).
        primary_columns: set[str] = set()
        for key in keys:
            if key.is_primary:
                primary_columns.update(key.columns)
        columns = [
            column.with_nullable(False)
            if column.name in primary_columns
            else column
            for column in columns
        ]

        schema = TableSchema(
            name=statement.name.upper(),
            columns=columns,
            keys=keys,
            checks=checks,
            foreign_keys=foreign_keys,
        )
        # Narrow column domains using the CHECK constraints, so the exact
        # Theorem 1 checker can enumerate small active domains.
        domains = narrow_domains(schema)
        schema.columns = [
            column.with_domain(domains[column.name]) for column in schema.columns
        ]
        schema.__post_init__()
        return self.register(schema)

    @classmethod
    def from_ddl(cls, script: str) -> "Catalog":
        """Build a catalog from a script of ``CREATE TABLE`` statements."""
        catalog = cls()
        catalog.load_ddl(script)
        return catalog

    def load_ddl(self, script: str) -> None:
        """Execute every ``CREATE TABLE`` in *script* against this catalog."""
        for statement in parse_script(script):
            if isinstance(statement, CreateTable):
                self.execute_ddl(statement)
            else:
                raise CatalogError(
                    "only CREATE TABLE statements are allowed in DDL scripts"
                )

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable description of every table."""
        return "\n\n".join(
            self._tables[name].describe() for name in sorted(self._tables)
        )
