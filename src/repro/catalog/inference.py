"""Domain inference from CHECK constraints.

A CHECK constraint typically narrows a column's domain — the paper's
SUPPLIER example uses ``CHECK (SNO BETWEEN 1 AND 499)`` and
``CHECK (SCITY IN ('Chicago', 'New York', 'Toronto'))``.  The exact
Theorem 1 checker enumerates small active domains; this module extracts
those domains from the constraint expressions.

Only *top-level conjuncts* of a CHECK condition that mention a single
column narrow that column's domain; disjunctions over several columns
(like the paper's ``BUDGET <> 0 OR STATUS = 'Inactive'``) are handled by
the checker as residual constraints instead.
"""

from __future__ import annotations

from ..sql.expressions import (
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    column_refs,
    conjuncts,
)
from ..types.domains import Domain
from ..types.values import is_null
from .table import TableSchema


def narrow_domains(table: TableSchema) -> dict[str, Domain]:
    """Infer per-column domains for *table* from its CHECK constraints.

    Returns a mapping from column name to the narrowed domain; columns
    without a usable narrowing keep their declared (open) domain.
    """
    domains = {
        column.name: column.effective_domain() for column in table.columns
    }
    for check in table.checks:
        for conjunct in conjuncts(check.condition):
            narrowing = _narrowing_from_conjunct(conjunct)
            if narrowing is None:
                continue
            column, domain = narrowing
            if column in domains:
                domains[column] = domains[column].intersect(domain)
    return domains


def _narrowing_from_conjunct(expr: Expr) -> tuple[str, Domain] | None:
    """Extract a ``(column, domain)`` narrowing from one conjunct."""
    refs = {ref.column for ref in column_refs(expr)}
    if len(refs) != 1:
        return None
    column = next(iter(refs))

    if isinstance(expr, Between):
        low = _literal_value(expr.low)
        high = _literal_value(expr.high)
        if (
            not expr.negated
            and isinstance(expr.operand, ColumnRef)
            and isinstance(low, int)
            and isinstance(high, int)
        ):
            return column, Domain.integer_range(low, high)
        return None

    if isinstance(expr, InList) and not expr.negated:
        if not isinstance(expr.operand, ColumnRef):
            return None
        values = []
        for item in expr.items:
            value = _literal_value(item)
            if value is _MISSING or is_null(value):
                return None
            values.append(value)
        return column, Domain.enumeration(values)

    if isinstance(expr, Comparison):
        return _narrowing_from_comparison(column, expr)

    return None


def _narrowing_from_comparison(
    column: str, expr: Comparison
) -> tuple[str, Domain] | None:
    comparison = expr
    if isinstance(comparison.right, ColumnRef) and isinstance(
        comparison.left, Literal
    ):
        comparison = comparison.flipped()
    if not isinstance(comparison.left, ColumnRef):
        return None
    value = _literal_value(comparison.right)
    if value is _MISSING or is_null(value):
        return None
    if comparison.op == "=":
        return column, Domain.enumeration([value])
    if not isinstance(value, int):
        return None
    if comparison.op == ">=":
        return column, Domain(type_name="INT", low=value)
    if comparison.op == ">":
        return column, Domain(type_name="INT", low=value + 1)
    if comparison.op == "<=":
        return column, Domain(type_name="INT", high=value)
    if comparison.op == "<":
        return column, Domain(type_name="INT", high=value - 1)
    return None


_MISSING = object()


def _literal_value(expr: Expr):
    if isinstance(expr, Literal):
        return expr.value
    return _MISSING
