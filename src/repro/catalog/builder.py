"""Fluent builders for constructing schemas programmatically.

Example::

    catalog = (
        CatalogBuilder()
        .table("SUPPLIER")
        .column("SNO", "INT")
        .column("SNAME", "VARCHAR")
        .primary_key("SNO")
        .check("SNO BETWEEN 1 AND 499")
        .finish()
        .build()
    )
"""

from __future__ import annotations

from ..errors import CatalogError
from ..sql.parser import parse_condition
from ..types.domains import Domain
from .column import Column
from .constraints import CheckConstraint, ForeignKeyConstraint, KeyConstraint
from .inference import narrow_domains
from .schema import Catalog
from .table import TableSchema


class TableBuilder:
    """Accumulates one table definition; ``finish()`` returns the parent."""

    def __init__(self, parent: "CatalogBuilder", name: str) -> None:
        self._parent = parent
        self._name = name.upper()
        self._columns: list[Column] = []
        self._keys: list[KeyConstraint] = []
        self._checks: list[CheckConstraint] = []
        self._foreign_keys: list[ForeignKeyConstraint] = []

    def column(
        self,
        name: str,
        type_name: str = "INT",
        nullable: bool = True,
        domain: Domain | None = None,
    ) -> "TableBuilder":
        """Add a column."""
        self._columns.append(
            Column(name.upper(), type_name.upper(), None, nullable, domain)
        )
        return self

    def primary_key(self, *columns: str) -> "TableBuilder":
        """Declare the primary key; its columns become NOT NULL."""
        if any(key.is_primary for key in self._keys):
            raise CatalogError(f"table {self._name!r} has two primary keys")
        names = tuple(column.upper() for column in columns)
        self._keys.append(KeyConstraint(names, is_primary=True))
        key_set = set(names)
        self._columns = [
            column.with_nullable(False) if column.name in key_set else column
            for column in self._columns
        ]
        return self

    def unique(self, *columns: str) -> "TableBuilder":
        """Declare a candidate key (UNIQUE constraint)."""
        names = tuple(column.upper() for column in columns)
        self._keys.append(KeyConstraint(names, is_primary=False))
        return self

    def check(self, condition: str) -> "TableBuilder":
        """Declare a CHECK constraint from SQL text."""
        self._checks.append(CheckConstraint(parse_condition(condition)))
        return self

    def foreign_key(
        self, columns: str | tuple[str, ...], ref_table: str, ref_columns=()
    ) -> "TableBuilder":
        """Declare a referential constraint."""
        if isinstance(columns, str):
            columns = (columns,)
        if isinstance(ref_columns, str):
            ref_columns = (ref_columns,)
        self._foreign_keys.append(
            ForeignKeyConstraint(
                tuple(column.upper() for column in columns),
                ref_table.upper(),
                tuple(column.upper() for column in ref_columns),
            )
        )
        return self

    def finish(self) -> "CatalogBuilder":
        """Register the completed table and return to the catalog builder."""
        schema = TableSchema(
            name=self._name,
            columns=self._columns,
            keys=self._keys,
            checks=self._checks,
            foreign_keys=self._foreign_keys,
        )
        domains = narrow_domains(schema)
        schema.columns = [
            column.with_domain(domains[column.name]) for column in schema.columns
        ]
        schema.__post_init__()
        self._parent._register(schema)
        return self._parent


class CatalogBuilder:
    """Fluent builder producing a :class:`Catalog`."""

    def __init__(self) -> None:
        self._catalog = Catalog()

    def table(self, name: str) -> TableBuilder:
        """Begin a new table definition."""
        return TableBuilder(self, name)

    def _register(self, schema: TableSchema) -> None:
        self._catalog.register(schema)

    def build(self) -> Catalog:
        """Return the assembled catalog."""
        return self._catalog
