"""Table schema objects."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError, UnknownColumnError
from .column import Column
from .constraints import CheckConstraint, ForeignKeyConstraint, KeyConstraint


@dataclass
class TableSchema:
    """Schema of one base table: columns, keys, and constraints.

    Instances are built through :class:`repro.catalog.builder.TableBuilder`
    or from DDL via :func:`repro.catalog.schema.Catalog.execute_ddl`, and
    are treated as immutable once registered in a catalog.
    """

    name: str
    columns: list[Column] = field(default_factory=list)
    keys: list[KeyConstraint] = field(default_factory=list)
    checks: list[CheckConstraint] = field(default_factory=list)
    foreign_keys: list[ForeignKeyConstraint] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column name in table {self.name!r}")
        self._index = {column.name: i for i, column in enumerate(self.columns)}
        for key in self.keys:
            for column in key.columns:
                if column not in self._index:
                    raise UnknownColumnError(self.name, column)

    # ------------------------------------------------------------------
    # column access

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        """Whether this table declares the column."""
        return name in self._index

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def column_index(self, name: str) -> int:
        """Positional index of a column (row tuples use this order)."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    # ------------------------------------------------------------------
    # keys

    @property
    def primary_key(self) -> KeyConstraint | None:
        """The PRIMARY KEY constraint, if declared."""
        for key in self.keys:
            if key.is_primary:
                return key
        return None

    @property
    def candidate_keys(self) -> list[KeyConstraint]:
        """All declared keys (primary first), the paper's U_i(R)."""
        primary = [key for key in self.keys if key.is_primary]
        unique = [key for key in self.keys if not key.is_primary]
        return primary + unique

    def has_key(self) -> bool:
        """Whether any candidate key is declared (Theorem 1 precondition)."""
        return bool(self.keys)

    def key_column_sets(self) -> list[frozenset[str]]:
        """Column sets of every candidate key."""
        return [key.column_set for key in self.candidate_keys]

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """A human-readable multi-line schema description."""
        lines = [f"TABLE {self.name}"]
        for column in self.columns:
            null = "" if column.nullable else " NOT NULL"
            lines.append(f"  {column.name} {column.type_name}{null}")
        for key in self.keys:
            lines.append(f"  {key.describe()}")
        for check in self.checks:
            lines.append(f"  {check.describe()}")
        for fk in self.foreign_keys:
            lines.append(f"  {fk.describe()}")
        return "\n".join(lines)
