"""Schema catalog: tables, columns, keys, and constraints."""

from .builder import CatalogBuilder, TableBuilder
from .column import Column
from .constraints import CheckConstraint, ForeignKeyConstraint, KeyConstraint
from .inference import narrow_domains
from .schema import Catalog
from .table import TableSchema

__all__ = [
    "Catalog",
    "CatalogBuilder",
    "CheckConstraint",
    "Column",
    "ForeignKeyConstraint",
    "KeyConstraint",
    "TableBuilder",
    "TableSchema",
    "narrow_domains",
]
