"""Constraint objects stored in the catalog.

The paper exploits two kinds of semantic information (§2.1):

* **uniqueness constraints** — primary and candidate keys
  (:class:`KeyConstraint`); a primary key's columns are NOT NULL, while a
  ``UNIQUE`` candidate key may contain NULL, treated as a single special
  value (at most one row per NULL key combination);
* **check constraints** — search conditions that every stored row must
  satisfy (:class:`CheckConstraint`), which may therefore be conjoined to
  any query predicate without changing its result.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql.expressions import Expr
from ..sql.printer import to_sql


@dataclass(frozen=True)
class KeyConstraint:
    """A primary or candidate key.

    Attributes:
        columns: the key columns, in declaration order.
        is_primary: True for PRIMARY KEY (implies NOT NULL columns);
            False for UNIQUE candidate keys.
        name: optional constraint name for error messages.
    """

    columns: tuple[str, ...]
    is_primary: bool = False
    name: str | None = None

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a key must have at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column in key: {self.columns}")

    @property
    def column_set(self) -> frozenset[str]:
        """The key columns as a set (order-insensitive comparisons)."""
        return frozenset(self.columns)

    def describe(self) -> str:
        kind = "PRIMARY KEY" if self.is_primary else "UNIQUE"
        return f"{kind} ({', '.join(self.columns)})"


@dataclass(frozen=True)
class CheckConstraint:
    """A table CHECK constraint: *condition* must never be false.

    Per SQL2 a CHECK is satisfied when the condition is true **or
    unknown** — the true-interpretation ⌈P⌉ of the paper's Table 2.
    """

    condition: Expr
    name: str | None = None

    def describe(self) -> str:
        return f"CHECK ({to_sql(self.condition)})"


@dataclass(frozen=True)
class ForeignKeyConstraint:
    """A referential constraint (used by the workload generators and the
    IMS/OODB mappers to lay out hierarchies; not needed by Theorem 1)."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]
    name: str | None = None

    def describe(self) -> str:
        refs = f" ({', '.join(self.ref_columns)})" if self.ref_columns else ""
        return (
            f"FOREIGN KEY ({', '.join(self.columns)}) "
            f"REFERENCES {self.ref_table}{refs}"
        )
