"""Functional dependencies over qualified attributes.

The paper's Definition 1 gives FDs null-aware semantics: ``A -> b``
holds when any two tuples that agree on ``A`` under the ≐ operator
(NULLs equal) also agree on ``b``.  Key dependencies are FDs whose
left side is a declared candidate key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..analysis.attributes import Attribute, AttributeSet, attribute_set


@dataclass(frozen=True)
class FunctionalDependency:
    """``lhs -> rhs`` between attribute sets.

    An empty ``lhs`` expresses a *constant* dependency: the attribute has
    the same value in every qualifying tuple (e.g. it is equated with a
    constant by the selection predicate).
    """

    lhs: AttributeSet
    rhs: AttributeSet

    def __post_init__(self) -> None:
        if not self.rhs:
            raise ValueError("an FD must determine at least one attribute")

    @staticmethod
    def of(lhs: Iterable[Attribute], rhs: Iterable[Attribute]) -> "FunctionalDependency":
        """Build an FD from attribute iterables."""
        return FunctionalDependency(attribute_set(lhs), attribute_set(rhs))

    def is_trivial(self) -> bool:
        """Whether rhs ⊆ lhs (implied by reflexivity)."""
        return self.rhs <= self.lhs

    def __str__(self) -> str:
        left = "{" + ", ".join(sorted(map(str, self.lhs))) + "}"
        right = "{" + ", ".join(sorted(map(str, self.rhs))) + "}"
        return f"{left} -> {right}"
