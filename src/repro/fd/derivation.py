"""Derivation of functional dependencies for query blocks.

Following Klug and Darwen (as surveyed in the paper's §7), the FDs that
hold in a select/project/product derived table are:

* every key dependency of every FROM-clause table (qualified by its
  correlation name),
* ``∅ -> v`` for every column equated with a constant or host variable
  by a top-level conjunct of the WHERE clause, and
* ``v1 <-> v2`` for every top-level equality conjunct between columns.

Only *top-level conjuncts* contribute — an equality under an OR holds
for some rows but not necessarily all, so it induces no dependency.

This module is the general FD-theoretic machinery; Algorithm 1 in
:mod:`repro.core.uniqueness` is the paper's lighter-weight test (which
additionally handles disjunctive predicates through DNF expansion).
The two are cross-validated by the property-based test suite.
"""

from __future__ import annotations

from ..catalog.schema import Catalog
from ..catalog.table import TableSchema
from ..sql.ast import SelectQuery
from ..sql.expressions import Expr, conjuncts
from ..analysis.attributes import Attribute, AttributeSet, attribute_set
from ..analysis.binding import (
    projection_attributes,
    qualify_query_predicate,
    table_columns,
)
from ..analysis.conditions import Type1, Type2, classify_atom
from .dependency import FunctionalDependency
from .fdset import FDSet


def key_dependencies(schema: TableSchema, alias: str) -> list[FunctionalDependency]:
    """The key dependencies of one table under a correlation name."""
    all_attributes = [Attribute(alias, name) for name in schema.column_names]
    dependencies = []
    for key in schema.candidate_keys:
        lhs = [Attribute(alias, name) for name in key.columns]
        dependencies.append(FunctionalDependency.of(lhs, all_attributes))
    return dependencies


def base_fds(query: SelectQuery, catalog: Catalog) -> FDSet:
    """Key dependencies of every FROM-clause table of *query*."""
    fds = FDSet()
    for table_ref in query.tables:
        schema = catalog.table(table_ref.name)
        for fd in key_dependencies(schema, table_ref.effective_name):
            fds.add(fd)
    return fds


def predicate_fds(predicate: Expr | None, fds: FDSet) -> None:
    """Add FDs induced by top-level equality conjuncts of *predicate*."""
    for conjunct in conjuncts(predicate):
        equality = classify_atom(conjunct)
        if isinstance(equality, Type1):
            fds.add_constant(equality.attribute)
        elif isinstance(equality, Type2):
            fds.add_equivalence(equality.left, equality.right)


def derived_fds(query: SelectQuery, catalog: Catalog) -> FDSet:
    """All FDs known to hold in the query's filtered product."""
    fds = base_fds(query, catalog)
    predicate = qualify_query_predicate(query, catalog, allow_correlated=True)
    predicate_fds(predicate, fds)
    return fds


def product_attributes(query: SelectQuery, catalog: Catalog) -> AttributeSet:
    """Every attribute of the query's extended Cartesian product."""
    columns = table_columns(query, catalog)
    return attribute_set(
        Attribute(alias, name)
        for alias, names in columns.items()
        for name in names
    )


def derived_keys(
    query: SelectQuery, catalog: Catalog, max_size: int | None = None
) -> list[AttributeSet]:
    """Candidate keys of the query's derived table (among its projection).

    A projected attribute set is a key when its closure covers the whole
    product — equivalently (since each table's key determines the rest of
    its columns) when it covers a concatenated candidate key.
    """
    fds = derived_fds(query, catalog)
    universe = product_attributes(query, catalog)
    projection = projection_attributes(query, catalog)
    return fds.candidate_keys(universe, within=projection, max_size=max_size)


def is_duplicate_free_fd(query: SelectQuery, catalog: Catalog) -> bool:
    """FD-based duplicate-freeness: closure of the projection covers the
    product.  Requires every FROM table to have a declared key (otherwise
    nothing determines that table's tuples)."""
    for table_ref in query.tables:
        if not catalog.table(table_ref.name).has_key():
            return False
    fds = derived_fds(query, catalog)
    universe = product_attributes(query, catalog)
    projection = projection_attributes(query, catalog)
    return fds.is_superkey(projection, universe)
