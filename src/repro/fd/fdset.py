"""Sets of functional dependencies with closure computation.

Implements the standard attribute-set closure algorithm (Ullman), the
foundation for deriving keys of derived tables: a set ``K`` is a
superkey of a relation with attributes ``U`` under FD set ``F`` iff
``closure(K, F) ⊇ U``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator

from ..analysis.attributes import Attribute, AttributeSet, attribute_set
from ..cache import caches_enabled
from .dependency import FunctionalDependency


class FDSet:
    """A mutable collection of functional dependencies.

    Closures are memoized per instance — :meth:`candidate_keys` calls
    :meth:`closure` once per subset of the pool, and the derivation
    pipeline re-asks about the same projection lists repeatedly.  The
    memo is dropped whenever the FD set gains a dependency.
    """

    def __init__(self, fds: Iterable[FunctionalDependency] = ()) -> None:
        self._fds: list[FunctionalDependency] = []
        self._closure_memo: dict[AttributeSet, AttributeSet] = {}
        for fd in fds:
            self.add(fd)

    def add(self, fd: FunctionalDependency) -> None:
        """Add an FD (trivial and duplicate FDs are ignored)."""
        if not fd.is_trivial() and fd not in self._fds:
            self._fds.append(fd)
            self._closure_memo.clear()

    def add_constant(self, attribute: Attribute) -> None:
        """Record that *attribute* is constant (``∅ -> attribute``)."""
        self.add(FunctionalDependency(frozenset(), frozenset({attribute})))

    def add_equivalence(self, left: Attribute, right: Attribute) -> None:
        """Record ``left = right`` (each determines the other)."""
        self.add(FunctionalDependency.of([left], [right]))
        self.add(FunctionalDependency.of([right], [left]))

    def __iter__(self) -> Iterator[FunctionalDependency]:
        return iter(self._fds)

    def __len__(self) -> int:
        return len(self._fds)

    # ------------------------------------------------------------------

    def closure(self, attributes: Iterable[Attribute]) -> AttributeSet:
        """Attribute-set closure: everything determined by *attributes*."""
        start = frozenset(attributes)
        memoize = caches_enabled()
        if memoize:
            cached = self._closure_memo.get(start)
            if cached is not None:
                return cached
        closed: set[Attribute] = set(start)
        changed = True
        while changed:
            changed = False
            for fd in self._fds:
                if fd.lhs <= closed and not fd.rhs <= closed:
                    closed |= fd.rhs
                    changed = True
        result = frozenset(closed)
        if memoize:
            self._closure_memo[start] = result
        return result

    def implies(self, fd: FunctionalDependency) -> bool:
        """Whether this FD set logically implies *fd*."""
        return fd.rhs <= self.closure(fd.lhs)

    def is_superkey(
        self, attributes: Iterable[Attribute], universe: Iterable[Attribute]
    ) -> bool:
        """Whether *attributes* determine every attribute in *universe*."""
        return attribute_set(universe) <= self.closure(attributes)

    def candidate_keys(
        self,
        universe: Iterable[Attribute],
        within: Iterable[Attribute] | None = None,
        max_size: int | None = None,
    ) -> list[AttributeSet]:
        """Minimal keys of *universe* drawn from *within*.

        *within* defaults to the universe itself; restrict it to a
        projection list to find keys of a projected derived table.  The
        search enumerates subsets smallest-first, skipping supersets of
        keys already found, so results are minimal.  ``max_size`` bounds
        the subset size for large schemas.
        """
        universe_set = attribute_set(universe)
        pool = sorted(attribute_set(within) if within is not None else universe_set)
        limit = max_size if max_size is not None else len(pool)
        keys: list[AttributeSet] = []
        for size in range(0, limit + 1):
            for combo in combinations(pool, size):
                candidate = frozenset(combo)
                if any(key <= candidate for key in keys):
                    continue
                if universe_set <= self.closure(candidate):
                    keys.append(candidate)
            if keys and size == 0:
                break  # the empty set is a key: singleton relation
        return keys

    def restricted_to(self, attributes: Iterable[Attribute]) -> "FDSet":
        """FDs whose attributes all fall within *attributes*.

        A cheap (incomplete) projection of the FD set; complete FD
        projection requires closure enumeration, which
        :meth:`candidate_keys` performs implicitly where it matters.
        """
        allowed = attribute_set(attributes)
        return FDSet(
            fd for fd in self._fds if fd.lhs <= allowed and fd.rhs <= allowed
        )

    def describe(self) -> str:
        """One FD per line, or a placeholder when empty."""
        return "\n".join(str(fd) for fd in self._fds) or "(no dependencies)"
