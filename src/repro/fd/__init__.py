"""Functional dependencies: FD sets, closure, derived keys."""

from .dependency import FunctionalDependency
from .derivation import (
    base_fds,
    derived_fds,
    derived_keys,
    is_duplicate_free_fd,
    key_dependencies,
    predicate_fds,
    product_attributes,
)
from .fdset import FDSet

__all__ = [
    "FDSet",
    "FunctionalDependency",
    "base_fds",
    "derived_fds",
    "derived_keys",
    "is_duplicate_free_fd",
    "key_dependencies",
    "predicate_fds",
    "product_attributes",
]
