"""Process-wide memoization caches for the hot analysis/planning paths.

The paper's batch scenarios (the E10 CASE-tool audit, templated OLTP
workloads) re-run the *same* analysis over and over: the same SQL text
is parsed, normalized to CNF/DNF, and pushed through Algorithm 1 for
every occurrence of a template.  This module supplies the shared cache
machinery that amortizes that work:

* :class:`LRUCache` — a small bounded mapping with hit/miss counters,
* a global enable switch (:func:`set_caches_enabled`) so benchmarks and
  property tests can A/B cached against uncached execution,
* a registry so :func:`clear_all_caches` and :func:`cache_stats` see
  every cache in the process.

Correctness contract: every cache key must include a *fingerprint* of
whatever mutable state the cached computation depends on.  Catalogs
expose ``Catalog.fingerprint()`` (bumped by DDL) and databases
``Database.fingerprint()`` (additionally bumped by data changes), so a
stale entry can never be returned — after a DDL or data mutation the
key simply no longer matches.  Entries for dead fingerprints age out of
the LRU naturally.

Concurrency contract: every cache is shared by all sessions of a
:class:`~repro.service.QueryService`, so each instance carries its own
leaf lock (see DESIGN.md §3e for the locking order).  The lock is held
only for dictionary bookkeeping — never while computing a value — so
two sessions may race to *compute* the same entry, but an entry, once
stored, is never lost or half-written, and the hit/miss counters never
drop an update.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator

from .resilience.faults import FAULTS, SITE_FINGERPRINT

#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISSING = object()

_enabled = True
_registry: "list[LRUCache]" = []


def set_caches_enabled(enabled: bool) -> bool:
    """Globally enable or disable every registered cache.

    Returns the previous setting so callers can restore it.  Disabling
    does not drop existing entries; re-enabling resumes hits against
    whatever is still cached (use :func:`clear_all_caches` for a cold
    start).
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def caches_enabled() -> bool:
    """Whether the process-wide caches are currently active."""
    return _enabled


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss counters.

    Lookups honor the global enable switch: while caches are disabled
    every :meth:`get` misses (without counting) and :meth:`put` is a
    no-op, which is what lets benchmarks time the uncached path without
    tearing the caches down.

    Thread safety: every method is guarded by a per-cache lock, so
    concurrent get/put from service workers cannot corrupt the LRU
    order, lose entries, or drop counter updates.  The lock is a leaf
    in the process locking order — nothing else is ever acquired while
    it is held.
    """

    def __init__(self, name: str, maxsize: int = 512) -> None:
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        _registry.append(self)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Any:
        """The cached value for *key*, or :data:`MISSING`."""
        if not _enabled:
            return MISSING
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return MISSING
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store *value* under *key*, evicting the oldest past maxsize."""
        if not _enabled:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._data.clear()

    def evict_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose *key* satisfies *predicate*.

        Safe mode uses this to purge poisoned entries: a corrupted
        verdict or plan is keyed on (fingerprint, query text, ...), so
        evicting by query text removes it for every fingerprint.
        Returns the number of entries dropped.
        """
        with self._lock:
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    def reset_counters(self) -> None:
        """Zero the hit/miss counters."""
        with self._lock:
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        """Counters and occupancy as a plain dictionary."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._data),
                "maxsize": self.maxsize,
            }


def iter_caches() -> Iterator[LRUCache]:
    """Every registered cache, in registration order."""
    return iter(_registry)


def clear_all_caches(reset_counters: bool = False) -> None:
    """Empty every registered cache (optionally zeroing counters too)."""
    for cache in _registry:
        cache.clear()
        if reset_counters:
            cache.reset_counters()


def cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/occupancy counters for every registered cache, by name."""
    return {cache.name: cache.stats() for cache in _registry}


def evict_by_text(text: str) -> int:
    """Evict, from every registered cache, entries keyed on *text*.

    The analysis/plan/strategy caches all key on
    ``(fingerprint, query text, options)``; this drops any entry whose
    second component equals *text*, across every fingerprint.  Returns
    the total number of entries evicted.
    """

    def matches(key: object) -> bool:
        return isinstance(key, tuple) and len(key) >= 2 and key[1] == text

    return sum(cache.evict_where(matches) for cache in _registry)


def safe_fingerprint(source: Any) -> Hashable | None:
    """*source*.fingerprint(), or None when computing it fails.

    Fail-closed contract: a ``None`` fingerprint means the caller must
    skip its cache entirely — neither serve a cached value (it could be
    stale for the current, unknowable state) nor store a new one (it
    would be keyed on a lie).  Guard errors must not be swallowed into a
    cache skip, so resource errors propagate.
    """
    from .errors import ResourceError

    try:
        FAULTS.check(SITE_FINGERPRINT)
        return source.fingerprint()
    except ResourceError:
        raise
    except Exception:
        return None
