"""Adaptive load shedding: priority-aware admission control.

The service's bounded queue (PR 4) sheds load only at the cliff edge —
when the queue is physically full, every caller gets the same 429.
This module adds the gradient before the cliff: an
:class:`AdmissionController` tracks an exponentially-weighted moving
average of *observed queue wait* (the time between submit and a worker
picking the query up) and of the *deadline budgets* clients declare,
and starts rejecting **batch**-priority queries once predicted wait
approaches typical deadlines.  Interactive traffic keeps the whole
queue until the hard bound; batch traffic is the shock absorber.

Two priority classes cross every layer (HTTP header ``X-Priority``, the
``priority`` field of :class:`~repro.options.ExecutionOptions`):

* ``"interactive"`` (default) — a human is waiting; shed last.
* ``"batch"`` — a job is waiting; shed first, retry cheaply later.

Why EWMA of observed wait rather than queue length × mean service
time: the wait a dequeued query actually experienced already folds in
worker count, stalls, morsel contention, and fault storms — it is the
ground truth the prediction wants to converge to, with no model of the
service's internals to drift out of date.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..errors import LoadShedError

#: Priority classes, shed-last first.
PRIORITY_INTERACTIVE = "interactive"
PRIORITY_BATCH = "batch"
PRIORITIES = (PRIORITY_INTERACTIVE, PRIORITY_BATCH)

#: HTTP request header naming the priority class.
PRIORITY_HEADER = "X-Priority"


@dataclass(frozen=True)
class SheddingPolicy:
    """Tuning knobs for the admission controller.

    Attributes:
        target_delay: assumed typical client deadline (seconds) when no
            client has declared one yet; replaced by the EWMA of
            declared deadline budgets as they are observed.
        batch_shed_at: shed batch queries once predicted queue wait
            reaches this fraction of the typical deadline.
        wait_smoothing: EWMA weight of each newly observed queue wait
            (higher = faster reaction, noisier estimate).
        min_queue: never shed while fewer than this many queries are
            queued — an idle service must admit everything, whatever
            stale estimate the last storm left behind.
    """

    target_delay: float = 1.0
    batch_shed_at: float = 0.5
    wait_smoothing: float = 0.3
    min_queue: int = 1

    def __post_init__(self) -> None:
        if self.target_delay <= 0:
            raise ValueError("target_delay must be positive")
        if not 0.0 < self.batch_shed_at <= 1.0:
            raise ValueError("batch_shed_at must be a fraction in (0, 1]")
        if not 0.0 < self.wait_smoothing <= 1.0:
            raise ValueError("wait_smoothing must be a fraction in (0, 1]")
        if self.min_queue < 0:
            raise ValueError("min_queue must be non-negative")


class AdmissionController:
    """Decides, per submission, whether the queue may accept the query.

    Thread-safe leaf: one lock guards the two EWMAs; the decision reads
    them and the caller-supplied queue length, holds no other lock, and
    never blocks.  Workers feed it :meth:`observe_wait` on dequeue;
    submitters feed :meth:`observe_deadline` so "typical deadline"
    tracks what clients actually ask for.
    """

    def __init__(
        self,
        policy: SheddingPolicy | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else SheddingPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._ewma_wait = 0.0
        self._ewma_deadline: float | None = None
        self.shed_total = 0  # diagnostic; metrics carry the labelled count

    # -- observations ---------------------------------------------------

    def observe_wait(self, seconds: float) -> None:
        """Fold one observed queue wait into the prediction."""
        alpha = self.policy.wait_smoothing
        with self._lock:
            self._ewma_wait += alpha * (seconds - self._ewma_wait)

    def observe_deadline(self, seconds: float) -> None:
        """Fold one declared deadline budget into "typical deadline"."""
        if seconds <= 0:
            return
        alpha = self.policy.wait_smoothing
        with self._lock:
            if self._ewma_deadline is None:
                self._ewma_deadline = seconds
            else:
                self._ewma_deadline += alpha * (seconds - self._ewma_deadline)

    # -- views ----------------------------------------------------------

    def predicted_wait(self) -> float:
        """The controller's current queue-delay estimate (seconds)."""
        with self._lock:
            return self._ewma_wait

    def typical_deadline(self) -> float:
        """EWMA of declared deadlines, or the policy's assumption."""
        with self._lock:
            if self._ewma_deadline is not None:
                return self._ewma_deadline
        return self.policy.target_delay

    def snapshot(self) -> dict:
        """JSON-ready view for ``/healthz`` and the soak report."""
        return {
            "predicted_wait_ms": self.predicted_wait() * 1000.0,
            "typical_deadline_ms": self.typical_deadline() * 1000.0,
            "shed_total": self.shed_total,
        }

    # -- the decision ---------------------------------------------------

    def admit(self, priority: str, queue_length: int, depth: int) -> None:
        """Admit or raise :class:`~repro.errors.LoadShedError`.

        Interactive queries are never shed here — the bounded queue's
        hard 429 remains their only rejection.  Batch queries are shed
        once predicted wait crosses the policy fraction of the typical
        deadline, provided the queue is actually occupied.
        """
        if priority != PRIORITY_BATCH:
            return
        if queue_length < max(self.policy.min_queue, 1):
            return
        predicted = self.predicted_wait()
        threshold = self.typical_deadline() * self.policy.batch_shed_at
        if predicted >= threshold:
            self.shed_total += 1
            raise LoadShedError(priority, predicted, depth)
