"""End-to-end deadlines: one absolute point in time a query's answer
stops being useful.

A :class:`Deadline` differs from a per-query *timeout* in what it
measures: a timeout bounds execution from the moment the engine starts,
while a deadline is fixed when the **client** gives up — everything in
between (network transit, admission-queue wait, scheduling) spends the
same budget.  A query that waited 900ms of a 1s deadline gets 100ms of
execution; one that waited past its deadline is rejected with
:class:`~repro.errors.DeadlineExpiredError` *before* any operator runs.

Wire form: deadlines cross the HTTP boundary as **remaining
milliseconds** (the ``X-Deadline-Ms`` header, or the ``deadline_ms``
options field), never as absolute times — the two processes share no
clock, monotonic or otherwise.  Each hop re-anchors the remaining
budget against its own monotonic clock, so skew can only make the
server *more* conservative by the transit time, never less.

The class is a frozen value (like everything in
:class:`~repro.options.ExecutionOptions`), so it can ride inside the
options object across threads without copies; the injectable clock is
excluded from comparison so two deadlines are equal exactly when they
expire at the same instant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..errors import DeadlineExpiredError

#: HTTP request header carrying the remaining budget in milliseconds.
DEADLINE_HEADER = "X-Deadline-Ms"


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry instant on the local monotonic clock.

    Attributes:
        expires_at: monotonic timestamp after which the answer is
            worthless to whoever asked.
        clock: time source (injectable for deterministic tests;
            excluded from equality).
    """

    expires_at: float
    clock: Callable[[], float] = field(
        default=time.monotonic, compare=False, repr=False
    )

    # -- construction ---------------------------------------------------

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline *seconds* from now (negative = already expired)."""
        return cls(expires_at=clock() + seconds, clock=clock)

    @classmethod
    def from_wire_ms(
        cls, ms: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Re-anchor a remaining-milliseconds wire value locally."""
        return cls.after(ms / 1000.0, clock=clock)

    # -- views ----------------------------------------------------------

    def remaining(self) -> float:
        """Seconds left; zero or negative once expired."""
        return self.expires_at - self.clock()

    def remaining_ms(self) -> float:
        """Milliseconds left; zero or negative once expired."""
        return self.remaining() * 1000.0

    @property
    def expired(self) -> bool:
        """Whether the deadline has already passed."""
        return self.remaining() <= 0.0

    def to_wire_ms(self) -> float:
        """The wire form: remaining milliseconds, floored at zero so a
        stale value decodes to an immediately-expired deadline rather
        than a nonsensical negative budget."""
        return max(0.0, self.remaining_ms())

    # -- enforcement ----------------------------------------------------

    def check(self, waited: float | None = None) -> float:
        """The remaining seconds, or raise if the deadline has passed.

        *waited* annotates the error with how long the query sat in an
        admission queue before the check, for operators reading logs.
        """
        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExpiredError(remaining * 1000.0, waited)
        return remaining

    def clamp_timeout(self, timeout: float | None) -> float:
        """The *effective* execution timeout under this deadline: the
        smaller of the caller's own timeout and what the deadline has
        left.  Raises :class:`~repro.errors.DeadlineExpiredError` when
        nothing is left."""
        remaining = self.check()
        return remaining if timeout is None else min(timeout, remaining)
