"""Guarded execution: fault injection, budgets, retry, verified fallback.

This package hardens the fast paths PR 1 introduced.  Three pillars:

* :mod:`~repro.resilience.faults` — a deterministic, seedable
  :class:`FaultInjector` with named hook sites inside the predicate
  compiler, plan cache, hash-index build, operator loops, and DL/I.
* :mod:`~repro.resilience.budgets` — per-query
  :class:`ResourceBudget`/:class:`ExecutionGuard` (wall-clock timeout,
  row budgets, cooperative cancellation) checked from operator loops.
* :mod:`~repro.resilience.guarded` — :func:`run_guarded`, the verified
  entry point: budgets threaded through execution, and ``safe_mode``
  cross-checking uniqueness-based rewrites against the unrewritten
  plan, quarantining rules and evicting poisoned cache entries on a
  mismatch.

Import discipline: this ``__init__`` pulls in only the leaf modules
(faults/budgets/retry), which depend on nothing but :mod:`repro.errors`.
:mod:`~repro.resilience.guarded` imports the engine — which imports
:mod:`repro.cache`, which imports :mod:`repro.resilience.faults` — so it
is exposed lazily (PEP 562) to keep the import graph acyclic.
"""

from __future__ import annotations

from typing import Any

from .budgets import CLOCK_CHECK_INTERVAL, ExecutionGuard, ResourceBudget
from .faults import (
    ALL_SITES,
    FAULTS,
    FaultInjector,
    FaultSpec,
    SITE_COMPILE,
    SITE_COMPILED_EVAL,
    SITE_DLI,
    SITE_FINGERPRINT,
    SITE_INDEX_BUILD,
    SITE_NET_ACCEPT,
    SITE_NET_WRITE,
    SITE_OPERATOR,
    SITE_PLAN_CACHE,
    SITE_UNIQUENESS,
    SITE_VECTORIZED_EVAL,
)
from .retry import RetryPolicy, call_with_retry

_LAZY = ("run_guarded", "GuardedOutcome", "reset_safe_mode_sampling")

__all__ = [
    "ALL_SITES",
    "CLOCK_CHECK_INTERVAL",
    "ExecutionGuard",
    "FAULTS",
    "FaultInjector",
    "FaultSpec",
    "GuardedOutcome",
    "ResourceBudget",
    "RetryPolicy",
    "SITE_COMPILE",
    "SITE_COMPILED_EVAL",
    "SITE_DLI",
    "SITE_FINGERPRINT",
    "SITE_INDEX_BUILD",
    "SITE_NET_ACCEPT",
    "SITE_NET_WRITE",
    "SITE_OPERATOR",
    "SITE_PLAN_CACHE",
    "SITE_UNIQUENESS",
    "SITE_VECTORIZED_EVAL",
    "call_with_retry",
    "reset_safe_mode_sampling",
    "run_guarded",
]


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from . import guarded

        return getattr(guarded, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
