"""Guarded execution: fault injection, budgets, retry, verified fallback.

This package hardens the fast paths PR 1 introduced.  Three pillars,
plus the self-protection layer PR 7 added:

* :mod:`~repro.resilience.faults` — a deterministic, seedable
  :class:`FaultInjector` with named hook sites inside the predicate
  compiler, plan cache, hash-index build, operator loops, DL/I, and the
  HTTP accept/read/write paths.
* :mod:`~repro.resilience.budgets` — per-query
  :class:`ResourceBudget`/:class:`ExecutionGuard` (wall-clock timeout,
  row budgets, cooperative cancellation) checked from operator loops.
* :mod:`~repro.resilience.guarded` — :func:`run_guarded`, the verified
  entry point: budgets threaded through execution, and ``safe_mode``
  cross-checking uniqueness-based rewrites against the unrewritten
  plan, quarantining rules and evicting poisoned cache entries on a
  mismatch.
* :mod:`~repro.resilience.deadline` /
  :mod:`~repro.resilience.admission` /
  :mod:`~repro.resilience.breaker` /
  :mod:`~repro.resilience.health` — end-to-end :class:`Deadline`
  propagation, priority-aware adaptive load shedding, the client-side
  :class:`CircuitBreaker`, and the :class:`HealthTracker` degradation
  ladder converting repeated fallbacks into sticky, self-healing
  demotions.

Import discipline: this ``__init__`` pulls in only the leaf modules
(faults/budgets/retry/deadline/admission/breaker/health), which depend
on nothing but :mod:`repro.errors`.  :mod:`~repro.resilience.guarded`
imports the engine — which imports :mod:`repro.cache`, which imports
:mod:`repro.resilience.faults` — so it is exposed lazily (PEP 562) to
keep the import graph acyclic.
"""

from __future__ import annotations

from typing import Any

from .admission import (
    AdmissionController,
    PRIORITIES,
    PRIORITY_BATCH,
    PRIORITY_HEADER,
    PRIORITY_INTERACTIVE,
    SheddingPolicy,
)
from .breaker import CircuitBreaker
from .budgets import CLOCK_CHECK_INTERVAL, ExecutionGuard, ResourceBudget
from .deadline import DEADLINE_HEADER, Deadline
from .faults import (
    ALL_SITES,
    FAULTS,
    FaultInjector,
    FaultSpec,
    SITE_COMPILE,
    SITE_COMPILED_EVAL,
    SITE_DLI,
    SITE_FINGERPRINT,
    SITE_INDEX_BUILD,
    SITE_NET_ACCEPT,
    SITE_NET_READ,
    SITE_NET_WRITE,
    SITE_OPERATOR,
    SITE_PLAN_CACHE,
    SITE_UNIQUENESS,
    SITE_VECTORIZED_EVAL,
    SITE_WAL_COMMIT,
)
from .health import (
    HealthPolicy,
    HealthTracker,
    LADDER,
    SUBSYSTEMS,
    SUBSYSTEM_ESTIMATOR,
    SUBSYSTEM_OPTIMIZER,
    SUBSYSTEM_PARALLEL,
    SUBSYSTEM_PLAN_CACHE,
    SUBSYSTEM_VECTORIZED,
)
from .retry import RetryPolicy, call_with_retry

_LAZY = ("run_guarded", "GuardedOutcome", "reset_safe_mode_sampling")

__all__ = [
    "ALL_SITES",
    "AdmissionController",
    "CLOCK_CHECK_INTERVAL",
    "CircuitBreaker",
    "DEADLINE_HEADER",
    "Deadline",
    "ExecutionGuard",
    "FAULTS",
    "FaultInjector",
    "FaultSpec",
    "GuardedOutcome",
    "HealthPolicy",
    "HealthTracker",
    "LADDER",
    "PRIORITIES",
    "PRIORITY_BATCH",
    "PRIORITY_HEADER",
    "PRIORITY_INTERACTIVE",
    "ResourceBudget",
    "RetryPolicy",
    "SITE_COMPILE",
    "SITE_COMPILED_EVAL",
    "SITE_DLI",
    "SITE_FINGERPRINT",
    "SITE_INDEX_BUILD",
    "SITE_NET_ACCEPT",
    "SITE_NET_READ",
    "SITE_NET_WRITE",
    "SITE_OPERATOR",
    "SITE_PLAN_CACHE",
    "SITE_UNIQUENESS",
    "SITE_VECTORIZED_EVAL",
    "SITE_WAL_COMMIT",
    "SUBSYSTEMS",
    "SUBSYSTEM_ESTIMATOR",
    "SUBSYSTEM_OPTIMIZER",
    "SUBSYSTEM_PARALLEL",
    "SUBSYSTEM_PLAN_CACHE",
    "SUBSYSTEM_VECTORIZED",
    "SheddingPolicy",
    "call_with_retry",
    "reset_safe_mode_sampling",
    "run_guarded",
]


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from . import guarded

        return getattr(guarded, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
