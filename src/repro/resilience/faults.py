"""Deterministic, seedable fault injection for the engine's fast paths.

Every fast path PR 1 added (compiled predicates, plan/uniqueness caches,
hash indexes) and every external call (DL/I) has a *hook*: a named site
that consults the process-wide :data:`FAULTS` injector.  Tests and the
chaos benchmark arm typed faults at a site through a context-manager
API and the hooked code either degrades through its fallback ladder or
raises a typed :class:`~repro.errors.ReproError` — never a wrong answer.

Sites (the strings the hooks pass to :meth:`FaultInjector.check`):

========================  ====================================================
``compile``               predicate compilation (:mod:`repro.engine.compile`)
``compiled_eval``         a compiled predicate closure, per evaluation
``vectorized_eval``       a batch kernel (:mod:`repro.engine.columnar`), per batch
``plan_cache``            plan-cache lookup/store
``index_build``           lazy hash-index construction
``operator_next``         physical operator row loops (via ``ExecContext.tick``)
``fingerprint``           cache fingerprint computation (fail-closed paths)
``uniqueness``            Algorithm 1 verdicts (corrupt-verdict faults)
``dli_call``              every DL/I ``GU``/``GN``/``GNP`` call
``net_accept``            HTTP request admission (:mod:`repro.net.server`)
``net_read``              HTTP request-body reads (truncation/socket faults)
``net_write``             HTTP response/stream-chunk writes
``wal_commit``            transaction commit apply (:mod:`repro.engine.txn`) —
                          fires *before* any shared state changes, so an
                          injected failure aborts the transaction cleanly
========================  ====================================================

Fault kinds:

* ``"exception"`` — raise (default :class:`InjectedFaultError`, or any
  exception factory via ``error=``),
* ``"transient"`` — raise :class:`TransientImsError` with a status code,
* ``"slow"`` — sleep ``delay`` seconds before continuing,
* ``"corrupt"`` — leave :meth:`check` alone; sites that produce values
  route them through :meth:`corrupt`, which applies the spec's
  ``corruptor`` — this is how an unsound Algorithm 1 verdict is staged.

Determinism: trigger counting (``after``/``times``) is exact, and
probabilistic injection draws from the injector's own seeded RNG, so a
scenario replays identically under the same seed.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import InjectedFaultError, TransientImsError

# Canonical site names (hooks and tests share these constants).
SITE_COMPILE = "compile"
SITE_COMPILED_EVAL = "compiled_eval"
SITE_VECTORIZED_EVAL = "vectorized_eval"
SITE_PLAN_CACHE = "plan_cache"
SITE_INDEX_BUILD = "index_build"
SITE_OPERATOR = "operator_next"
SITE_FINGERPRINT = "fingerprint"
SITE_UNIQUENESS = "uniqueness"
SITE_DLI = "dli_call"
SITE_NET_ACCEPT = "net_accept"
SITE_NET_READ = "net_read"
SITE_NET_WRITE = "net_write"
SITE_WAL_COMMIT = "wal_commit"

ALL_SITES = (
    SITE_COMPILE,
    SITE_COMPILED_EVAL,
    SITE_VECTORIZED_EVAL,
    SITE_PLAN_CACHE,
    SITE_INDEX_BUILD,
    SITE_OPERATOR,
    SITE_FINGERPRINT,
    SITE_UNIQUENESS,
    SITE_DLI,
    SITE_NET_ACCEPT,
    SITE_NET_READ,
    SITE_NET_WRITE,
    SITE_WAL_COMMIT,
)

KIND_EXCEPTION = "exception"
KIND_TRANSIENT = "transient"
KIND_SLOW = "slow"
KIND_CORRUPT = "corrupt"

_KINDS = (KIND_EXCEPTION, KIND_TRANSIENT, KIND_SLOW, KIND_CORRUPT)


@dataclass
class FaultSpec:
    """One armed fault: where, what, and when it fires.

    Attributes:
        site: hook name the fault applies to.
        kind: one of the fault kinds above.
        after: skip this many trigger opportunities before firing.
        times: fire at most this many times (None = every opportunity).
        probability: chance of firing per opportunity, drawn from the
            injector's seeded RNG (1.0 = always).
        error: exception factory for ``exception`` faults.
        status: DL/I status code for ``transient`` faults.
        delay: sleep seconds for ``slow`` faults.
        corruptor: value transformer for ``corrupt`` faults.
        triggered: opportunities seen so far (diagnostic).
        fired: times the fault actually fired (diagnostic).
    """

    site: str
    kind: str = KIND_EXCEPTION
    after: int = 0
    times: int | None = None
    probability: float = 1.0
    error: Callable[[], Exception] | None = None
    status: str = "GG"
    delay: float = 0.0
    corruptor: Callable[[Any], Any] | None = None
    triggered: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def should_fire(self, rng: random.Random) -> bool:
        """Account one trigger opportunity; decide whether to fire."""
        self.triggered += 1
        if self.triggered <= self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """Registry of armed :class:`FaultSpec` objects with hook entry points.

    The hot-path contract: ``armed`` is a plain bool attribute kept in
    sync with the spec list, so hooks cost one attribute test per row
    when no fault is armed.

    Thread safety: trigger accounting (``should_fire`` mutates spec
    counters and draws from the shared RNG) runs under the injector's
    lock, so a seeded schedule stays exact when service workers hit the
    hooks concurrently.  ``slow`` faults *sleep outside the lock* —
    they model storage/network latency, and concurrent stalls must
    overlap the way real I/O waits do, not serialize behind the
    injector.  The lock is a leaf in the process locking order.
    """

    def __init__(self, seed: int = 0) -> None:
        self._specs: list[FaultSpec] = []
        self._rng = random.Random(seed)
        self._lock = threading.RLock()
        self.armed = False

    # ------------------------------------------------------------------
    # arming

    def seed(self, seed: int) -> None:
        """Re-seed the probability RNG (scenario replay)."""
        with self._lock:
            self._rng = random.Random(seed)

    def arm(self, spec: FaultSpec) -> FaultSpec:
        """Register *spec*; returns it for inspection."""
        with self._lock:
            self._specs.append(spec)
            self.armed = True
        return spec

    def disarm(self, spec: FaultSpec) -> None:
        """Remove *spec* (missing specs are ignored)."""
        with self._lock:
            if spec in self._specs:
                self._specs.remove(spec)
            self.armed = bool(self._specs)

    def reset(self) -> None:
        """Drop every armed fault."""
        with self._lock:
            self._specs.clear()
            self.armed = False

    def inject(self, site: str, **kwargs: Any) -> "_Injection":
        """Context manager arming one fault for the ``with`` body::

            with FAULTS.inject("index_build", times=1):
                execute_planned(sql, db)   # first build fails, falls back
        """
        return _Injection(self, FaultSpec(site, **kwargs))

    def specs(self, site: str | None = None) -> list[FaultSpec]:
        """Armed specs, optionally restricted to one site."""
        with self._lock:
            if site is None:
                return list(self._specs)
            return [spec for spec in self._specs if spec.site == site]

    # ------------------------------------------------------------------
    # hook entry points

    def check(self, site: str) -> None:
        """Fire any armed exception/transient/slow fault for *site*.

        Hooks call this at each opportunity; corrupt faults never fire
        here (value-producing sites use :meth:`corrupt`).
        """
        if not self.armed:
            return
        stall = 0.0
        try:
            with self._lock:
                for spec in self._specs:
                    if spec.site != site or spec.kind == KIND_CORRUPT:
                        continue
                    if not spec.should_fire(self._rng):
                        continue
                    if spec.kind == KIND_SLOW:
                        stall += spec.delay
                        continue
                    if spec.kind == KIND_TRANSIENT:
                        raise TransientImsError(
                            spec.status, f"injected at {site}"
                        )
                    if spec.error is not None:
                        raise spec.error()
                    raise InjectedFaultError(site)
        finally:
            # Sleep outside the lock: concurrent simulated-I/O stalls
            # must overlap across workers, not queue behind the injector.
            if stall:
                time.sleep(stall)

    def corrupt(self, site: str, value: Any) -> Any:
        """Route a produced *value* through any armed corrupt fault."""
        if not self.armed:
            return value
        with self._lock:
            for spec in self._specs:
                if spec.site != site or spec.kind != KIND_CORRUPT:
                    continue
                if not spec.should_fire(self._rng):
                    continue
                if spec.corruptor is None:
                    raise ValueError(
                        f"corrupt fault at {site!r} armed without a corruptor"
                    )
                value = spec.corruptor(value)
        return value

    def wrap_callable(self, site: str, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Instrument *fn* so every call is a trigger opportunity.

        Used by the predicate compiler: when a ``compiled_eval`` fault is
        armed, the returned closure consults the injector per row, so a
        compiled predicate can be made to blow up mid-stream.  With no
        matching spec armed, *fn* is returned untouched — zero overhead.
        """
        if not any(spec.site == site for spec in self.specs()):
            return fn

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            self.check(site)
            return fn(*args, **kwargs)

        return wrapped


class _Injection:
    """The context manager behind :meth:`FaultInjector.inject`."""

    def __init__(self, injector: FaultInjector, spec: FaultSpec) -> None:
        self._injector = injector
        self.spec = spec

    def __enter__(self) -> FaultSpec:
        return self._injector.arm(self.spec)

    def __exit__(self, *exc_info: object) -> None:
        self._injector.disarm(self.spec)


#: Process-wide injector every hook consults.
FAULTS = FaultInjector()


def iter_sites() -> Iterator[str]:
    """Every canonical hook site name."""
    return iter(ALL_SITES)
