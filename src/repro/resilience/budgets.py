"""Per-query resource budgets and the cooperative execution guard.

A :class:`ResourceBudget` states the limits (wall-clock seconds, rows
processed); an :class:`ExecutionGuard` enforces them from inside the
operator loops.  Operators call :meth:`ExecutionGuard.tick` once per row
they touch; the guard counts rows, honours a cooperative cancellation
flag (settable from any thread), and re-reads the clock every
:data:`CLOCK_CHECK_INTERVAL` ticks so the per-row cost stays a counter
increment and a couple of attribute tests.

Budget violations raise the typed taxonomy of :mod:`repro.errors`:
:class:`~repro.errors.QueryTimeout`, :class:`~repro.errors.RowBudgetExceeded`,
:class:`~repro.errors.QueryCancelled` — all under ``ExecutionError`` so
existing callers that catch execution failures keep working.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..errors import QueryCancelled, QueryTimeout, RowBudgetExceeded

#: Ticks between wall-clock reads; a power of two so the modulo is cheap.
CLOCK_CHECK_INTERVAL = 256


@dataclass(frozen=True)
class ResourceBudget:
    """Declarative limits for one query execution.

    Attributes:
        timeout: wall-clock seconds (None = unlimited).
        row_budget: rows an execution may *process* — scanned, joined, or
            filtered, not just output — so a runaway cross product trips
            the budget long before it materializes (None = unlimited).
    """

    timeout: float | None = None
    row_budget: int | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.row_budget is not None and self.row_budget <= 0:
            raise ValueError("row budget must be positive")

    @property
    def unlimited(self) -> bool:
        """Whether this budget never constrains anything."""
        return self.timeout is None and self.row_budget is None

    def guard(self, clock: Callable[[], float] = time.monotonic) -> "ExecutionGuard":
        """A fresh guard enforcing this budget, started now."""
        return ExecutionGuard(self, clock=clock)


class ExecutionGuard:
    """Enforces one :class:`ResourceBudget` over one execution.

    The clock is injectable for deterministic tests.  Guards are cheap
    to construct; make a fresh one per execution so the deadline starts
    when the query does.
    """

    def __init__(
        self,
        budget: ResourceBudget | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = budget or ResourceBudget()
        self._clock = clock
        self._started = clock()
        self._deadline = (
            None
            if self.budget.timeout is None
            else self._started + self.budget.timeout
        )
        self._row_budget = self.budget.row_budget  # hot-loop local
        self.rows_processed = 0
        self.cancelled = False
        self._cancel_reason = ""

    # ------------------------------------------------------------------

    def cancel(self, reason: str = "") -> None:
        """Request cooperative cancellation (safe from another thread).

        The execution raises :class:`~repro.errors.QueryCancelled` at its
        next tick.
        """
        self._cancel_reason = reason
        self.cancelled = True

    def elapsed(self) -> float:
        """Seconds since the guard was constructed."""
        return self._clock() - self._started

    def tick(self, rows: int = 1) -> None:
        """Account *rows* processed rows; raise if any limit is breached."""
        if self.cancelled:
            raise QueryCancelled(self._cancel_reason)
        processed = self.rows_processed + rows
        self.rows_processed = processed
        budget = self._row_budget
        if budget is not None and processed > budget:
            raise RowBudgetExceeded(budget, processed)
        if (
            self._deadline is not None
            and processed % CLOCK_CHECK_INTERVAL < rows
        ):
            # The interval boundary was crossed somewhere in this batch
            # of rows (for rows == 1 this is the plain modulo test).
            self.check_deadline()

    def check_deadline(self) -> None:
        """Unconditional wall-clock check (operators with long per-row
        work — a correlated subquery, a DL/I sweep — call this directly)."""
        if self._deadline is not None and self._clock() > self._deadline:
            raise QueryTimeout(self.budget.timeout, self.elapsed())
