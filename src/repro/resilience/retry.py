"""Bounded, jittered exponential backoff for transient failures.

The IMS gateway's DL/I calls can fail transiently (§6's multidatabase
setting: lock timeouts, buffer shortages in the remote region).  DL/I
reads are side-effect free here, so the whole iterative program can be
re-run from scratch; :func:`call_with_retry` does exactly that with a
deterministic, seeded jitter so tests replay identically.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Tuple, Type, TypeVar

from ..errors import TransientImsError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of the backoff schedule.

    Attributes:
        max_attempts: total tries, including the first (>= 1).
        base_delay: sleep before the first retry, in seconds.
        multiplier: exponential growth factor per retry.
        max_delay: cap on any single sleep.
        jitter: fraction of the delay drawn uniformly at random and
            *subtracted*, de-synchronizing concurrent retriers while
            keeping the sleep bounded by the undithered schedule.
    """

    max_attempts: int = 4
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delay(self, retry_number: int, rng: random.Random) -> float:
        """The sleep before retry *retry_number* (1-based), jittered."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (retry_number - 1)
        )
        if self.jitter:
            raw -= raw * self.jitter * rng.random()
        return raw


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    retryable: Tuple[Type[BaseException], ...] = (TransientImsError,),
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Run *fn*, retrying *retryable* failures with exponential backoff.

    Non-retryable exceptions propagate immediately; a retryable one
    propagates only after the final attempt.  *on_retry* is called with
    ``(retry_number, error)`` before each sleep, so callers can count
    retries and reset per-attempt state.
    """
    policy = policy or RetryPolicy()
    rng = rng or random.Random(0)
    attempt = 1
    while True:
        try:
            return fn()
        except retryable as error:
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(policy.delay(attempt, rng))
            attempt += 1
