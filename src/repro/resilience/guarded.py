"""Guarded, verified query execution — the resilience entry point.

:func:`run_guarded` is the hardened counterpart of "optimize then
``execute_planned``": it applies the rewrite optimizer, executes the
winning form under a per-query :class:`~repro.resilience.budgets.ResourceBudget`,
and — in *safe mode* — cross-checks uniqueness-based rewrites against
the unrewritten plan on sampled executions.

Safe-mode semantics: when the rewritten and reference executions
disagree on the result multiset (≐ row identity, the engine's own
comparison), the implicated rewrite rules are **quarantined**
process-wide (see :func:`repro.core.rewrite.engine.quarantine_rule`),
every cache entry keyed on the involved query texts is **evicted** (a
poisoned Algorithm 1 verdict, plan, or strategy choice cannot be served
again), and the *reference* result — the verified answer — is returned.
With ``strict=True`` the mismatch raises
:class:`~repro.errors.RewriteMismatchError` instead.

The cross-check is sound because the physical planner never consults the
uniqueness analysis: an unsound verdict can only enter through the
rewrite layer, which the reference execution bypasses entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..cache import evict_by_text
from ..core.rewrite.engine import Optimizer, quarantine_rule
from ..engine.database import Database
from ..engine.plan_cache import PlanCache
from ..engine.planner import PlannerOptions, execute_planned
from ..engine.result import Result
from ..engine.stats import Stats
from ..errors import RewriteMismatchError
from ..observe.audit import AuditTrail
from ..observe.trace import NULL_SPAN, TRACER
from ..sql.ast import Query
from ..sql.parser import parse_query
from ..sql.printer import to_sql
from ..types.values import SqlValue
from .budgets import ExecutionGuard, ResourceBudget

#: Per-query-text execution counters driving safe-mode sampling.
_sample_counters: dict[str, int] = {}


def reset_safe_mode_sampling() -> None:
    """Forget the sampling counters (tests and fresh sessions)."""
    _sample_counters.clear()


def _take_sample(text: str, every: int) -> bool:
    """Deterministic sampling: the first execution of a text is always
    checked, then every *every*-th one after it."""
    count = _sample_counters.get(text, 0)
    _sample_counters[text] = count + 1
    return every <= 1 or count % every == 0


@dataclass
class GuardedOutcome:
    """Everything one guarded execution produced.

    Attributes:
        result: the rows handed to the caller.  After a safe-mode
            mismatch this is the *reference* (unrewritten) result — the
            verified answer — not the rewritten one.
        sql: the SQL text the returned result came from.
        rewritten: whether any rewrite rule fired.
        rules: names of the rules that fired, in application order.
        stats: execution counters for the primary (rewritten) execution.
        verified: whether the safe-mode cross-check ran.
        mismatch: whether the cross-check caught a result change.
        quarantined: rule names quarantined by this execution.
        evicted: cache entries evicted after a mismatch.
        audit: the optimizer's audit trail — every theorem decision
            (fired or rejected, with witness) behind the rewrite.
        analysis: the EXPLAIN ANALYZE
            :class:`~repro.observe.analyze.AnalyzedExecution` when the
            execution ran with ``analyze`` requested (see
            :func:`repro.api.run_with_options`), else None.
        rowcount: rows affected by a DML statement, or -1 for reads
            (DB-API convention; the facade reports ``len(result)`` for
            reads instead).
    """

    result: Result
    sql: str
    rewritten: bool
    rules: list[str]
    stats: Stats
    verified: bool = False
    mismatch: bool = False
    quarantined: list[str] = field(default_factory=list)
    evicted: int = 0
    audit: AuditTrail = field(default_factory=AuditTrail)
    analysis: object | None = None
    rowcount: int = -1

    def describe(self) -> str:
        """One line: rewrite trail, verification status, row count."""
        parts = []
        parts.append(
            "rewritten via " + ", ".join(self.rules) if self.rules
            else "not rewritten"
        )
        if self.mismatch:
            parts.append(
                f"MISMATCH: quarantined {', '.join(self.quarantined)}; "
                f"served the reference result"
            )
        elif self.verified:
            parts.append("verified against the unrewritten plan")
        parts.append(f"{len(self.result)} rows")
        return "; ".join(parts)


def run_guarded(
    query: Query | str,
    database: Database,
    params: dict[str, SqlValue] | None = None,
    budget: ResourceBudget | None = None,
    *,
    optimizer: Optimizer | None = None,
    safe_mode: bool = False,
    sample_every: int = 1,
    strict: bool = False,
    stats: Stats | None = None,
    planner_options: PlannerOptions | None = None,
    plan_cache: PlanCache | None = None,
    use_indexes: bool = True,
    parallel=None,
    engine_mode: str | None = None,
    batch_rows: int | None = None,
    on_guard: Callable[[ExecutionGuard], None] | None = None,
) -> GuardedOutcome:
    """Optimize and execute *query* under *budget*, optionally verified.

    Args:
        query: SQL text or a parsed query expression.
        database: the database to execute against.
        params: host-variable bindings.
        budget: per-query limits; a fresh guard is started per execution
            (the safe-mode reference gets its own, so the cross-check is
            granted the same allowance as the primary run).
        optimizer: rewrite pipeline; defaults to the relational profile.
        safe_mode: cross-check rewritten results against the unrewritten
            plan on sampled executions.
        sample_every: check the first execution of each query text, then
            every n-th after it (1 = every execution).
        strict: raise :class:`~repro.errors.RewriteMismatchError` on a
            mismatch instead of degrading to the reference result.
        stats: counter sink for the primary execution.
        planner_options / plan_cache / use_indexes: forwarded to
            :func:`~repro.engine.planner.execute_planned`.
        parallel: a :class:`~repro.engine.parallel.ParallelOptions` or
            live :class:`~repro.engine.parallel.ParallelExecution`,
            forwarded to the primary execution.  The safe-mode reference
            run stays serial on purpose: a diverse pair of executions is
            a stronger cross-check than two identical ones.
        engine_mode / batch_rows: execution style for the primary run
            (see :func:`~repro.engine.planner.execute_plan`).  The
            safe-mode reference is pinned to the tuple interpreter for
            the same diversity reason the parallel knob stays serial:
            the verified answer comes from the row-at-a-time code path.
        on_guard: called with the primary execution's
            :class:`~repro.resilience.budgets.ExecutionGuard` before the
            first operator runs, so an external owner (a service ticket
            whose client abandoned the wait) can cooperatively cancel
            mid-flight.  When no budget was given, an unlimited guard is
            created just so there is a cancellation point to hand out.

    Budget violations always propagate as
    :class:`~repro.errors.ResourceError` subclasses — no fallback ladder
    may swallow them.
    """
    if sample_every < 1:
        raise ValueError("sample_every must be at least 1")
    stats = stats if stats is not None else Stats()
    if isinstance(query, str):
        original_text = query
        parsed = parse_query(query)
    else:
        parsed = query
        original_text = to_sql(query)
    if optimizer is None:
        optimizer = Optimizer.for_relational(database.catalog)
    traced = TRACER.enabled  # one test when tracing is off
    guarded_cm = (
        TRACER.span(
            "guarded.run", stats=stats, sql=original_text, safe_mode=safe_mode
        )
        if traced
        else NULL_SPAN
    )
    with guarded_cm as guarded_span:
        outcome = optimizer.optimize(parsed)

        guard = budget.guard() if budget is not None else None
        if on_guard is not None:
            if guard is None:
                guard = ExecutionGuard()
            on_guard(guard)
        result = execute_planned(
            outcome.query,
            database,
            params=params,
            stats=stats,
            options=planner_options,
            use_indexes=use_indexes,
            plan_cache=plan_cache,
            guard=guard,
            parallel=parallel,
            engine_mode=engine_mode,
            batch_rows=batch_rows,
        )
        if guarded_span is not None and guard is not None:
            guarded_span.attributes["guard_rows"] = guard.rows_processed
        rules: list[str] = []
        for step in outcome.steps:
            if step.rule not in rules:
                rules.append(step.rule)
        out = GuardedOutcome(
            result=result,
            sql=to_sql(outcome.query),
            rewritten=outcome.changed,
            rules=rules,
            stats=stats,
            audit=outcome.audit,
        )

        if not (safe_mode and outcome.changed):
            return out
        if not _take_sample(original_text, sample_every):
            return out

        out.verified = True
        cross_cm = (
            TRACER.span("guarded.cross_check", sql=original_text)
            if traced
            else NULL_SPAN
        )
        with cross_cm:
            reference = execute_planned(
                parsed,
                database,
                params=params,
                stats=Stats(),
                options=planner_options,
                use_indexes=use_indexes,
                plan_cache=plan_cache,
                guard=budget.guard() if budget is not None else None,
                engine_mode="tuple",
            )
        if reference.same_rows(result):
            return out

        # The rewrite changed the result multiset.  Quarantine the rules,
        # purge every cache entry keyed on an involved query text (the
        # poisoned verdict/plan/strategy entries all key on text), and
        # serve the verified reference result.
        texts = {original_text, out.sql}
        for step in outcome.steps:
            texts.add(to_sql(step.before))
            texts.add(to_sql(step.after))
        for text in texts:
            out.evicted += evict_by_text(text)
        for rule in rules:
            quarantine_rule(rule, f"safe-mode mismatch on {original_text!r}")
        out.mismatch = True
        out.quarantined = list(rules)
        if guarded_span is not None:
            guarded_span.attributes["mismatch"] = True
        out.result = reference
        out.sql = original_text
        if strict:
            raise RewriteMismatchError(rules, original_text)
        return out
