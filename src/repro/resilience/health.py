"""The self-healing degradation ladder: error budgets per subsystem.

PR 2 and PR 6 gave every fast path a verified fallback — compiled
predicate → interpreter, cached plan → replan, vectorized batch →
tuple, parallel morsel → serial — but each query re-trips the same
fallback from scratch: a sick subsystem fails, falls back, and is tried
again on the very next query, forever.  This module converts *repeated*
fallback events into **sticky demotions** with timed probation, the way
the QueryTorque exemplar routes an observed failure symptom to a
concrete remediation tier instead of retrying blindly.

Four rungs, one per accelerating subsystem (each demotion lands on the
verified slow-but-correct tier, so a demotion can never change an
answer, only a latency):

==============  ===============  ==============
subsystem       healthy tier     degraded tier
==============  ===============  ==============
``vectorized``  ``vectorized``   ``tuple``
``parallel``    ``parallel``     ``serial``
``optimizer``   ``on``           ``off``
``plan_cache``  ``cache``        ``bypass``
==============  ===============  ==============

Error-budget math: each subsystem keeps the timestamps of its recent
fault events inside a sliding ``window`` (seconds).  While **healthy**,
reaching ``budget`` faults inside the window demotes the subsystem.
While **demoted**, every query takes the degraded tier — no fault can
even occur — until ``probation_delay`` seconds have passed; then the
subsystem enters **probation** and every ``probe_every``-th query runs
the healthy tier as a *probe*.  ``promote_after`` consecutive clean
probes re-promote (and zero the budget); a single dirty probe re-demotes
with the probation delay doubled (capped), so a persistently sick
subsystem probes geometrically less often.

The tracker is deliberately **service-scoped**, not process-global:
each :class:`~repro.service.QueryService` owns one, the HTTP server
exposes it under ``/healthz`` and Prometheus, and tests get perfect
isolation.  It never imports the engine — tier decisions are plain
strings interpreted by :func:`repro.api.run_with_options`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

# Subsystem names (the ladder's rungs).
SUBSYSTEM_VECTORIZED = "vectorized"
SUBSYSTEM_PARALLEL = "parallel"
SUBSYSTEM_OPTIMIZER = "optimizer"
SUBSYSTEM_PLAN_CACHE = "plan_cache"
SUBSYSTEM_ESTIMATOR = "estimator"

SUBSYSTEMS = (
    SUBSYSTEM_VECTORIZED,
    SUBSYSTEM_PARALLEL,
    SUBSYSTEM_OPTIMIZER,
    SUBSYSTEM_PLAN_CACHE,
    SUBSYSTEM_ESTIMATOR,
)

#: subsystem → (healthy tier label, degraded tier label).
LADDER: dict[str, tuple[str, str]] = {
    SUBSYSTEM_VECTORIZED: ("vectorized", "tuple"),
    SUBSYSTEM_PARALLEL: ("parallel", "serial"),
    SUBSYSTEM_OPTIMIZER: ("on", "off"),
    SUBSYSTEM_PLAN_CACHE: ("cache", "bypass"),
    SUBSYSTEM_ESTIMATOR: ("stats", "heuristic"),
}

# Health states.
STATE_HEALTHY = "healthy"
STATE_DEGRADED = "degraded"
STATE_PROBATION = "probation"


@dataclass(frozen=True)
class HealthPolicy:
    """Error-budget and probation tuning, shared by all subsystems.

    Attributes:
        budget: fault events inside the window that trigger a demotion.
        window: sliding window width in seconds.
        probation_delay: seconds a demotion stays sticky before the
            first probe; doubles after each failed probation, up to
            ``max_probation_delay``.
        probe_every: in probation, every n-th query runs the healthy
            tier as a probe (the rest stay degraded).
        promote_after: consecutive clean probes that re-promote.
    """

    budget: int = 5
    window: float = 30.0
    probation_delay: float = 2.0
    max_probation_delay: float = 60.0
    probe_every: int = 1
    promote_after: int = 3

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("budget must be at least 1")
        if self.window <= 0 or self.probation_delay <= 0:
            raise ValueError("window and probation_delay must be positive")
        if self.max_probation_delay < self.probation_delay:
            raise ValueError("max_probation_delay must be >= probation_delay")
        if self.probe_every < 1 or self.promote_after < 1:
            raise ValueError("probe_every and promote_after must be >= 1")


class SubsystemHealth:
    """One rung's state machine.  Not thread-safe on its own — the
    owning :class:`HealthTracker` serializes access under its lock."""

    def __init__(
        self,
        name: str,
        policy: HealthPolicy,
        clock: Callable[[], float],
    ) -> None:
        self.name = name
        self.policy = policy
        self._clock = clock
        self.state = STATE_HEALTHY
        self._faults: deque[float] = deque()
        self._demoted_at = 0.0
        self._current_delay = policy.probation_delay
        self._probe_counter = 0
        self._clean_probes = 0
        self.demotions = 0
        self.promotions = 0
        self.probes = 0

    # -- decisions ------------------------------------------------------

    def decide(self) -> tuple[bool, bool]:
        """``(use_healthy_tier, is_probe)`` for the next execution."""
        if self.state == STATE_DEGRADED:
            if self._clock() - self._demoted_at >= self._current_delay:
                self.state = STATE_PROBATION
                self._probe_counter = 0
                self._clean_probes = 0
            else:
                return False, False
        if self.state == STATE_PROBATION:
            self._probe_counter += 1
            if self._probe_counter % self.policy.probe_every == 0:
                self.probes += 1
                return True, True
            return False, False
        return True, False

    # -- observations ---------------------------------------------------

    def record_fault(self, count: int, probe: bool) -> bool:
        """Fold *count* fault events; returns True if this demoted."""
        now = self._clock()
        self._prune(now)
        for _ in range(count):
            self._faults.append(now)
        if self.state == STATE_PROBATION and probe:
            # A dirty probe: back down, and back off harder.
            self._current_delay = min(
                self._current_delay * 2.0, self.policy.max_probation_delay
            )
            self._demote(now)
            return True
        if self.state == STATE_HEALTHY and (
            len(self._faults) >= self.policy.budget
        ):
            self._demote(now)
            return True
        return False

    def record_ok(self, probe: bool) -> bool:
        """Fold one clean execution; returns True if this promoted."""
        if self.state == STATE_PROBATION and probe:
            self._clean_probes += 1
            if self._clean_probes >= self.policy.promote_after:
                self.state = STATE_HEALTHY
                self._faults.clear()
                self._current_delay = self.policy.probation_delay
                self.promotions += 1
                return True
        return False

    # -- views ----------------------------------------------------------

    @property
    def tier(self) -> str:
        healthy, degraded = LADDER[self.name]
        return healthy if self.state == STATE_HEALTHY else degraded

    def snapshot(self) -> dict[str, Any]:
        self._prune(self._clock())
        return {
            "state": self.state,
            "tier": self.tier,
            "faults_in_window": len(self._faults),
            "budget": self.policy.budget,
            "demotions": self.demotions,
            "promotions": self.promotions,
            "probes": self.probes,
            "clean_probes": self._clean_probes,
        }

    # -- internals ------------------------------------------------------

    def _demote(self, now: float) -> None:
        self.state = STATE_DEGRADED
        self._demoted_at = now
        self._clean_probes = 0
        self.demotions += 1

    def _prune(self, now: float) -> None:
        horizon = now - self.policy.window
        while self._faults and self._faults[0] < horizon:
            self._faults.popleft()


@dataclass
class HealthDecision:
    """The tiers one execution was granted, for post-hoc attribution.

    ``use`` maps subsystem → whether the healthy tier was granted;
    ``probes`` marks which of those grants were probation probes.
    Subsystems irrelevant to the execution (no parallelism requested,
    optimizer off by caller choice, ...) are absent from both, so their
    budgets never see traffic that could not have exercised them.

    ``fast`` marks a decision served from the tracker's all-healthy
    fast path: a shared, effectively-immutable grant of every relevant
    subsystem, which lets :meth:`HealthTracker.observe` skip the lock
    entirely for clean executions (a healthy ``record_ok`` is a no-op).
    """

    use: dict[str, bool] = field(default_factory=dict)
    probes: dict[str, bool] = field(default_factory=dict)
    fast: bool = False

    def granted(self, subsystem: str) -> bool:
        return self.use.get(subsystem, False)


class HealthTracker:
    """Error-budget tracker over every ladder rung, service-scoped.

    Thread-safe leaf: one lock serializes decisions and observations;
    it is never held while executing a query.  *metrics* (optional, a
    :class:`~repro.observe.metrics.MetricsRegistry`) receives demotion
    and promotion counters plus a per-subsystem degraded gauge.
    """

    def __init__(
        self,
        policy: HealthPolicy | None = None,
        *,
        metrics: Any | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        self.metrics = metrics
        self._lock = threading.Lock()
        self._subsystems = {
            name: SubsystemHealth(name, self.policy, clock)
            for name in SUBSYSTEMS
        }
        # Fast-path state: True iff every subsystem is on its healthy
        # rung.  Read without the lock in decide()/observe() — a stale
        # True can at worst grant one more healthy-tier execution
        # during a concurrent demotion, a race the slow path has
        # anyway (decisions made just before the demoting observation
        # landed).  _fast_decisions caches one shared HealthDecision
        # per relevance combination so the healthy path allocates
        # nothing per query (benchmark E18a pins this under 5%).
        self._all_healthy = True
        self._fast_decisions: dict[tuple[str, ...], HealthDecision] = {}

    # -- decisions ------------------------------------------------------

    def decide(self, relevant: dict[str, bool]) -> HealthDecision:
        """One execution's tier grants over the *relevant* subsystems.

        *relevant* maps subsystem → whether this execution could
        exercise it at all; irrelevant subsystems are skipped entirely
        (their probation counters must not advance on traffic that
        cannot probe them).
        """
        if self._all_healthy:
            key = tuple(
                name for name, applies in relevant.items() if applies
            )
            decision = self._fast_decisions.get(key)
            if decision is None:
                decision = HealthDecision(
                    use={name: True for name in key}, fast=True
                )
                self._fast_decisions[key] = decision
            return decision
        decision = HealthDecision()
        with self._lock:
            for name, applies in relevant.items():
                if not applies:
                    continue
                use_healthy, is_probe = self._subsystems[name].decide()
                decision.use[name] = use_healthy
                if is_probe:
                    decision.probes[name] = True
                    if self.metrics is not None:
                        self.metrics.inc("health_probes_total", subsystem=name)
        return decision

    # -- observations ---------------------------------------------------

    def record(self, subsystem: str, *, faults: int = 0, ok: bool = False, probe: bool = False) -> None:
        """Feed one execution's evidence for *subsystem*."""
        self._apply([(subsystem, faults, ok, probe)])

    def _apply(
        self, evidence: list[tuple[str, int, bool, bool]]
    ) -> None:
        """Fold a batch of ``(subsystem, faults, ok, probe)`` evidence
        under one lock acquisition — the healthy path records up to
        four subsystems per query, and taking the lock once keeps that
        cost off the hot statement mix (benchmark E18a)."""
        demoted: list[str] = []
        promoted: list[str] = []
        fault_counts: list[tuple[str, int]] = []
        with self._lock:
            for subsystem, faults, ok, probe in evidence:
                sub = self._subsystems[subsystem]
                if faults > 0:
                    if sub.record_fault(faults, probe):
                        demoted.append(subsystem)
                    fault_counts.append((subsystem, faults))
                elif ok:
                    if sub.record_ok(probe):
                        promoted.append(subsystem)
            if demoted or promoted:
                self._all_healthy = all(
                    sub.state == STATE_HEALTHY
                    for sub in self._subsystems.values()
                )
        if self.metrics is not None:
            for subsystem, faults in fault_counts:
                self.metrics.inc(
                    "health_faults_total", faults, subsystem=subsystem
                )
            for subsystem in demoted:
                self.metrics.inc("health_demotions_total", subsystem=subsystem)
            for subsystem in promoted:
                self.metrics.inc("health_promotions_total", subsystem=subsystem)
            if demoted or promoted:
                with self._lock:
                    self._export_gauges()

    def observe(
        self,
        decision: HealthDecision,
        *,
        stats: Any | None = None,
        outcome: Any | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Attribute one finished execution to the subsystems it used.

        The fault signals are exactly the fallback counters PR 2 and
        PR 6 already emit, plus safe-mode mismatch events:

        * ``vectorized`` — ``stats.vectorized_fallbacks`` (mid-stream
          demotions to the tuple interpreter).
        * ``parallel`` — an engine-level failure while morsel
          parallelism was active.
        * ``optimizer`` — a safe-mode mismatch (a rewrite changed the
          result and was quarantined).
        * ``plan_cache`` — ``stats.cache_skips`` (fail-closed
          fingerprint or lookup failures).
        * ``estimator`` — ``stats.estimator_fallbacks`` (statistics
          estimations demoted to the heuristic model).
        """
        if (
            decision.fast
            and error is None
            and (outcome is None or not getattr(outcome, "mismatch", False))
            and (
                stats is None
                or not (
                    getattr(stats, "vectorized_fallbacks", 0)
                    or getattr(stats, "cache_skips", 0)
                    or getattr(stats, "estimator_fallbacks", 0)
                )
            )
        ):
            # All-healthy decision, clean execution: every record would
            # be an ok on a healthy subsystem — a no-op.  Skip the lock.
            return
        evidence: list[tuple[str, int, bool, bool]] = []
        if decision.granted(SUBSYSTEM_VECTORIZED) and stats is not None:
            faults = getattr(stats, "vectorized_fallbacks", 0)
            probe = SUBSYSTEM_VECTORIZED in decision.probes
            if faults:
                evidence.append((SUBSYSTEM_VECTORIZED, faults, False, probe))
            elif getattr(stats, "vectorized_batches", 0) and error is None:
                evidence.append((SUBSYSTEM_VECTORIZED, 0, True, probe))
        if decision.granted(SUBSYSTEM_PARALLEL):
            probe = SUBSYSTEM_PARALLEL in decision.probes
            if error is not None:
                evidence.append((SUBSYSTEM_PARALLEL, 1, False, probe))
            elif stats is not None and getattr(stats, "parallel_morsels", 0):
                evidence.append((SUBSYSTEM_PARALLEL, 0, True, probe))
        if decision.granted(SUBSYSTEM_OPTIMIZER):
            probe = SUBSYSTEM_OPTIMIZER in decision.probes
            if outcome is not None and getattr(outcome, "mismatch", False):
                evidence.append((SUBSYSTEM_OPTIMIZER, 1, False, probe))
            elif outcome is not None and error is None:
                evidence.append((SUBSYSTEM_OPTIMIZER, 0, True, probe))
        if decision.granted(SUBSYSTEM_PLAN_CACHE) and stats is not None:
            probe = SUBSYSTEM_PLAN_CACHE in decision.probes
            faults = getattr(stats, "cache_skips", 0)
            if faults:
                evidence.append((SUBSYSTEM_PLAN_CACHE, faults, False, probe))
            elif error is None and (
                getattr(stats, "plan_cache_hits", 0)
                + getattr(stats, "plan_cache_misses", 0)
            ):
                evidence.append((SUBSYSTEM_PLAN_CACHE, 0, True, probe))
        if decision.granted(SUBSYSTEM_ESTIMATOR) and stats is not None:
            probe = SUBSYSTEM_ESTIMATOR in decision.probes
            faults = getattr(stats, "estimator_fallbacks", 0)
            if faults:
                evidence.append((SUBSYSTEM_ESTIMATOR, faults, False, probe))
            elif error is None and getattr(stats, "stats_estimates", 0):
                evidence.append((SUBSYSTEM_ESTIMATOR, 0, True, probe))
        if evidence:
            self._apply(evidence)

    # -- views ----------------------------------------------------------

    def tier(self, subsystem: str) -> str:
        """The tier *subsystem* currently serves at."""
        with self._lock:
            return self._subsystems[subsystem].tier

    def tiers(self) -> dict[str, str]:
        """subsystem → current tier, for ``/healthz`` and EXPLAIN."""
        with self._lock:
            return {name: sub.tier for name, sub in self._subsystems.items()}

    def state(self, subsystem: str) -> str:
        with self._lock:
            return self._subsystems[subsystem].state

    def healthy(self) -> bool:
        """Whether every subsystem sits on its healthy rung."""
        with self._lock:
            return all(
                sub.state == STATE_HEALTHY
                for sub in self._subsystems.values()
            )

    def snapshot(self) -> dict[str, Any]:
        """Full JSON-ready diagnostic view of every rung."""
        with self._lock:
            return {
                name: sub.snapshot()
                for name, sub in self._subsystems.items()
            }

    # -- metrics --------------------------------------------------------

    def _export_gauges(self) -> None:
        for name, sub in self._subsystems.items():
            self.metrics.set(
                "health_degraded",
                0.0 if sub.state == STATE_HEALTHY else 1.0,
                subsystem=name,
            )

    def export(self) -> None:
        """Publish the degraded/healthy gauges (e.g. before scraping)."""
        if self.metrics is not None:
            with self._lock:
                self._export_gauges()
