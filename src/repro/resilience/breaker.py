"""Client-side circuit breaker: stop hammering a server that is down.

Bounded retry (PR 5) protects one *request*; the breaker protects the
*server* across requests.  Each consecutive transient failure — socket
error, 429, 503, injected accept fault — increments a counter; at the
threshold the breaker **opens** and every subsequent attempt fails
locally with :class:`~repro.errors.CircuitOpenError` without touching
the network.  After a jittered recovery delay the breaker goes
**half-open**: exactly one probe request is let through, and its fate
decides — success closes the breaker, failure re-opens it with the
delay doubled (capped).  The jitter matters at fleet scale: a thousand
clients whose breakers opened together must not probe together.

State machine::

    CLOSED --(failures >= threshold)--> OPEN
    OPEN   --(recovery delay passed)--> HALF_OPEN  (one probe allowed)
    HALF_OPEN --(probe succeeds)-->     CLOSED     (delay resets)
    HALF_OPEN --(probe fails)-->        OPEN       (delay doubles)

Because :class:`~repro.errors.CircuitOpenError` subclasses
:class:`~repro.errors.TransientNetworkError` carrying the time until
the next probe as ``retry_after``, the existing retry policy composes
with the breaker for free: a retry loop sleeps exactly until the
half-open window instead of burning attempts against a dead socket.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

from ..errors import CircuitOpenError

#: Breaker states (exposed for tests and ``/healthz``-style snapshots).
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker guarding one upstream (a client holds one per server).

    Args:
        failure_threshold: consecutive transient failures that open the
            breaker.
        recovery_time: base seconds the breaker stays open before the
            first half-open probe; doubles per consecutive re-open.
        max_recovery_time: cap on the doubling.
        jitter: fraction of the recovery delay drawn uniformly and
            *added*, de-synchronizing probes across a client fleet.
        clock / rng: injectable for deterministic tests.

    Thread-safe: all transitions run under one leaf lock; the half-open
    single-probe guarantee holds across threads sharing a backend.
    """

    def __init__(
        self,
        failure_threshold: int = 6,
        recovery_time: float = 0.2,
        max_recovery_time: float = 5.0,
        jitter: float = 0.5,
        *,
        clock: Callable[[], float] = time.monotonic,
        rng: random.Random | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if recovery_time <= 0 or max_recovery_time < recovery_time:
            raise ValueError("recovery times must be positive and ordered")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.max_recovery_time = max_recovery_time
        self.jitter = jitter
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._failures = 0
        self._open_until = 0.0
        self._current_recovery = recovery_time
        self._probe_in_flight = False
        self.opens = 0  # cumulative, for tests/metrics

    # -- views ----------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, with the open→half-open clock edge applied."""
        with self._lock:
            self._advance()
            return self._state

    def snapshot(self) -> dict:
        """JSON-ready diagnostic view."""
        with self._lock:
            self._advance()
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "recovery_time": self._current_recovery,
            }

    # -- the gate -------------------------------------------------------

    def acquire(self) -> None:
        """Gate one attempt: pass, or raise :class:`CircuitOpenError`.

        In half-open state exactly one caller passes (the probe);
        everyone else fails fast until its verdict is recorded.
        """
        with self._lock:
            self._advance()
            if self._state == STATE_CLOSED:
                return
            if self._state == STATE_HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return
            raise CircuitOpenError(max(0.0, self._open_until - self._clock()))

    def record_success(self) -> None:
        """The attempt succeeded: close (and reset the backoff)."""
        with self._lock:
            self._failures = 0
            self._probe_in_flight = False
            if self._state != STATE_CLOSED:
                self._state = STATE_CLOSED
                self._current_recovery = self.recovery_time

    def record_failure(self) -> None:
        """The attempt failed transiently: count it, maybe open."""
        with self._lock:
            self._advance()
            if self._state == STATE_HALF_OPEN:
                # The probe failed: re-open with the delay doubled.
                self._probe_in_flight = False
                self._current_recovery = min(
                    self._current_recovery * 2.0, self.max_recovery_time
                )
                self._open(self._current_recovery)
                return
            self._failures += 1
            if self._state == STATE_CLOSED and (
                self._failures >= self.failure_threshold
            ):
                self._open(self._current_recovery)

    # -- internals (call under the lock) --------------------------------

    def _advance(self) -> None:
        if self._state == STATE_OPEN and self._clock() >= self._open_until:
            self._state = STATE_HALF_OPEN
            self._probe_in_flight = False

    def _open(self, delay: float) -> None:
        self._state = STATE_OPEN
        self.opens += 1
        jittered = delay * (1.0 + self.jitter * self._rng.random())
        self._open_until = self._clock() + jittered
