"""Static name resolution (binding) of queries against a catalog.

The uniqueness analysis works with fully-qualified attributes
``(relation, column)``, but SQL lets queries reference columns without a
qualifier.  :func:`qualify` rewrites a predicate so every
:class:`ColumnRef` carries the effective table name it resolves to;
:func:`projection_attributes` does the same for select lists.

Column references that do not resolve against the query's own FROM
clause are assumed to be *correlated* (they belong to an enclosing
block) and are left untouched when ``allow_correlated`` is set.
"""

from __future__ import annotations

from ..catalog.schema import Catalog
from ..errors import AmbiguousColumnError, UnknownColumnError, UnknownTableError
from ..sql.ast import SelectQuery, Star
from ..sql.expressions import ColumnRef, Exists, Expr, InSubquery
from .attributes import Attribute


def table_columns(query: SelectQuery, catalog: Catalog) -> dict[str, list[str]]:
    """Map each FROM-clause effective name to its column list."""
    mapping: dict[str, list[str]] = {}
    for table_ref in query.tables:
        schema = catalog.table(table_ref.name)
        mapping[table_ref.effective_name] = schema.column_names
    return mapping


def resolve_column(
    ref: ColumnRef,
    columns: dict[str, list[str]],
    allow_correlated: bool = False,
) -> ColumnRef | None:
    """Resolve *ref* to a fully-qualified reference.

    Returns None for unresolvable references when *allow_correlated* is
    set (the reference belongs to an outer block); raises otherwise.
    """
    if ref.qualifier is not None:
        if ref.qualifier in columns:
            if ref.column not in columns[ref.qualifier]:
                raise UnknownColumnError(ref.qualifier, ref.column)
            return ref
        if allow_correlated:
            return None
        raise UnknownTableError(ref.qualifier)
    owners = [alias for alias, cols in columns.items() if ref.column in cols]
    if len(owners) == 1:
        return ColumnRef(owners[0], ref.column)
    if len(owners) > 1:
        raise AmbiguousColumnError(ref.column, owners)
    if allow_correlated:
        return None
    raise UnknownColumnError("?", ref.column)


def qualify(
    expr: Expr,
    columns: dict[str, list[str]],
    allow_correlated: bool = False,
) -> Expr:
    """Rewrite *expr* so every local column reference is qualified.

    Subquery atoms (EXISTS / IN) are left intact — their references are
    resolved against their own FROM clauses by whoever descends into
    them.
    """

    def rewrite(node: Expr) -> Expr | None:
        if isinstance(node, (Exists, InSubquery)):
            return node
        if isinstance(node, ColumnRef):
            resolved = resolve_column(node, columns, allow_correlated)
            return resolved if resolved is not None else node
        return None

    return expr.transform(rewrite)


def qualify_query_predicate(
    query: SelectQuery, catalog: Catalog, allow_correlated: bool = False
) -> Expr | None:
    """The query's WHERE predicate with local references qualified."""
    if query.where is None:
        return None
    return qualify(query.where, table_columns(query, catalog), allow_correlated)


def projection_attributes(
    query: SelectQuery, catalog: Catalog
) -> list[Attribute]:
    """The fully-qualified attributes of the query's select list.

    ``*`` expands to every column of every FROM table; ``q.*`` to the
    columns of table ``q``.
    """
    columns = table_columns(query, catalog)
    attributes: list[Attribute] = []
    for item in query.select_list:
        if isinstance(item, Star):
            if item.qualifier is None:
                qualifiers = list(columns)
            else:
                if item.qualifier not in columns:
                    raise UnknownTableError(item.qualifier)
                qualifiers = [item.qualifier]
            for qualifier in qualifiers:
                attributes.extend(
                    Attribute(qualifier, name) for name in columns[qualifier]
                )
        else:
            expr = item.expr
            if not isinstance(expr, ColumnRef):
                raise UnknownColumnError("?", "<non-column select item>")
            resolved = resolve_column(expr, columns)
            assert resolved is not None and resolved.qualifier is not None
            attributes.append(Attribute(resolved.qualifier, resolved.column))
    return attributes
