"""Conversion of predicates to negation/conjunctive/disjunctive normal form.

Algorithm 1 operates on a CNF view of the selection predicate and then a
DNF view of the surviving equality conditions.  These conversions are
purely structural; they are exact under Kleene three-valued logic:

* double negation and De Morgan's laws hold in Kleene logic,
* ``NOT (a = b)`` and ``a <> b`` agree (both UNKNOWN on NULL),
* ``BETWEEN`` and ``IN`` lists are expanded into comparisons first, so
  ``X IN (5, 10)`` is visible to the algorithm as ``X = 5 OR X = 10``.

Distribution can explode exponentially; conversions raise
:class:`NormalFormOverflow` past a clause budget so callers can fall
back to a conservative answer.
"""

from __future__ import annotations

from ..cache import MISSING, LRUCache
from ..errors import ReproError
from ..sql.expressions import (
    And,
    Between,
    Comparison,
    Exists,
    Expr,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    conjoin,
    disjoin,
)

#: Upper bound on the number of clauses/terms a conversion may produce.
DEFAULT_CLAUSE_BUDGET = 512


class NormalFormOverflow(ReproError):
    """Raised when CNF/DNF distribution exceeds the clause budget."""


# Expression trees are immutable (frozen dataclasses), so a conversion
# keyed on (expr, budget) can never go stale.  Overflows are cached too
# — re-distributing an exploding predicate just to re-raise is the most
# expensive possible miss.
_OVERFLOW = object()
_cnf_cache = LRUCache("cnf", maxsize=1024)
_dnf_cache = LRUCache("dnf", maxsize=1024)


def _cached_conversion(
    cache: LRUCache, expr: Expr, budget: int, over_or: bool
) -> list[list[Expr]]:
    key = (expr, budget)
    cached = cache.get(key)
    if cached is _OVERFLOW:
        raise NormalFormOverflow(f"normal form exceeds {budget} clauses")
    if cached is MISSING:
        try:
            cached = _dedup(_distribute(to_nnf(expr), over_or, budget))
        except NormalFormOverflow:
            cache.put(key, _OVERFLOW)
            raise
        cache.put(key, cached)
    # Fresh outer/inner lists: callers may consume their copy destructively.
    return [list(group) for group in cached]


def expand_sugar(expr: Expr) -> Expr:
    """Expand BETWEEN and IN-list atoms into comparisons."""

    def rewrite(node: Expr) -> Expr | None:
        if isinstance(node, Between):
            return node.expand()
        if isinstance(node, InList):
            return node.expand()
        return None

    return expr.transform(rewrite)


def to_nnf(expr: Expr) -> Expr:
    """Negation normal form: NOT pushed onto atoms (and absorbed when
    the atom has an exact negation, e.g. comparisons and IS NULL)."""
    expr = expand_sugar(expr)
    return _nnf(expr, negated=False)


def _nnf(expr: Expr, negated: bool) -> Expr:
    if isinstance(expr, Not):
        return _nnf(expr.operand, not negated)
    if isinstance(expr, And):
        parts = [_nnf(op, negated) for op in expr.operands]
        return disjoin(parts) if negated else conjoin(parts)
    if isinstance(expr, Or):
        parts = [_nnf(op, negated) for op in expr.operands]
        return conjoin(parts) if negated else disjoin(parts)
    if not negated:
        return expr
    if isinstance(expr, (Comparison, IsNull, Exists)):
        return expr.negate()
    if isinstance(expr, InSubquery):
        return InSubquery(expr.operand, expr.query, not expr.negated)
    if isinstance(expr, Literal) and isinstance(expr.value, bool):
        return Literal(not expr.value)
    return Not(expr)  # opaque atom: keep the negation on it


def to_cnf_clauses(
    expr: Expr, budget: int = DEFAULT_CLAUSE_BUDGET
) -> list[list[Expr]]:
    """CNF as a list of clauses, each clause a list of atoms (disjuncts).

    Raises:
        NormalFormOverflow: if distribution would exceed *budget* clauses.
    """
    return _cached_conversion(_cnf_cache, expr, budget, over_or=True)


def to_dnf_terms(
    expr: Expr, budget: int = DEFAULT_CLAUSE_BUDGET
) -> list[list[Expr]]:
    """DNF as a list of terms, each term a list of atoms (conjuncts)."""
    return _cached_conversion(_dnf_cache, expr, budget, over_or=False)


def _distribute(expr: Expr, over_or: bool, budget: int) -> list[list[Expr]]:
    """Return CNF clauses (over_or=True) or DNF terms (over_or=False).

    The result is a list of groups; for CNF a group is a disjunction, for
    DNF a conjunction.  The two cases are duals, differing only in which
    connective multiplies out.
    """
    outer_type, inner_type = (And, Or) if over_or else (Or, And)

    if isinstance(expr, outer_type):
        groups: list[list[Expr]] = []
        for operand in expr.operands:
            groups.extend(_distribute(operand, over_or, budget))
            if len(groups) > budget:
                raise NormalFormOverflow(
                    f"normal form exceeds {budget} clauses"
                )
        return groups
    if isinstance(expr, inner_type):
        # Cartesian combination of the operands' groups.
        product: list[list[Expr]] = [[]]
        for operand in expr.operands:
            operand_groups = _distribute(operand, over_or, budget)
            product = [
                existing + group
                for existing in product
                for group in operand_groups
            ]
            if len(product) > budget:
                raise NormalFormOverflow(
                    f"normal form exceeds {budget} clauses"
                )
        return product
    return [[expr]]


def _dedup(groups: list[list[Expr]]) -> list[list[Expr]]:
    """Remove duplicate atoms within each group and duplicate groups."""
    seen: set[frozenset[Expr]] = set()
    result: list[list[Expr]] = []
    for group in groups:
        unique: list[Expr] = []
        members: set[Expr] = set()
        for atom in group:
            if atom not in members:
                members.add(atom)
                unique.append(atom)
        key = frozenset(members)
        if key not in seen:
            seen.add(key)
            result.append(unique)
    return result


def clauses_to_expr(clauses: list[list[Expr]]) -> Expr:
    """Rebuild a CNF clause list into an expression."""
    return conjoin([disjoin(clause) for clause in clauses])


def terms_to_expr(terms: list[list[Expr]]) -> Expr:
    """Rebuild a DNF term list into an expression."""
    return disjoin([conjoin(term) for term in terms])
