"""Qualified attribute identities used throughout the analysis layer."""

from __future__ import annotations

from typing import NamedTuple


class Attribute(NamedTuple):
    """A fully-qualified column: ``(relation, column)``.

    ``relation`` is the *effective* FROM-clause name (the alias when one
    is declared), so two scans of the same base table stay distinct.
    """

    relation: str
    column: str

    def __str__(self) -> str:
        return f"{self.relation}.{self.column}"


AttributeSet = frozenset[Attribute]


def attribute_set(attributes) -> AttributeSet:
    """Freeze an iterable of attributes into an :data:`AttributeSet`."""
    return frozenset(attributes)
