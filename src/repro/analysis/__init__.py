"""Predicate analysis: binding, normal forms, equality classification."""

from .attributes import Attribute, AttributeSet, attribute_set
from .binding import (
    projection_attributes,
    qualify,
    qualify_query_predicate,
    resolve_column,
    table_columns,
)
from .closure import bound_closure, equivalence_classes
from .conditions import Equality, Type1, Type2, atom_attributes, classify_atom
from .normal_forms import (
    DEFAULT_CLAUSE_BUDGET,
    NormalFormOverflow,
    clauses_to_expr,
    expand_sugar,
    terms_to_expr,
    to_cnf_clauses,
    to_dnf_terms,
    to_nnf,
)

__all__ = [
    "Attribute",
    "AttributeSet",
    "DEFAULT_CLAUSE_BUDGET",
    "Equality",
    "NormalFormOverflow",
    "Type1",
    "Type2",
    "atom_attributes",
    "attribute_set",
    "bound_closure",
    "classify_atom",
    "clauses_to_expr",
    "equivalence_classes",
    "expand_sugar",
    "projection_attributes",
    "qualify",
    "qualify_query_predicate",
    "resolve_column",
    "table_columns",
    "terms_to_expr",
    "to_cnf_clauses",
    "to_dnf_terms",
    "to_nnf",
]
