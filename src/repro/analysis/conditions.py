"""Classification of equality conditions.

Algorithm 1 distinguishes (§4):

* **Type 1** conditions ``v = c`` — a column equated with a constant
  (literal or host variable; a host variable is a constant for the
  duration of one execution, so it binds the column exactly like a
  literal — the paper's Example 4 relies on this), and
* **Type 2** conditions ``v1 = v2`` — two columns equated.

Atoms that are neither (non-equality comparisons, IS NULL tests,
subqueries, ...) carry no binding information for the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sql.expressions import ColumnRef, Comparison, Expr, HostVar, IsNull, Literal
from ..types.values import is_null
from .attributes import Attribute


@dataclass(frozen=True)
class Type1:
    """``attribute = constant`` (constant: literal or host variable)."""

    attribute: Attribute
    constant: Expr  # Literal or HostVar


@dataclass(frozen=True)
class Type2:
    """``left = right`` between two columns."""

    left: Attribute
    right: Attribute


Equality = Type1 | Type2


def classify_atom(
    atom: Expr, treat_is_null_as_binding: bool = False
) -> Equality | None:
    """Classify one atom as Type 1, Type 2, or neither (None).

    Column references must already be qualified (see
    :func:`repro.analysis.binding.qualify`); unqualified references are
    treated as unusable.

    With ``treat_is_null_as_binding`` an affirmative ``v IS NULL`` counts
    as a Type 1 binding: any two qualifying rows both carry NULL in
    ``v``, which agree under the ≐ semantics of duplicate elimination.
    This is a sound extension beyond the paper's algorithm (ablation A1
    measures its effect).
    """
    if isinstance(atom, IsNull) and not atom.negated and treat_is_null_as_binding:
        operand = atom.operand
        if isinstance(operand, ColumnRef) and operand.qualifier is not None:
            attribute = Attribute(operand.qualifier, operand.column)
            return Type1(attribute, _NULL_CONSTANT)
        return None
    if not isinstance(atom, Comparison) or atom.op != "=":
        return None
    left, right = atom.left, atom.right
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        if left.qualifier is None or right.qualifier is None:
            return None
        return Type2(
            Attribute(left.qualifier, left.column),
            Attribute(right.qualifier, right.column),
        )
    if isinstance(left, ColumnRef) and _is_constant(right):
        if left.qualifier is None:
            return None
        return Type1(Attribute(left.qualifier, left.column), right)
    if isinstance(right, ColumnRef) and _is_constant(left):
        if right.qualifier is None:
            return None
        return Type1(Attribute(right.qualifier, right.column), left)
    return None


def _is_constant(expr: Expr) -> bool:
    if isinstance(expr, HostVar):
        return True
    if isinstance(expr, Literal):
        # "v = NULL" is never true in WHERE semantics; it binds nothing.
        return not is_null(expr.value)
    return False


def atom_attributes(atom: Expr) -> set[Attribute]:
    """All qualified attributes mentioned by an atom."""
    attributes: set[Attribute] = set()
    for node in atom.walk():
        if isinstance(node, ColumnRef) and node.qualifier is not None:
            attributes.add(Attribute(node.qualifier, node.column))
    return attributes


class _NullMarker(Expr):
    """Sentinel constant representing 'bound to NULL' for IS NULL atoms."""

    def __repr__(self) -> str:
        return "<null-binding>"


_NULL_CONSTANT = _NullMarker()
