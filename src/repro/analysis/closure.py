"""Bound-attribute transitive closure (Algorithm 1, lines 13–16).

Starting from the projection attributes, an attribute becomes *bound*
when it is equated with a constant (Type 1) or — transitively — with an
already-bound attribute (Type 2).  A bound attribute is functionally
determined by the query result: two result rows that agree on the
projection necessarily agree on every bound attribute.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .attributes import Attribute, AttributeSet
from .conditions import Equality, Type1, Type2


def bound_closure(
    seed: Iterable[Attribute], equalities: Sequence[Equality]
) -> AttributeSet:
    """The set V of Algorithm 1: seed attributes plus every attribute
    reachable through Type 1 bindings and Type 2 equality chains."""
    bound: set[Attribute] = set(seed)
    for equality in equalities:
        if isinstance(equality, Type1):
            bound.add(equality.attribute)

    pairs = [
        (equality.left, equality.right)
        for equality in equalities
        if isinstance(equality, Type2)
    ]
    changed = True
    while changed:
        changed = False
        for left, right in pairs:
            if left in bound and right not in bound:
                bound.add(right)
                changed = True
            elif right in bound and left not in bound:
                bound.add(left)
                changed = True
    return frozenset(bound)


def equivalence_classes(
    equalities: Sequence[Equality],
) -> list[set[Attribute]]:
    """Union-find style equivalence classes induced by Type 2 conditions.

    Used by the Theorem 2 tester to reason about which inner-table
    columns a correlation predicate pins down.
    """
    parent: dict[Attribute, Attribute] = {}

    def find(attribute: Attribute) -> Attribute:
        parent.setdefault(attribute, attribute)
        root = attribute
        while parent[root] != root:
            root = parent[root]
        while parent[attribute] != root:
            parent[attribute], attribute = root, parent[attribute]
        return root

    def union(a: Attribute, b: Attribute) -> None:
        parent[find(a)] = find(b)

    for equality in equalities:
        if isinstance(equality, Type2):
            union(equality.left, equality.right)

    groups: dict[Attribute, set[Attribute]] = {}
    for attribute in parent:
        groups.setdefault(find(attribute), set()).add(attribute)
    return list(groups.values())
