"""IMS segment type definitions (the DBD, in IMS terms).

An IMS database is a forest of *segments* arranged in a hierarchy: a
root segment type and, under each type, an ordered list of child types.
Each segment occurrence carries a fixed set of fields, one of which may
be a key ("sequence field").  Figure 2 of the paper uses::

    SUPPLIER (root, key SNO)
      ├── PARTS (key PNO)
      └── AGENT (key ANO)

with HIDAM organization: key-sequenced roots reachable through an index,
and parent-child/twin pointers below.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ImsError


@dataclass
class SegmentType:
    """One segment type of the hierarchy.

    Attributes:
        name: segment name (upper case).
        fields: field names, in storage order.
        key_field: the sequence field, or None for unkeyed segments.
        parent: the parent type (None for the root).
        children: child types in hierarchic order.
    """

    name: str
    fields: list[str]
    key_field: str | None = None
    parent: "SegmentType | None" = None
    children: list["SegmentType"] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.name = self.name.upper()
        self.fields = [f.upper() for f in self.fields]
        if self.key_field is not None:
            self.key_field = self.key_field.upper()
            if self.key_field not in self.fields:
                raise ImsError(
                    f"key field {self.key_field!r} is not a field of "
                    f"segment {self.name!r}"
                )

    def field_index(self, name: str) -> int:
        """Positional index of a field."""
        try:
            return self.fields.index(name.upper())
        except ValueError:
            raise ImsError(
                f"segment {self.name!r} has no field {name!r}"
            ) from None

    def child(self, name: str) -> "SegmentType":
        """Look up a child segment type by name."""
        for child in self.children:
            if child.name == name.upper():
                return child
        raise ImsError(f"segment {self.name!r} has no child {name!r}")

    def is_root(self) -> bool:
        """Whether this type is the hierarchy root."""
        return self.parent is None

    def add_child(
        self, name: str, fields: list[str], key_field: str | None = None
    ) -> "SegmentType":
        """Define and attach a child segment type (multi-level builds)."""
        child = SegmentType(name, fields, key_field, parent=self)
        self.children.append(child)
        return child

    def is_descendant_of(self, ancestor: "SegmentType") -> bool:
        """Whether *ancestor* appears on this type's parent chain."""
        current = self.parent
        while current is not None:
            if current is ancestor:
                return True
            current = current.parent
        return False


class Hierarchy:
    """A database description: the root segment type plus lookup by name."""

    def __init__(self, root: SegmentType) -> None:
        if not root.is_root():
            raise ImsError("hierarchy root must have no parent")
        self.root = root
        self._by_name: dict[str, SegmentType] = {}
        self._register(root)

    def _register(self, segment_type: SegmentType) -> None:
        if segment_type.name in self._by_name:
            raise ImsError(f"duplicate segment name {segment_type.name!r}")
        self._by_name[segment_type.name] = segment_type
        for child in segment_type.children:
            if child.parent is not segment_type:
                raise ImsError(
                    f"segment {child.name!r} has inconsistent parent link"
                )
            self._register(child)

    def segment_type(self, name: str) -> SegmentType:
        """Look up a segment type anywhere in the hierarchy."""
        try:
            return self._by_name[name.upper()]
        except KeyError:
            raise ImsError(f"unknown segment {name!r}") from None

    def segment_names(self) -> list[str]:
        """All segment type names, root first (hierarchic order)."""
        return list(self._by_name)


def define_hierarchy(
    root_name: str,
    root_fields: list[str],
    root_key: str,
    children: list[tuple[str, list[str], str | None]],
) -> Hierarchy:
    """Convenience constructor for one-level hierarchies (like Figure 2).

    *children* is a list of ``(name, fields, key_field)`` triples.
    """
    root = SegmentType(root_name, root_fields, root_key)
    for name, fields, key in children:
        child = SegmentType(name, fields, key, parent=root)
        root.children.append(child)
    return Hierarchy(root)
