"""HIDAM-style storage for an IMS hierarchy.

Root segments are key-sequenced and reachable through a primary index
(a sorted mapping), as in HIDAM; dependent segments hang off their
parent through physical-child pointers, with twins (same-type siblings)
kept in key order when the type has a sequence field.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..errors import ImsError
from ..types.values import SqlValue
from .segments import Hierarchy, SegmentType


@dataclass
class Segment:
    """One stored segment occurrence."""

    segment_type: SegmentType
    values: tuple
    children: dict[str, list["Segment"]] = field(default_factory=dict)

    @property
    def key(self) -> SqlValue | None:
        """The sequence-field value, or None for unkeyed segments."""
        if self.segment_type.key_field is None:
            return None
        return self.values[self.segment_type.field_index(self.segment_type.key_field)]

    def field(self, name: str) -> SqlValue:
        """The value of one field."""
        return self.values[self.segment_type.field_index(name)]

    def twins(self, child_name: str) -> list["Segment"]:
        """Children of one type, in twin-chain (key) order."""
        return self.children.get(child_name.upper(), [])

    def as_dict(self) -> dict[str, SqlValue]:
        """Field name -> value mapping."""
        return dict(zip(self.segment_type.fields, self.values))


class ImsDatabase:
    """A populated hierarchical database."""

    def __init__(self, hierarchy: Hierarchy) -> None:
        self.hierarchy = hierarchy
        self.roots: list[Segment] = []  # key-sequenced
        self._root_keys: list = []  # parallel list for the primary index

    # ------------------------------------------------------------------
    # loading

    def insert_root(self, values: Sequence[SqlValue]) -> Segment:
        """Insert a root segment, keeping key sequence (HIDAM index)."""
        root_type = self.hierarchy.root
        segment = Segment(root_type, tuple(values))
        key = segment.key
        if key is None:
            raise ImsError("root segments must be keyed")
        position = bisect.bisect_left(self._root_keys, key)
        if position < len(self._root_keys) and self._root_keys[position] == key:
            raise ImsError(f"duplicate root key {key!r}")
        self.roots.insert(position, segment)
        self._root_keys.insert(position, key)
        return segment

    def insert_child(
        self, parent: Segment, child_name: str, values: Sequence[SqlValue]
    ) -> Segment:
        """Insert a dependent segment under *parent*, in twin-key order."""
        child_type = parent.segment_type.child(child_name)
        segment = Segment(child_type, tuple(values))
        twins = parent.children.setdefault(child_type.name, [])
        if child_type.key_field is not None:
            key = segment.key
            keys = [twin.key for twin in twins]
            position = bisect.bisect_right(keys, key)
            twins.insert(position, segment)
        else:
            twins.append(segment)
        return segment

    # ------------------------------------------------------------------
    # access paths

    def find_root(self, key: SqlValue) -> tuple[Segment | None, int]:
        """Primary-index lookup of a root by key.

        Returns ``(segment, index)``; segment is None when absent (index
        is then the insertion point, useful for positioning).
        """
        position = bisect.bisect_left(self._root_keys, key)
        if position < len(self._root_keys) and self._root_keys[position] == key:
            return self.roots[position], position
        return None, position

    def hierarchic_order(self) -> Iterator[Segment]:
        """All segments in hierarchic (preorder, twin-order) sequence."""
        for root in self.roots:
            yield from self._preorder(root)

    def _preorder(self, segment: Segment) -> Iterator[Segment]:
        yield segment
        for child_type in segment.segment_type.children:
            for child in segment.twins(child_type.name):
                yield from self._preorder(child)

    def descendants(self, segment: Segment, type_name: str) -> list[Segment]:
        """All occurrences of one type within *segment*'s subtree,
        in hierarchic (preorder) sequence — what GNP walks for
        non-direct-child segment types."""
        wanted = type_name.upper()
        found: list[Segment] = []
        for child_type in segment.segment_type.children:
            for child in segment.twins(child_type.name):
                if child.segment_type.name == wanted:
                    found.append(child)
                found.extend(self.descendants(child, wanted))
        return found

    def segment_count(self, name: str | None = None) -> int:
        """Number of stored segments (of one type, or all)."""
        total = 0
        for segment in self.hierarchic_order():
            if name is None or segment.segment_type.name == name.upper():
                total += 1
        return total
