"""SQL gateway over the IMS simulator.

Models the University-of-Waterloo multidatabase gateway the paper's §6.1
describes: SQL queries against *relational views* of an IMS hierarchy
are translated into iterative DL/I programs.  Two layers:

* the **data access layer** translates supported query shapes directly
  into GU/GN/GNP programs (root scans, parent/child joins, and
  correlated EXISTS probes);
* the **post-processing layer** handles whatever the data access layer
  cannot — residual predicates, projection, DISTINCT (a sort), ORDER BY
  — at a cost the gateway counts separately, since the paper's premise
  is that plans confined to the data access layer are cheaper.

Relational view (Figure 2): the root segment maps to a table of its
fields; each child segment maps to a table of the root's key field (a
*virtual column*) followed by the child's own fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog.builder import CatalogBuilder
from ..catalog.schema import Catalog
from ..errors import ImsError, MissingHostVariableError, UnsupportedQueryError
from ..observe.trace import NULL_SPAN, TRACER
from ..resilience.retry import RetryPolicy, call_with_retry
from ..engine.evaluator import Evaluator
from ..engine.projection import resolve_projection
from ..engine.result import Result
from ..engine.schema import RelSchema, Scope
from ..sql.ast import Query, SelectQuery
from ..sql.expressions import (
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    HostVar,
    Literal,
    conjoin,
    conjuncts,
)
from ..sql.parser import parse_query
from ..analysis.binding import qualify, table_columns
from ..types.values import SqlValue, row_sort_key, sort_key
from .database import ImsDatabase, Segment
from .dli import SSA, Dli, DliStats
from .programs import exists_strategy, join_strategy, root_scan_strategy


@dataclass
class GatewayStats:
    """Cost account for one gateway execution."""

    dli: DliStats = field(default_factory=DliStats)
    strategy: str = ""
    post_filter_evals: int = 0
    post_rows_sorted: int = 0
    used_post_processing: bool = False
    retries: int = 0

    def reset_attempt(self) -> None:
        """Zero per-attempt counters before a retry re-runs the program.

        DL/I reads are side-effect free, so a retry replays the whole
        iterative program; counters must reflect the attempt that
        succeeded, not the sum over attempts (``retries`` records how
        many attempts were abandoned).
        """
        self.dli.reset()
        self.strategy = ""
        self.post_filter_evals = 0
        self.post_rows_sorted = 0
        self.used_post_processing = False

    def describe(self) -> str:
        """Compact one-line summary: strategy, DL/I work, post work."""
        parts = [f"strategy={self.strategy}", self.dli.describe()]
        if self.used_post_processing:
            parts.append(
                f"post: filter_evals={self.post_filter_evals}, "
                f"rows_sorted={self.post_rows_sorted}"
            )
        if self.retries:
            parts.append(f"retries={self.retries}")
        return "; ".join(parts)


class ImsGateway:
    """Executes a supported SQL subset against an :class:`ImsDatabase`."""

    def __init__(
        self,
        database: ImsDatabase,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.database = database
        self.retry_policy = retry_policy or RetryPolicy()
        root = database.hierarchy.root
        if root.key_field is None:
            raise ImsError("the gateway requires a keyed root segment")
        self.root_name = root.name
        self.root_key = root.key_field
        self._child_names = {child.name for child in root.children}

    # ------------------------------------------------------------------
    # relational view

    def catalog(self) -> Catalog:
        """The relational-view catalog for this hierarchy."""
        builder = CatalogBuilder()
        root = self.database.hierarchy.root
        table = builder.table(root.name)
        for name in root.fields:
            table.column(name)
        table.primary_key(root.key_field)
        builder = table.finish()
        for child in root.children:
            table = builder.table(child.name)
            table.column(self.root_key)  # virtual parent-key column
            for name in child.fields:
                table.column(name)
            if child.key_field is not None:
                table.primary_key(self.root_key, child.key_field)
            table.foreign_key(self.root_key, root.name, self.root_key)
            builder = table.finish()
        return builder.build()

    def view_columns(self, segment_name: str) -> list[str]:
        """Columns of the relational view of one segment type."""
        segment_name = segment_name.upper()
        if segment_name == self.root_name:
            return list(self.database.hierarchy.root.fields)
        child = self.database.hierarchy.segment_type(segment_name)
        return [self.root_key] + list(child.fields)

    # ------------------------------------------------------------------
    # execution

    def execute(
        self,
        query: Query | str,
        params: dict[str, SqlValue] | None = None,
        stats: GatewayStats | None = None,
    ) -> Result:
        """Run *query* through the gateway.

        Transient DL/I failures (:class:`~repro.errors.TransientImsError`)
        are retried with bounded, jittered exponential backoff.  DL/I
        reads have no side effects here, so a retry replays the whole
        iterative program from scratch; per-attempt counters are reset so
        *stats* describes the successful attempt, with ``stats.retries``
        counting the abandoned ones.

        Raises:
            UnsupportedQueryError: when no DL/I translation exists.
            TransientImsError: when every retry attempt is exhausted.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if not isinstance(query, SelectQuery):
            raise UnsupportedQueryError(
                "the gateway executes query specifications only"
            )
        stats = stats if stats is not None else GatewayStats()
        params = {key.upper(): value for key, value in (params or {}).items()}

        def on_retry(attempt: int, error: BaseException) -> None:
            stats.retries += 1
            stats.reset_attempt()

        span_cm = (
            TRACER.span("ims.execute") if TRACER.enabled else NULL_SPAN
        )
        with span_cm as span:
            result = call_with_retry(
                lambda: self._translate(query, params, stats),
                policy=self.retry_policy,
                on_retry=on_retry,
            )
            if span:
                span.attributes.update(
                    strategy=stats.strategy,
                    dli_calls=stats.dli.total_calls(),
                    rows=len(result),
                )
                if stats.retries:
                    span.attributes["retries"] = stats.retries
        return result

    # ------------------------------------------------------------------
    # translation

    def _translate(
        self,
        query: SelectQuery,
        params: dict[str, SqlValue],
        stats: GatewayStats,
    ) -> Result:
        aliases = {}
        for ref in query.tables:
            name = ref.name.upper()
            if name != self.root_name and name not in self._child_names:
                raise UnsupportedQueryError(f"unknown segment table {ref.name}")
            aliases[ref.effective_name] = name
        columns = {
            alias: self.view_columns(segment)
            for alias, segment in aliases.items()
        }
        where = (
            qualify(query.where, columns, allow_correlated=False)
            if query.where is not None
            else None
        )

        root_aliases = [a for a, s in aliases.items() if s == self.root_name]
        child_aliases = [a for a, s in aliases.items() if s != self.root_name]

        if len(root_aliases) == 1 and not child_aliases:
            rows, schema, residual = self._root_block(
                query, root_aliases[0], where, params, stats
            )
        elif len(root_aliases) == 1 and len(child_aliases) == 1:
            rows, schema, residual = self._join_block(
                query,
                root_aliases[0],
                child_aliases[0],
                aliases[child_aliases[0]],
                where,
                params,
                stats,
            )
        elif not root_aliases and len(child_aliases) == 1:
            rows, schema, residual = self._child_scan_block(
                query, child_aliases[0], aliases[child_aliases[0]], where,
                params, stats,
            )
        else:
            raise UnsupportedQueryError(
                "the gateway supports root scans, one root/child join, or a "
                "single child scan"
            )

        return self._post_process(query, rows, schema, residual, params, stats)

    def _root_block(
        self,
        query: SelectQuery,
        alias: str,
        where: Expr | None,
        params: dict[str, SqlValue],
        stats: GatewayStats,
    ):
        parts = conjuncts(where)
        exists_parts = [
            p for p in parts if isinstance(p, Exists) and not p.negated
        ]
        plain_parts = [p for p in parts if p not in exists_parts]
        root_ssa, residual = self._pick_ssa(
            self.root_name, alias, plain_parts, params
        )

        if len(exists_parts) == 1:
            child_ssa, child_alias, child_residual = self._exists_child_ssa(
                exists_parts[0], alias, params
            )
            if child_residual:
                raise UnsupportedQueryError(
                    "EXISTS residual predicates are not supported by the "
                    "data access layer"
                )
            stats.strategy = "exists(nested probe)"
            dli = Dli(self.database, stats.dli)
            rows = exists_strategy(
                dli, root_ssa, child_ssa, lambda root, child: root.values
            )
            schema = RelSchema.for_table(alias, self.view_columns(self.root_name))
            return rows, schema, residual
        if exists_parts:
            raise UnsupportedQueryError(
                "at most one EXISTS conjunct is supported"
            )

        stats.strategy = "root scan"
        dli = Dli(self.database, stats.dli)
        rows = root_scan_strategy(dli, root_ssa)
        schema = RelSchema.for_table(alias, self.view_columns(self.root_name))
        return rows, schema, residual

    def _join_block(
        self,
        query: SelectQuery,
        root_alias: str,
        child_alias: str,
        child_segment: str,
        where: Expr | None,
        params: dict[str, SqlValue],
        stats: GatewayStats,
    ):
        parts = conjuncts(where)
        join_found = False
        root_parts: list[Expr] = []
        child_parts: list[Expr] = []
        residual: list[Expr] = []
        for part in parts:
            if self._is_parent_child_join(part, root_alias, child_alias):
                join_found = True
                continue
            refs = {
                node.qualifier
                for node in part.walk()
                if isinstance(node, ColumnRef)
            }
            if refs <= {root_alias}:
                root_parts.append(part)
            elif refs <= {child_alias}:
                child_parts.append(part)
            else:
                residual.append(part)
        if not join_found:
            raise UnsupportedQueryError(
                "the join must equate the root key with the child's "
                "virtual parent-key column"
            )

        root_ssa, root_residual = self._pick_ssa(
            self.root_name, root_alias, root_parts, params
        )
        child_ssa, child_residual = self._pick_ssa(
            child_segment, child_alias, child_parts, params
        )
        stats.strategy = "parent/child join (nested loops)"
        dli = Dli(self.database, stats.dli)

        def emit(root: Segment, child: Segment | None) -> tuple:
            assert child is not None
            return root.values + (root.key,) + child.values

        rows = join_strategy(dli, root_ssa, child_ssa, emit)
        schema = RelSchema.for_table(
            root_alias, self.view_columns(self.root_name)
        ).concat(RelSchema.for_table(child_alias, self.view_columns(child_segment)))
        return rows, schema, root_residual + child_residual + residual

    def _child_scan_block(
        self,
        query: SelectQuery,
        alias: str,
        segment: str,
        where: Expr | None,
        params: dict[str, SqlValue],
        stats: GatewayStats,
    ):
        child_ssa, residual = self._pick_ssa(
            segment, alias, conjuncts(where), params
        )
        stats.strategy = "child scan (full hierarchy sweep)"
        dli = Dli(self.database, stats.dli)
        root_ssa = SSA(self.root_name)

        def emit(root: Segment, child: Segment | None) -> tuple:
            assert child is not None
            return (root.key,) + child.values

        rows = join_strategy(dli, root_ssa, child_ssa, emit)
        schema = RelSchema.for_table(alias, self.view_columns(segment))
        return rows, schema, residual

    # ------------------------------------------------------------------
    # helpers

    def _is_parent_child_join(
        self, part: Expr, root_alias: str, child_alias: str
    ) -> bool:
        if not isinstance(part, Comparison) or part.op != "=":
            return False
        refs = [part.left, part.right]
        if not all(isinstance(ref, ColumnRef) for ref in refs):
            return False
        qualifiers = {ref.qualifier for ref in refs}  # type: ignore[union-attr]
        if qualifiers != {root_alias, child_alias}:
            return False
        return all(ref.column == self.root_key for ref in refs)  # type: ignore[union-attr]

    def _pick_ssa(
        self,
        segment: str,
        alias: str,
        parts: list[Expr],
        params: dict[str, SqlValue],
    ) -> tuple[SSA, list[Expr]]:
        """Choose one conjunct as the SSA qualification; rest is residual."""
        residual: list[Expr] = []
        chosen: SSA | None = None
        for part in parts:
            if chosen is None:
                ssa = self._conjunct_to_ssa(segment, alias, part, params)
                if ssa is not None:
                    chosen = ssa
                    continue
            residual.append(part)
        return chosen or SSA(segment), residual

    def _conjunct_to_ssa(
        self,
        segment: str,
        alias: str,
        part: Expr,
        params: dict[str, SqlValue],
    ) -> SSA | None:
        if not isinstance(part, Comparison):
            return None
        left, right = part.left, part.right
        if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
            part = part.flipped()
            left, right = part.left, part.right
        if not isinstance(left, ColumnRef) or left.qualifier != alias:
            return None
        value = self._constant_value(right, params)
        if value is _NOT_CONSTANT:
            return None
        segment_type = self.database.hierarchy.segment_type(segment)
        field_name = left.column
        if field_name == self.root_key and segment != self.root_name:
            return None  # virtual column: not a physical child field
        if field_name not in segment_type.fields:
            return None
        return SSA(segment, field_name, part.op, value)

    def _constant_value(self, expr: Expr, params: dict[str, SqlValue]):
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, HostVar):
            if expr.name not in params:
                raise MissingHostVariableError(expr.name)
            return params[expr.name]
        return _NOT_CONSTANT

    def _exists_child_ssa(
        self,
        exists: Exists,
        root_alias: str,
        params: dict[str, SqlValue],
    ) -> tuple[SSA, str, list[Expr]]:
        inner = exists.query
        if not isinstance(inner, SelectQuery) or len(inner.tables) != 1:
            raise UnsupportedQueryError(
                "EXISTS must contain a single child-table block"
            )
        child_ref = inner.tables[0]
        child_segment = child_ref.name.upper()
        if child_segment not in self._child_names:
            raise UnsupportedQueryError(
                f"EXISTS table {child_ref.name} is not a child segment"
            )
        child_alias = child_ref.effective_name
        inner_columns = {child_alias: self.view_columns(child_segment)}
        inner_where = (
            qualify(inner.where, inner_columns, allow_correlated=True)
            if inner.where is not None
            else None
        )
        correlation_found = False
        child_parts: list[Expr] = []
        for part in conjuncts(inner_where):
            if self._is_parent_child_join(part, root_alias, child_alias):
                correlation_found = True
                continue
            child_parts.append(part)
        if not correlation_found:
            raise UnsupportedQueryError(
                "EXISTS must correlate on the virtual parent-key column"
            )
        ssa, residual = self._pick_ssa(
            child_segment, child_alias, child_parts, params
        )
        return ssa, child_alias, residual

    # ------------------------------------------------------------------
    # post-processing layer

    def _post_process(
        self,
        query: SelectQuery,
        rows: list[tuple],
        schema: RelSchema,
        residual: list[Expr],
        params: dict[str, SqlValue],
        stats: GatewayStats,
    ) -> Result:
        if residual:
            stats.used_post_processing = True
            evaluator = Evaluator(params=params)
            predicate = conjoin(residual)
            kept = []
            for row in rows:
                stats.post_filter_evals += 1
                if evaluator.predicate(
                    predicate, Scope(schema, row)
                ).false_interpreted():
                    kept.append(row)
            rows = kept

        names, indices = resolve_projection(query.select_list, schema)
        projected = [tuple(row[i] for i in indices) for row in rows]

        if query.distinct:
            stats.used_post_processing = True
            stats.post_rows_sorted += len(projected)
            projected.sort(key=row_sort_key)
            deduped: list[tuple] = []
            previous = None
            for row in projected:
                key = row_sort_key(row)
                if key != previous:
                    deduped.append(row)
                    previous = key
            projected = deduped

        if query.order_by:
            # Ordering is pure post-processing-layer work (a sort).
            stats.used_post_processing = True
            stats.post_rows_sorted += len(projected)
            key_specs: list[tuple[int, bool]] = []
            for item in query.order_by:
                expr = item.expr
                if not isinstance(expr, ColumnRef) or expr.column not in names:
                    raise UnsupportedQueryError(
                        "ORDER BY must name projected output columns"
                    )
                key_specs.append((names.index(expr.column), item.ascending))
            for position, ascending in reversed(key_specs):
                projected.sort(
                    key=lambda row: sort_key(row[position]),
                    reverse=not ascending,
                )
        return Result(names, projected)


_NOT_CONSTANT = object()
