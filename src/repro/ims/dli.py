"""The DL/I call interface: GU, GN, GNP with SSAs and status codes.

This is the data-access API IMS application programs use; the paper's
§6.1 cost arguments are phrased entirely in terms of these calls, so the
simulator counts every call per segment type and every segment examined
while satisfying one.

Supported subset (sufficient for the paper's programs):

* ``GU`` — get unique: (re)position at the first segment satisfying the
  SSA list; a root SSA qualified on the key with ``=`` uses the HIDAM
  primary index.
* ``GN`` — get next: advance to the next *root* segment satisfying the
  (root-type) SSA, in key sequence.
* ``GNP`` — get next within parent: advance over the current parent's
  twins of the requested child type.  When the qualification is on the
  child's *key* field with ``=``, the twin-chain scan halts as soon as a
  key greater than the sought value appears (twins are key-sequenced);
  a qualification on a non-key field must examine every remaining twin —
  exactly the distinction behind the paper's OEM-PNO remark.

Status codes follow IMS: ``'  '`` (blanks) for success, ``'GE'`` for
not-found, ``'GB'`` for end of database.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import ImsError
from ..resilience.faults import FAULTS, SITE_DLI
from ..types.values import SqlValue
from .database import ImsDatabase, Segment

STATUS_OK = "  "
STATUS_NOT_FOUND = "GE"
STATUS_END = "GB"


@dataclass(frozen=True)
class SSA:
    """A segment search argument.

    Unqualified (``field is None``): matches any occurrence of the
    segment type.  Qualified: ``field op value`` with op in
    ``= <> < <= > >=``.
    """

    segment: str
    field: str | None = None
    op: str = "="
    value: SqlValue | None = None

    def matches(self, segment: Segment) -> bool:
        """Whether a stored segment satisfies this SSA."""
        if segment.segment_type.name != self.segment.upper():
            return False
        if self.field is None:
            return True
        actual = segment.field(self.field)
        if self.op == "=":
            return actual == self.value
        if self.op == "<>":
            return actual != self.value
        if self.op == "<":
            return actual < self.value
        if self.op == "<=":
            return actual <= self.value
        if self.op == ">":
            return actual > self.value
        if self.op == ">=":
            return actual >= self.value
        raise ImsError(f"unsupported SSA operator {self.op!r}")


@dataclass
class DliStats:
    """Work counters for a sequence of DL/I calls."""

    calls: Counter = field(default_factory=Counter)  # (call, segment) -> n
    segments_examined: Counter = field(default_factory=Counter)
    index_lookups: int = 0

    def record_call(self, call: str, segment: str) -> None:
        """Count one DL/I call of *call* against *segment*."""
        self.calls[(call, segment)] += 1

    def calls_to(self, segment: str, call: str | None = None) -> int:
        """Total calls against one segment type (optionally one verb)."""
        return sum(
            count
            for (verb, name), count in self.calls.items()
            if name == segment.upper() and (call is None or verb == call)
        )

    def total_calls(self) -> int:
        """Total DL/I calls across every verb and segment."""
        return sum(self.calls.values())

    def reset(self) -> None:
        """Zero every counter."""
        self.calls.clear()
        self.segments_examined.clear()
        self.index_lookups = 0

    def describe(self) -> str:
        """Compact one-line summary of all counters."""
        parts = [
            f"{verb} {name}={count}"
            for (verb, name), count in sorted(self.calls.items())
        ]
        parts.append(f"index_lookups={self.index_lookups}")
        parts.extend(
            f"examined {name}={count}"
            for name, count in sorted(self.segments_examined.items())
        )
        return ", ".join(parts)


class Dli:
    """One application program's view of the database (a PCB, roughly).

    Tracks position: the current root (parentage for GNP) and per-child
    twin cursors.
    """

    def __init__(self, database: ImsDatabase, stats: DliStats | None = None) -> None:
        self.database = database
        self.stats = stats or DliStats()
        self._root_position = -1
        self._parent: Segment | None = None
        self._gnp_positions: dict[str, int] = {}

    # ------------------------------------------------------------------
    # calls

    def gu(self, ssa: SSA) -> tuple[str, Segment | None]:
        """Get unique: position at the first qualifying segment."""
        if FAULTS.armed:
            FAULTS.check(SITE_DLI)
        self.stats.record_call("GU", ssa.segment)
        root_type = self.database.hierarchy.root
        if ssa.segment.upper() != root_type.name:
            raise ImsError(
                "this simulator supports GU on the root segment only"
            )
        if (
            ssa.field is not None
            and ssa.field.upper() == root_type.key_field
            and ssa.op == "="
        ):
            # HIDAM primary index lookup.
            self.stats.index_lookups += 1
            segment, position = self.database.find_root(ssa.value)
            if segment is None:
                return STATUS_NOT_FOUND, None
            self._set_parent(segment, position)
            return STATUS_OK, segment
        for position, root in enumerate(self.database.roots):
            self.stats.segments_examined[root_type.name] += 1
            if ssa.matches(root):
                self._set_parent(root, position)
                return STATUS_OK, root
        return STATUS_NOT_FOUND, None

    def gn(self, ssa: SSA) -> tuple[str, Segment | None]:
        """Get next root segment satisfying *ssa*, in key sequence."""
        if FAULTS.armed:
            FAULTS.check(SITE_DLI)
        self.stats.record_call("GN", ssa.segment)
        root_type = self.database.hierarchy.root
        if ssa.segment.upper() != root_type.name:
            raise ImsError(
                "this simulator supports GN on the root segment only"
            )
        position = self._root_position + 1
        while position < len(self.database.roots):
            root = self.database.roots[position]
            self.stats.segments_examined[root_type.name] += 1
            if ssa.matches(root):
                self._set_parent(root, position)
                return STATUS_OK, root
            position += 1
        self._root_position = len(self.database.roots)
        return STATUS_END, None

    def gnp(self, ssa: SSA) -> tuple[str, Segment | None]:
        """Get next occurrence of a dependent type within the parent.

        Direct children walk the twin chain (with the key-sequenced early
        halt); deeper descendants walk the parent's subtree in hierarchic
        order.  Cursors are kept per segment type, a simplification of
        IMS's single positional cursor that the paper's programs never
        distinguish.
        """
        if FAULTS.armed:
            FAULTS.check(SITE_DLI)
        self.stats.record_call("GNP", ssa.segment)
        if self._parent is None:
            raise ImsError("GNP issued without established parentage")
        try:
            child_type = self._parent.segment_type.child(ssa.segment)
        except ImsError:
            return self._gnp_descendant(ssa)
        twins = self._parent.twins(child_type.name)
        position = self._gnp_positions.get(child_type.name, 0)

        key_qualified = (
            ssa.field is not None
            and child_type.key_field is not None
            and ssa.field.upper() == child_type.key_field
            and ssa.op == "="
        )
        while position < len(twins):
            twin = twins[position]
            self.stats.segments_examined[child_type.name] += 1
            position += 1
            if key_qualified and twin.key is not None and twin.key > ssa.value:
                # Twins are key-sequenced: nothing further can match.
                self._gnp_positions[child_type.name] = position
                return STATUS_NOT_FOUND, None
            if ssa.matches(twin):
                self._gnp_positions[child_type.name] = position
                return STATUS_OK, twin
        self._gnp_positions[child_type.name] = position
        return STATUS_NOT_FOUND, None

    def _gnp_descendant(self, ssa: SSA) -> tuple[str, Segment | None]:
        """GNP for a non-direct-child dependent: subtree walk."""
        target = self.database.hierarchy.segment_type(ssa.segment)
        parent_type = self._parent.segment_type
        if not target.is_descendant_of(parent_type):
            raise ImsError(
                f"segment {target.name!r} is not a dependent of "
                f"{parent_type.name!r}"
            )
        occurrences = self.database.descendants(self._parent, target.name)
        position = self._gnp_positions.get(target.name, 0)
        while position < len(occurrences):
            segment = occurrences[position]
            self.stats.segments_examined[target.name] += 1
            position += 1
            if ssa.matches(segment):
                self._gnp_positions[target.name] = position
                return STATUS_OK, segment
        self._gnp_positions[target.name] = position
        return STATUS_NOT_FOUND, None

    # ------------------------------------------------------------------

    def _set_parent(self, segment: Segment, position: int) -> None:
        self._root_position = position
        self._parent = segment
        self._gnp_positions = {}
