"""Iterative DL/I programs for parent/child queries.

These are the two execution strategies of the paper's Example 10,
expressed as functions over the :class:`~repro.ims.dli.Dli` interface.

``join_strategy`` implements the straightforward nested-loop *join*
translation (the paper's lines 21–29): after each qualifying child the
program issues another GNP, which — when the qualification is on the
child's key — always fails, so half the calls against the child segment
are wasted.

``exists_strategy`` implements the *nested query* translation (lines
30–35) obtained after the join→subquery rewrite: one GNP per parent,
stopping at the first match.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .database import Segment
from .dli import SSA, STATUS_OK, Dli

OutputFn = Callable[[Segment, Segment | None], tuple]


def scan_roots(dli: Dli, root_ssa: SSA) -> Iterator[Segment]:
    """GU/GN loop over qualifying root segments."""
    status, root = dli.gu(root_ssa)
    while status == STATUS_OK:
        yield root
        status, root = dli.gn(root_ssa)


def join_strategy(
    dli: Dli,
    root_ssa: SSA,
    child_ssa: SSA,
    output: OutputFn | None = None,
) -> list[tuple]:
    """Nested-loop join: inner GNP loop runs until 'GE' (Example 10a).

    Emits one output row per (parent, matching child) pair — multiset
    join semantics.
    """
    emit = output or (lambda parent, child: parent.values)
    rows: list[tuple] = []
    for root in scan_roots(dli, root_ssa):
        status, child = dli.gnp(child_ssa)
        while status == STATUS_OK:
            rows.append(emit(root, child))
            status, child = dli.gnp(child_ssa)
    return rows


def exists_strategy(
    dli: Dli,
    root_ssa: SSA,
    child_ssa: SSA,
    output: OutputFn | None = None,
) -> list[tuple]:
    """Existential probe: one GNP per parent, stop at first match
    (Example 10b).  Emits one output row per parent with a match."""
    emit = output or (lambda parent, child: parent.values)
    rows: list[tuple] = []
    for root in scan_roots(dli, root_ssa):
        status, child = dli.gnp(child_ssa)
        if status == STATUS_OK:
            rows.append(emit(root, child))
    return rows


def root_scan_strategy(
    dli: Dli, root_ssa: SSA, output: Callable[[Segment], tuple] | None = None
) -> list[tuple]:
    """Plain qualified scan over the root segment type."""
    emit = output or (lambda parent: parent.values)
    return [emit(root) for root in scan_roots(dli, root_ssa)]
