"""IMS/DL-I simulator: hierarchical storage, DL/I calls, SQL gateway."""

from .database import ImsDatabase, Segment
from .dli import (
    SSA,
    STATUS_END,
    STATUS_NOT_FOUND,
    STATUS_OK,
    Dli,
    DliStats,
)
from .gateway import GatewayStats, ImsGateway
from .programs import exists_strategy, join_strategy, root_scan_strategy, scan_roots
from .segments import Hierarchy, SegmentType, define_hierarchy

__all__ = [
    "Dli",
    "DliStats",
    "GatewayStats",
    "Hierarchy",
    "ImsDatabase",
    "ImsGateway",
    "SSA",
    "STATUS_END",
    "STATUS_NOT_FOUND",
    "STATUS_OK",
    "Segment",
    "SegmentType",
    "define_hierarchy",
    "exists_strategy",
    "join_strategy",
    "root_scan_strategy",
    "scan_roots",
]
