"""SQL three-valued logic.

SQL predicates evaluate to one of three truth values: ``TRUE``, ``FALSE``
or ``UNKNOWN``.  The paper (Table 2) additionally defines two
*interpretations* that collapse ``UNKNOWN`` to a Boolean:

* the **false interpretation** ⌊P⌋ — ``UNKNOWN`` is treated as false;
  this is how ``WHERE`` clauses behave, and
* the **true interpretation** ⌈P⌉ — ``UNKNOWN`` is treated as true.

This module implements the truth values, Kleene connectives, and both
interpretations.
"""

from __future__ import annotations

import enum


class Tristate(enum.Enum):
    """A Kleene (strong) three-valued logic truth value."""

    FALSE = 0
    UNKNOWN = 1
    TRUE = 2

    def __bool__(self) -> bool:
        raise TypeError(
            "Tristate cannot be coerced to bool implicitly; use "
            "false_interpreted() or true_interpreted()"
        )

    def __and__(self, other: "Tristate") -> "Tristate":
        return Tristate(min(self.value, other.value))

    def __or__(self, other: "Tristate") -> "Tristate":
        return Tristate(max(self.value, other.value))

    def __invert__(self) -> "Tristate":
        return Tristate(2 - self.value)

    def false_interpreted(self) -> bool:
        """The paper's ⌊P⌋: true only when the value is ``TRUE``.

        This is the interpretation SQL uses for ``WHERE`` and ``HAVING``
        clauses: a row qualifies only when the predicate is definitely
        true.
        """
        return self is Tristate.TRUE

    def true_interpreted(self) -> bool:
        """The paper's ⌈P⌉: true unless the value is ``FALSE``."""
        return self is not Tristate.FALSE

    @staticmethod
    def of(value: bool | None) -> "Tristate":
        """Lift an optional Boolean: ``None`` maps to ``UNKNOWN``."""
        if value is None:
            return Tristate.UNKNOWN
        return Tristate.TRUE if value else Tristate.FALSE


TRUE = Tristate.TRUE
FALSE = Tristate.FALSE
UNKNOWN = Tristate.UNKNOWN


def all3(values) -> Tristate:
    """Three-valued conjunction of an iterable (empty => TRUE)."""
    result = TRUE
    for value in values:
        result = result & value
        if result is FALSE:
            break
    return result


def any3(values) -> Tristate:
    """Three-valued disjunction of an iterable (empty => FALSE)."""
    result = FALSE
    for value in values:
        result = result | value
        if result is TRUE:
            break
    return result
