"""Value domains for columns and host variables.

The paper defines a host variable's domain as the intersection of the
column domains it is compared with, and its exact Theorem 1 test
quantifies over ``Domain(R × S)``.  To make that test *decidable* the
exact checker (``repro.core.exact``) enumerates small **active domains**;
this module provides the domain abstraction it enumerates.

A :class:`Domain` describes the set of values a column may take.  It can
be finite (an explicit enumeration, e.g. derived from a ``CHECK (c IN
(...))`` constraint), an integer range (``CHECK (c BETWEEN lo AND hi)``),
or unconstrained, in which case callers sample a few representative
values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .values import NULL, SqlValue, is_null


@dataclass(frozen=True)
class Domain:
    """The set of values a column may take.

    Attributes:
        type_name: declared SQL type ('INT', 'VARCHAR', 'BOOLEAN', ...).
        values: explicit finite enumeration, or None when open.
        low/high: inclusive integer bounds, or None when unbounded.
        nullable: whether NULL belongs to the domain.
    """

    type_name: str = "INT"
    values: tuple[SqlValue, ...] | None = None
    low: int | None = None
    high: int | None = None
    nullable: bool = True

    def is_finite(self) -> bool:
        """Whether the non-null part of the domain is finitely enumerable."""
        if self.values is not None:
            return True
        return self.low is not None and self.high is not None

    def contains(self, value: SqlValue) -> bool:
        """Membership test; NULL is a member iff the domain is nullable."""
        if is_null(value):
            return self.nullable
        if self.values is not None:
            return value in self.values
        if self.low is not None and isinstance(value, (int, float)):
            if value < self.low:
                return False
        if self.high is not None and isinstance(value, (int, float)):
            if value > self.high:
                return False
        return True

    def sample(self, limit: int = 3) -> list[SqlValue]:
        """Up to *limit* representative non-null values, plus NULL if allowed.

        Used by the exact Theorem 1 checker to build small active domains.
        For open domains we fabricate distinct integers or strings; the
        checker only needs *distinguishable* values, not realistic ones.
        """
        out: list[SqlValue] = []
        if self.values is not None:
            out.extend(self.values[:limit])
        elif self.low is not None and self.high is not None:
            span = range(self.low, self.high + 1)
            for value in list(span)[:limit]:
                out.append(value)
        elif self.type_name.upper() in ("CHAR", "VARCHAR", "TEXT", "STRING"):
            out.extend(f"v{i}" for i in range(limit))
        else:
            out.extend(range(limit))
        if self.nullable:
            out.append(NULL)
        return out

    def intersect(self, other: "Domain") -> "Domain":
        """Domain intersection (used for host variables, per the paper)."""
        if self.values is not None and other.values is not None:
            merged = tuple(v for v in self.values if v in other.values)
            values: tuple[SqlValue, ...] | None = merged
        elif self.values is not None:
            values = tuple(v for v in self.values if other.contains(v))
        elif other.values is not None:
            values = tuple(v for v in other.values if self.contains(v))
        else:
            values = None
        low = _max_opt(self.low, other.low)
        high = _min_opt(self.high, other.high)
        return Domain(
            type_name=self.type_name,
            values=values,
            low=low,
            high=high,
            nullable=self.nullable and other.nullable,
        )

    @staticmethod
    def enumeration(values: Iterable[SqlValue], nullable: bool = True) -> "Domain":
        """A finite domain from an explicit list of values."""
        values = tuple(values)
        type_name = "VARCHAR" if any(isinstance(v, str) for v in values) else "INT"
        return Domain(type_name=type_name, values=values, nullable=nullable)

    @staticmethod
    def integer_range(low: int, high: int, nullable: bool = True) -> "Domain":
        """A bounded integer domain (e.g. from CHECK BETWEEN)."""
        return Domain(type_name="INT", low=low, high=high, nullable=nullable)


def _max_opt(a: int | None, b: int | None) -> int | None:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _min_opt(a: int | None, b: int | None) -> int | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


@dataclass
class DomainMap:
    """Mutable mapping from qualified column names to domains.

    Keys are ``(relation, column)`` pairs; the map also tracks host
    variable domains inferred from the comparisons they appear in.
    """

    columns: dict[tuple[str, str], Domain] = field(default_factory=dict)
    host_vars: dict[str, Domain] = field(default_factory=dict)

    def column_domain(self, relation: str, column: str) -> Domain:
        """The recorded domain, defaulting to an open one."""
        return self.columns.get((relation, column), Domain())

    def set_column(self, relation: str, column: str, domain: Domain) -> None:
        """Record a column's domain."""
        self.columns[(relation, column)] = domain

    def narrow_host_var(self, name: str, domain: Domain) -> None:
        """Intersect a host variable's domain with *domain* (paper §3.2)."""
        current = self.host_vars.get(name)
        self.host_vars[name] = domain if current is None else current.intersect(domain)

    def host_var_domain(self, name: str) -> Domain:
        """The accumulated domain of one host variable."""
        return self.host_vars.get(name, Domain())
