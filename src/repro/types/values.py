"""SQL values and null-aware comparison operators.

SQL distinguishes two notions of equality, and the paper's analysis
(Section 3.1) hinges on the difference:

* ``WHERE``-clause equality (:func:`eq_where`): any comparison involving
  ``NULL`` is ``UNKNOWN``.
* the *null comparison operator* ≐ of the paper's Table 2
  (:func:`eq_equivalent`): two ``NULL`` values compare *equal*.  This is
  the semantics of ``SELECT DISTINCT``, ``GROUP BY``, set operations and
  candidate-key uniqueness.

Values themselves are ordinary Python objects (``int``, ``float``,
``str``, ``bool``) plus the :data:`NULL` singleton.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .tristate import FALSE, TRUE, UNKNOWN, Tristate


class _Null:
    """Singleton marker for the SQL ``NULL`` value.

    ``NULL`` is falsy, equal only to itself under Python ``==`` (so rows
    can be compared structurally), and sorts before every other value via
    :func:`sort_key`.
    """

    _instance: "_Null | None" = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("repro.types.NULL")

    def __reduce__(self):
        return (_Null, ())


NULL = _Null()

SqlValue = Any  # int | float | str | bool | _Null


def is_null(value: SqlValue) -> bool:
    """Return True when *value* is the SQL NULL marker."""
    return value is NULL or isinstance(value, _Null)


def _comparable(left: SqlValue, right: SqlValue) -> bool:
    """Whether two non-null values belong to mutually comparable types."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return type(left) is type(right)


def eq_where(left: SqlValue, right: SqlValue) -> Tristate:
    """``left = right`` under WHERE-clause semantics (NULL => UNKNOWN)."""
    if is_null(left) or is_null(right):
        return UNKNOWN
    return TRUE if left == right else FALSE


def eq_equivalent(left: SqlValue, right: SqlValue) -> bool:
    """The paper's ≐ operator: NULLs compare equal.

    Equivalent SQL: ``(X IS NULL AND Y IS NULL) OR X = Y``.  Returns a
    plain Boolean because the comparison can never be unknown.
    """
    if is_null(left):
        return is_null(right)
    if is_null(right):
        return False
    return bool(left == right)


def compare_where(op: str, left: SqlValue, right: SqlValue) -> Tristate:
    """Evaluate a comparison operator under WHERE semantics.

    Supported operators: ``=``, ``<>``, ``<``, ``<=``, ``>``, ``>=``.
    Any NULL operand yields UNKNOWN; incomparable types yield UNKNOWN as
    well (mirroring how a cautious engine treats a type mismatch caused
    by host-variable substitution).
    """
    if is_null(left) or is_null(right):
        return UNKNOWN
    if op == "=":
        return TRUE if left == right else FALSE
    if op == "<>":
        return TRUE if left != right else FALSE
    if not _comparable(left, right):
        return UNKNOWN
    if op == "<":
        return Tristate.of(left < right)
    if op == "<=":
        return Tristate.of(left <= right)
    if op == ">":
        return Tristate.of(left > right)
    if op == ">=":
        return Tristate.of(left >= right)
    raise ValueError(f"unknown comparison operator: {op!r}")


_TYPE_RANK = {bool: 0, int: 1, float: 1, str: 2}


def sort_key(value: SqlValue) -> tuple:
    """Total-order key over SQL values; NULL sorts first.

    The key is usable across mixed-type columns: values are ranked first
    by a type class (NULL < bool < numeric < str), then by value within
    the class.  DISTINCT-via-sort and set operations rely on this order
    grouping ≐-equivalent values adjacently.
    """
    if is_null(value):
        return (-1, 0)
    rank = _TYPE_RANK.get(type(value))
    if rank is None:
        rank = 3
        value = repr(value)
    return (rank, value)


def row_sort_key(row: Sequence[SqlValue]) -> tuple:
    """Sort key for an entire row (lexicographic over :func:`sort_key`)."""
    return tuple(sort_key(value) for value in row)


def rows_equivalent(left: Sequence[SqlValue], right: Sequence[SqlValue]) -> bool:
    """Row equality under the ≐ operator (the paper's equation (1))."""
    if len(left) != len(right):
        return False
    return all(eq_equivalent(a, b) for a, b in zip(left, right))


def distinct_rows(rows: Iterable[Sequence[SqlValue]]) -> list[tuple]:
    """Duplicate-eliminate rows under ≐ semantics, preserving first-seen order."""
    seen: set[tuple] = set()
    result: list[tuple] = []
    for row in rows:
        key = row_sort_key(row)
        if key not in seen:
            seen.add(key)
            result.append(tuple(row))
    return result


def format_value(value: SqlValue) -> str:
    """Render a value as a SQL literal."""
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)
