"""SQL value model: three-valued logic, NULL, comparisons, domains."""

from .domains import Domain, DomainMap
from .tristate import FALSE, TRUE, UNKNOWN, Tristate, all3, any3
from .values import (
    NULL,
    SqlValue,
    compare_where,
    distinct_rows,
    eq_equivalent,
    eq_where,
    format_value,
    is_null,
    row_sort_key,
    rows_equivalent,
    sort_key,
)

__all__ = [
    "Domain",
    "DomainMap",
    "FALSE",
    "NULL",
    "SqlValue",
    "TRUE",
    "Tristate",
    "UNKNOWN",
    "all3",
    "any3",
    "compare_where",
    "distinct_rows",
    "eq_equivalent",
    "eq_where",
    "format_value",
    "is_null",
    "row_sort_key",
    "rows_equivalent",
    "sort_key",
]
