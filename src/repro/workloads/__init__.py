"""Workloads: the paper's supplier schema, example queries, generators."""

from .generator import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_query,
)
from .queries import PAPER_QUERIES, PaperQuery, paper_query
from .supplier import (
    SupplierData,
    SupplierScale,
    build_catalog,
    build_database,
    build_ims_database,
    build_object_store,
    generate,
    supplier_ddl,
)

__all__ = [
    "GeneratorConfig",
    "PAPER_QUERIES",
    "PaperQuery",
    "SupplierData",
    "SupplierScale",
    "build_catalog",
    "build_database",
    "build_ims_database",
    "build_object_store",
    "generate",
    "paper_query",
    "random_catalog",
    "random_database",
    "random_query",
    "supplier_ddl",
]
