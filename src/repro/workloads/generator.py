"""Random schemas, instances, and queries for property-based testing.

The soundness property the test suite hammers: *whenever Algorithm 1
answers YES, executing the query with and without DISTINCT yields the
same multiset on every instance*.  These generators produce small random
worlds for that check; they are deliberately adversarial (NULL-able
columns, shared names across tables, OR-predicates, host variables).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..catalog.builder import CatalogBuilder
from ..catalog.schema import Catalog
from ..engine.database import Database
from ..errors import ConstraintViolation
from ..sql.ast import Quantifier, SelectItem, SelectQuery, TableRef
from ..sql.expressions import (
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    conjoin,
    disjoin,
)
from ..types.values import NULL


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for the random world."""

    max_tables: int = 2
    max_columns: int = 4
    max_rows: int = 8
    domain: tuple = (0, 1, 2)
    null_rate: float = 0.15
    max_predicates: int = 3
    or_rate: float = 0.25


def random_catalog(rng: random.Random, config: GeneratorConfig | None = None) -> Catalog:
    """A random 1–2 table catalog; every table gets a primary key.

    Adversarial features appear with some probability: UNIQUE candidate
    keys, CHECK constraints (both equality checks on NOT NULL columns —
    exploitable by ``use_check_constraints`` — and range checks), and a
    foreign key from the second table to the first one's key (food for
    the join-elimination rule).
    """
    config = config or GeneratorConfig()
    builder = CatalogBuilder()
    table_count = rng.randint(1, config.max_tables)
    first_key_width = 1
    for t in range(table_count):
        name = f"T{t}"
        column_count = rng.randint(2, config.max_columns)
        key_width = 1 if rng.random() < 0.7 else min(2, column_count)
        if t == 0:
            first_key_width = key_width
        check_column = (
            key_width if rng.random() < 0.25 and column_count > key_width
            else None
        )
        table = builder.table(name)
        for c in range(column_count):
            table.column(f"C{c}", "INT", nullable=(c != check_column))
        table.primary_key(*[f"C{i}" for i in range(key_width)])
        if rng.random() < 0.3 and column_count > key_width:
            table.unique(f"C{column_count - 1}")
        if check_column is not None:
            table.check(f"C{check_column} = {rng.choice(config.domain)}")
        elif rng.random() < 0.2:
            table.check(f"C0 >= {min(config.domain)}")
        if (
            t == 1
            and first_key_width == 1
            and column_count > key_width
            and rng.random() < 0.4
        ):
            table.foreign_key(f"C{column_count - 1}", "T0", "C0")
        builder = table.finish()
    return builder.build()


def random_database(
    rng: random.Random,
    catalog: Catalog,
    config: GeneratorConfig | None = None,
) -> Database:
    """A random valid instance; constraint violations are retried away."""
    config = config or GeneratorConfig()
    database = Database(catalog)
    for schema in catalog:  # creation order: referenced tables first
        data = database.table(schema.name)
        target = rng.randint(0, config.max_rows)
        attempts = 0
        while len(data) < target and attempts < target * 10:
            attempts += 1
            row = []
            for column in schema.columns:
                if column.nullable and rng.random() < config.null_rate:
                    row.append(NULL)
                else:
                    row.append(rng.choice(config.domain))
            try:
                database.insert(schema.name, tuple(row))
            except ConstraintViolation:
                continue
    return database


def random_query(
    rng: random.Random,
    catalog: Catalog,
    config: GeneratorConfig | None = None,
) -> SelectQuery:
    """A random SELECT DISTINCT block over the catalog's tables."""
    config = config or GeneratorConfig()
    names = catalog.table_names()
    table_count = rng.randint(1, len(names))
    chosen = rng.sample(names, table_count)
    tables = tuple(TableRef(name) for name in chosen)

    all_columns = [
        ColumnRef(name, column)
        for name in chosen
        for column in catalog.table(name).column_names
    ]
    projection_size = rng.randint(1, len(all_columns))
    projection = rng.sample(all_columns, projection_size)
    select_list = tuple(SelectItem(ref) for ref in projection)

    predicates: list[Expr] = []
    for _ in range(rng.randint(0, config.max_predicates)):
        atom = _random_atom(rng, all_columns, config)
        if rng.random() < config.or_rate:
            atom = disjoin([atom, _random_atom(rng, all_columns, config)])
        predicates.append(atom)

    where = conjoin(predicates) if predicates else None
    return SelectQuery(
        quantifier=Quantifier.DISTINCT,
        select_list=select_list,
        tables=tables,
        where=where,
    )


def _random_atom(
    rng: random.Random, columns: list[ColumnRef], config: GeneratorConfig
) -> Expr:
    left = rng.choice(columns)
    kind = rng.random()
    if kind < 0.5:
        return Comparison("=", left, Literal(rng.choice(config.domain)))
    if kind < 0.85:
        return Comparison("=", left, rng.choice(columns))
    op = rng.choice(("<", "<=", ">", ">=", "<>"))
    return Comparison(op, left, Literal(rng.choice(config.domain)))
