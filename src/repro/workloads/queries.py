"""The paper's worked examples as a machine-readable query catalog.

Each entry records the example number, the SQL text, required host
variables, and the paper's stated outcome, so tests and benchmarks can
iterate over them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..types.values import SqlValue


@dataclass(frozen=True)
class PaperQuery:
    """One worked example from the paper."""

    example: str
    description: str
    sql: str
    params: dict[str, SqlValue] = field(default_factory=dict)
    distinct_unnecessary: bool | None = None  # Theorem 1 verdict, if stated
    rewrite_rule: str | None = None  # rule expected to fire, if any


PAPER_QUERIES: list[PaperQuery] = [
    PaperQuery(
        example="1",
        description="red parts and their supplier numbers: DISTINCT is "
        "unnecessary (SNO, PNO is the key of PARTS)",
        sql=(
            "SELECT DISTINCT S.SNO, P.PNO, P.PNAME "
            "FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
        ),
        distinct_unnecessary=True,
        rewrite_rule="distinct-elimination",
    ),
    PaperQuery(
        example="2",
        description="supplier NAMES of red parts: duplicates are possible "
        "(two suppliers may share a name)",
        sql=(
            "SELECT DISTINCT S.SNAME, P.PNO, P.PNAME "
            "FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.COLOR = 'RED'"
        ),
        distinct_unnecessary=False,
    ),
    PaperQuery(
        example="3",
        description="parts of one supplier (host variable): PNO keys the "
        "derived table",
        sql=(
            "SELECT ALL S.SNO, SNAME, P.PNO, PNAME "
            "FROM SUPPLIER S, PARTS P "
            "WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO"
        ),
        params={"SUPPLIER-NO": 1},
        distinct_unnecessary=True,
    ),
    PaperQuery(
        example="4",
        description="Example 3 with DISTINCT: removable via Theorem 1",
        sql=(
            "SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME "
            "FROM SUPPLIER S, PARTS P "
            "WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO"
        ),
        params={"SUPPLIER-NO": 1},
        distinct_unnecessary=True,
        rewrite_rule="distinct-elimination",
    ),
    PaperQuery(
        example="6",
        description="parts of suppliers with a given (non-unique) name: "
        "DISTINCT unnecessary — keys are still projected",
        sql=(
            "SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR "
            "FROM SUPPLIER S, PARTS P "
            "WHERE S.SNAME = :SUPPLIER-NAME AND S.SNO = P.SNO"
        ),
        params={"SUPPLIER-NAME": "Supplier-1"},
        distinct_unnecessary=True,
        rewrite_rule="distinct-elimination",
    ),
    PaperQuery(
        example="7",
        description="correlated EXISTS probing one part: flattens to a "
        "join by Theorem 2",
        sql=(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
            "WHERE S.SNAME = :SUPPLIER-NAME AND EXISTS "
            "(SELECT * FROM PARTS P "
            "WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)"
        ),
        params={"SUPPLIER-NAME": "Supplier-1", "PART-NO": 3},
        rewrite_rule="subquery-to-join",
    ),
    PaperQuery(
        example="8",
        description="suppliers of at least one red part: flattens to a "
        "DISTINCT join by Corollary 1",
        sql=(
            "SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S "
            "WHERE EXISTS (SELECT * FROM PARTS P "
            "WHERE P.SNO = S.SNO AND P.COLOR = 'RED')"
        ),
        rewrite_rule="subquery-to-join",
    ),
    PaperQuery(
        example="9",
        description="Toronto suppliers with Ottawa/Hull agents: "
        "INTERSECT converts to EXISTS by Theorem 3",
        sql=(
            "SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto' "
            "INTERSECT "
            "SELECT ALL A.SNO FROM AGENTS A "
            "WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'"
        ),
        rewrite_rule="intersect-to-exists",
    ),
    PaperQuery(
        example="10",
        description="IMS select-project-parent/child join: all suppliers "
        "of one part",
        sql=(
            "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO = P.SNO AND P.PNO = :PARTNO"
        ),
        params={"PARTNO": 3},
        rewrite_rule="join-to-subquery",
    ),
    PaperQuery(
        example="11",
        description="OODB join with a selective parent range",
        sql=(
            "SELECT ALL S.* FROM SUPPLIER S, PARTS P "
            "WHERE S.SNO BETWEEN 10 AND 20 AND S.SNO = P.SNO "
            "AND P.PNO = :PARTNO"
        ),
        params={"PARTNO": 3},
        rewrite_rule="join-to-subquery",
    ),
]


def paper_query(example: str) -> PaperQuery:
    """Look up one worked example by its number."""
    for query in PAPER_QUERIES:
        if query.example == example:
            return query
    raise KeyError(f"no paper query for example {example!r}")
