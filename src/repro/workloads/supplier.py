"""The paper's supplier database (Figure 1) and scalable data generators.

Schema::

    SUPPLIER (SNO, SNAME, SCITY, BUDGET, STATUS)        key SNO
    PARTS    (SNO, PNO, PNAME, OEM-PNO, COLOR)          key (SNO, PNO),
                                                        candidate OEM-PNO
    AGENTS   (SNO, ANO, ANAME, ACITY)                   key ANO

The generator is seeded and scale-parameterized; ``name_collision_rate``
controls how often two suppliers share a name, which is what makes
Example 2's DISTINCT genuinely necessary on generated data.

The same logical data can be materialized three ways: as a relational
:class:`~repro.engine.database.Database`, as an IMS hierarchy (Figure 2),
or as an object store with child→parent OIDs (Figure 3) — so every
backend in the benchmark suite runs the *same* instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..catalog.schema import Catalog
from ..engine.database import Database
from ..ims.database import ImsDatabase
from ..ims.segments import define_hierarchy
from ..oodb.model import OoClass
from ..oodb.store import ObjectStore
from ..types.values import NULL

CITIES = ("Chicago", "New York", "Toronto")
COLORS = ("RED", "BLUE", "GREEN", "YELLOW")
AGENT_CITIES = ("Ottawa", "Hull", "Toronto", "Chicago")


def supplier_ddl(max_sno: int = 499) -> str:
    """The paper's CREATE TABLE statements (SNO range parameterized so
    benchmarks can scale past 499 suppliers)."""
    return f"""
CREATE TABLE SUPPLIER (
  SNO INT,
  SNAME VARCHAR(30),
  SCITY VARCHAR(20),
  BUDGET INT,
  STATUS VARCHAR(10),
  PRIMARY KEY (SNO),
  CHECK (SNO BETWEEN 1 AND {max_sno}),
  CHECK (SCITY IN ('Chicago', 'New York', 'Toronto')),
  CHECK (BUDGET <> 0 OR STATUS = 'Inactive'));

CREATE TABLE PARTS (
  SNO INT,
  PNO INT,
  PNAME VARCHAR(30),
  OEM-PNO INT,
  COLOR VARCHAR(10),
  PRIMARY KEY (SNO, PNO),
  UNIQUE (OEM-PNO),
  CHECK (SNO BETWEEN 1 AND {max_sno}),
  FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO));

CREATE TABLE AGENTS (
  SNO INT,
  ANO INT,
  ANAME VARCHAR(30),
  ACITY VARCHAR(20),
  PRIMARY KEY (ANO),
  CHECK (SNO BETWEEN 1 AND {max_sno}),
  FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO));
"""


def build_catalog(max_sno: int = 499) -> Catalog:
    """The paper's schema as a catalog."""
    return Catalog.from_ddl(supplier_ddl(max_sno))


@dataclass(frozen=True)
class SupplierScale:
    """Size and shape parameters for generated instances."""

    suppliers: int = 50
    parts_per_supplier: int = 10
    agents_per_supplier: int = 2
    name_collision_rate: float = 0.3
    seed: int = 94  # ICDE 1994

    def __post_init__(self) -> None:
        if self.suppliers < 1:
            raise ValueError("need at least one supplier")
        if not 0.0 <= self.name_collision_rate <= 1.0:
            raise ValueError("name_collision_rate must be in [0, 1]")


@dataclass(frozen=True)
class SupplierRow:
    """One generated SUPPLIER tuple."""

    sno: int
    sname: str
    scity: str
    budget: int
    status: str


@dataclass(frozen=True)
class PartRow:
    """One generated PARTS tuple (oem_pno None maps to SQL NULL)."""

    sno: int
    pno: int
    pname: str
    oem_pno: int | None
    color: str


@dataclass(frozen=True)
class AgentRow:
    """One generated AGENTS tuple."""

    sno: int
    ano: int
    aname: str
    acity: str


@dataclass
class SupplierData:
    """One generated instance, backend-independent."""

    scale: SupplierScale
    suppliers: list[SupplierRow]
    parts: list[PartRow]
    agents: list[AgentRow]

    @property
    def max_sno(self) -> int:
        """Upper bound for the SNO CHECK constraint at this scale."""
        return max(499, self.scale.suppliers)


def generate(scale: SupplierScale | None = None) -> SupplierData:
    """Generate a deterministic instance for *scale*."""
    scale = scale or SupplierScale()
    rng = random.Random(scale.seed)

    name_pool_size = max(
        1, int(scale.suppliers * (1.0 - scale.name_collision_rate)) or 1
    )
    suppliers: list[SupplierRow] = []
    for sno in range(1, scale.suppliers + 1):
        status = rng.choice(("Active", "Active", "Inactive"))
        budget = 0 if status == "Inactive" and rng.random() < 0.5 else (
            rng.randrange(1, 1000)
        )
        suppliers.append(
            SupplierRow(
                sno=sno,
                sname=f"Supplier-{rng.randrange(name_pool_size)}",
                scity=rng.choice(CITIES),
                budget=budget,
                status=status,
            )
        )

    parts: list[PartRow] = []
    oem_counter = 1
    for supplier in suppliers:
        for pno in range(1, scale.parts_per_supplier + 1):
            if rng.random() < 0.1:
                oem: int | None = None  # UNIQUE key allows one NULL... per
                # instance; keep at most one NULL overall below.
            else:
                oem = oem_counter
                oem_counter += 1
            parts.append(
                PartRow(
                    sno=supplier.sno,
                    pno=pno,
                    pname=f"part-{pno}",
                    oem_pno=oem,
                    color=rng.choice(COLORS),
                )
            )
    # SQL2 treats NULL as a single special key value: keep at most one
    # NULL OEM-PNO so the UNIQUE constraint holds.
    seen_null = False
    fixed_parts: list[PartRow] = []
    for part in parts:
        if part.oem_pno is None:
            if seen_null:
                part = PartRow(
                    part.sno, part.pno, part.pname, oem_counter, part.color
                )
                oem_counter += 1
            else:
                seen_null = True
        fixed_parts.append(part)

    agents: list[AgentRow] = []
    ano = 1
    for supplier in suppliers:
        for _ in range(scale.agents_per_supplier):
            agents.append(
                AgentRow(
                    sno=supplier.sno,
                    ano=ano,
                    aname=f"agent-{ano}",
                    acity=rng.choice(AGENT_CITIES),
                )
            )
            ano += 1

    return SupplierData(scale, suppliers, fixed_parts, agents)


# ----------------------------------------------------------------------
# backends


def build_database(data: SupplierData | None = None) -> Database:
    """Materialize an instance as a relational database."""
    data = data or generate()
    database = Database(build_catalog(data.max_sno))
    database.load(
        "SUPPLIER",
        [
            (s.sno, s.sname, s.scity, s.budget, s.status)
            for s in data.suppliers
        ],
    )
    database.load(
        "PARTS",
        [
            (p.sno, p.pno, p.pname, p.oem_pno if p.oem_pno is not None else NULL, p.color)
            for p in data.parts
        ],
    )
    database.load(
        "AGENTS",
        [(a.sno, a.ano, a.aname, a.acity) for a in data.agents],
    )
    return database


def build_ims_database(data: SupplierData | None = None) -> ImsDatabase:
    """Materialize an instance as the Figure 2 IMS hierarchy."""
    data = data or generate()
    hierarchy = define_hierarchy(
        "SUPPLIER",
        ["SNO", "SNAME", "SCITY", "BUDGET", "STATUS"],
        "SNO",
        [
            ("PARTS", ["PNO", "PNAME", "OEM-PNO", "COLOR"], "PNO"),
            ("AGENTS", ["ANO", "ANAME", "ACITY"], "ANO"),
        ],
    )
    ims = ImsDatabase(hierarchy)
    roots = {}
    for s in data.suppliers:
        roots[s.sno] = ims.insert_root(
            (s.sno, s.sname, s.scity, s.budget, s.status)
        )
    for p in data.parts:
        ims.insert_child(
            roots[p.sno],
            "PARTS",
            (p.pno, p.pname, p.oem_pno if p.oem_pno is not None else NULL, p.color),
        )
    for a in data.agents:
        ims.insert_child(roots[a.sno], "AGENTS", (a.ano, a.aname, a.acity))
    return ims


def build_object_store(data: SupplierData | None = None) -> ObjectStore:
    """Materialize an instance as the Figure 3 object model.

    Indexes: SUPPLIER by SNO, PARTS by PNO, AGENTS by ACITY — the access
    paths Example 11 assumes.
    """
    data = data or generate()
    store = ObjectStore()
    store.define_class(
        OoClass(
            "SUPPLIER",
            ["SNO", "SNAME", "SCITY", "BUDGET", "STATUS"],
            key_attribute="SNO",
        )
    )
    store.define_class(
        OoClass(
            "PARTS",
            ["PNO", "PNAME", "OEM-PNO", "COLOR"],
            key_attribute="PNO",
            references={"SUPPLIER": "SUPPLIER"},
        )
    )
    store.define_class(
        OoClass(
            "AGENTS",
            ["ANO", "ANAME", "ACITY"],
            key_attribute="ANO",
            references={"SUPPLIER": "SUPPLIER"},
        )
    )
    supplier_oids = {}
    for s in data.suppliers:
        obj = store.create(
            "SUPPLIER",
            {
                "SNO": s.sno,
                "SNAME": s.sname,
                "SCITY": s.scity,
                "BUDGET": s.budget,
                "STATUS": s.status,
            },
        )
        supplier_oids[s.sno] = obj.oid
    for p in data.parts:
        store.create(
            "PARTS",
            {
                "PNO": p.pno,
                "PNAME": p.pname,
                "OEM-PNO": p.oem_pno if p.oem_pno is not None else NULL,
                "COLOR": p.color,
            },
            refs={"SUPPLIER": supplier_oids[p.sno]},
        )
    for a in data.agents:
        store.create(
            "AGENTS",
            {"ANO": a.ano, "ANAME": a.aname, "ACITY": a.acity},
            refs={"SUPPLIER": supplier_oids[a.sno]},
        )
    store.create_index("SUPPLIER", "SNO")
    store.create_index("PARTS", "PNO")
    store.create_index("AGENTS", "ACITY")
    return store
