"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SqlError(ReproError):
    """Base class for errors raised while processing SQL text."""


class LexerError(SqlError):
    """Raised when the lexer encounters an unrecognizable character.

    Attributes:
        position: zero-based character offset of the offending input.
        line: one-based line number.
        column: one-based column number.
    """

    def __init__(self, message: str, position: int, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when a token stream does not form a valid statement."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CatalogError(ReproError):
    """Raised for inconsistent schema definitions or unknown objects."""


class UnknownTableError(CatalogError):
    """Raised when a query references a table absent from the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(CatalogError):
    """Raised when a query references a column absent from its table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column: {table!r}.{column!r}")
        self.table = table
        self.column = column


class AmbiguousColumnError(CatalogError):
    """Raised when an unqualified column name matches several tables."""

    def __init__(self, column: str, candidates: list[str]) -> None:
        names = ", ".join(sorted(candidates))
        super().__init__(f"ambiguous column {column!r}: matches {names}")
        self.column = column
        self.candidates = list(candidates)


class ConstraintViolation(ReproError):
    """Raised when an insert/update violates a declared constraint."""

    def __init__(self, constraint: str, detail: str) -> None:
        super().__init__(f"constraint {constraint!r} violated: {detail}")
        self.constraint = constraint
        self.detail = detail


class UniquenessViolationError(ConstraintViolation):
    """A write would duplicate a declared candidate key.

    Keys are what make the paper's Theorem 1/2/3 rewrites sound, so
    violating one is a first-class typed outcome rather than a generic
    constraint failure: HTTP maps it to 409 Conflict, the CLI to exit
    code 13, and the retrying client treats it as terminal.

    Attributes:
        table: the table whose key was violated.
        key: the human-readable key description (e.g. ``PRIMARY KEY
            (SNO)``).
    """

    def __init__(self, table: str, key: str, detail: str = "") -> None:
        extra = f": {detail}" if detail else ""
        super().__init__(table, f"duplicate value for {key}{extra}")
        self.table = table
        self.key = key


class TransactionError(ReproError):
    """Base class for transaction-lifecycle errors (already closed,
    commit of an aborted transaction, BEGIN inside a transaction)."""


class WriteConflictError(TransactionError):
    """First-committer-wins conflict: this transaction tried to commit
    a change to a row version that a concurrent transaction already
    committed a change to.  The losing transaction is rolled back; the
    caller may retry it against the new state.  HTTP maps it to 409
    Conflict, the CLI to exit code 13 — and the client does *not*
    auto-retry, because the statement may no longer make sense.

    Attributes:
        table: the table carrying the contended row version.
    """

    def __init__(self, table: str, detail: str = "") -> None:
        extra = f": {detail}" if detail else ""
        super().__init__(
            f"write-write conflict on {table!r}"
            f" (a concurrent transaction committed first){extra}"
        )
        self.table = table


class ExecutionError(ReproError):
    """Raised when query execution fails (type errors, missing host vars)."""


class MissingHostVariableError(ExecutionError):
    """Raised when a query references a host variable with no binding."""

    def __init__(self, name: str) -> None:
        super().__init__(f"no binding supplied for host variable :{name}")
        self.name = name


class ResourceError(ExecutionError):
    """Base class for per-query resource-budget violations.

    Guards raise the most specific subclass; callers that only care that
    *some* budget was exhausted can catch this base class.
    """


class QueryTimeout(ResourceError):
    """Raised when a query exceeds its wall-clock budget."""

    def __init__(self, limit: float, elapsed: float) -> None:
        super().__init__(
            f"query exceeded its {limit:.3f}s timeout after {elapsed:.3f}s"
        )
        self.limit = limit
        self.elapsed = elapsed


class RowBudgetExceeded(ResourceError):
    """Raised when a query processes more rows than its budget allows."""

    def __init__(self, budget: int, processed: int) -> None:
        super().__init__(
            f"query processed {processed} rows, exceeding its budget of "
            f"{budget}"
        )
        self.budget = budget
        self.processed = processed


class QueryCancelled(ResourceError):
    """Raised at the next cooperative checkpoint after a cancellation."""

    def __init__(self, reason: str = "") -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(f"query cancelled{detail}")
        self.reason = reason


class DeadlineExpiredError(ResourceError):
    """Raised when a query's end-to-end deadline has already passed
    *before* execution begins — queue wait (or network transit) consumed
    the whole budget, so running the query would only produce an answer
    nobody is still waiting for.

    Distinct from :class:`QueryTimeout`: a timeout fires *during*
    execution; an expired deadline is rejected up front without touching
    a single operator.  HTTP maps it to 504, the CLI to exit code 12.

    Attributes:
        remaining_ms: milliseconds left on the deadline when it was
            checked (zero or negative).
        waited: seconds the query spent queued before the check, when
            the rejection happened after admission (None otherwise).
    """

    def __init__(self, remaining_ms: float, waited: float | None = None) -> None:
        where = (
            f" after waiting {waited * 1000:.0f}ms in the admission queue"
            if waited is not None
            else ""
        )
        super().__init__(
            f"deadline expired {max(0.0, -remaining_ms):.0f}ms before "
            f"execution began{where}"
        )
        self.remaining_ms = remaining_ms
        self.waited = waited


class RewriteError(ReproError):
    """Raised when a rewrite rule is applied to an unsupported query."""


class RewriteMismatchError(ReproError):
    """Raised when safe mode catches a rewrite changing a result multiset.

    Attributes:
        rules: names of the rewrite rules that produced the bad plan.
        sql: the original (unrewritten) query text.
    """

    def __init__(self, rules: list[str], sql: str) -> None:
        names = ", ".join(rules) if rules else "(unknown rule)"
        super().__init__(
            f"rewrite mismatch detected by safe mode: {names} changed the "
            f"result of {sql!r}; rule(s) quarantined"
        )
        self.rules = list(rules)
        self.sql = sql


class InjectedFaultError(ReproError):
    """The typed error raised by the fault injector's default faults."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at site {site!r}")
        self.site = site


class UnsupportedQueryError(ReproError):
    """Raised when a query falls outside the subset a component handles."""


class ImsError(ReproError):
    """Base class for errors raised by the IMS/DL-I simulator."""


class TransientImsError(ImsError):
    """A retryable DL/I failure (lock timeout, buffer shortage, ...).

    Models the transient status codes a real IMS region returns under
    load; the gateway retries these with bounded exponential backoff.
    """

    def __init__(self, status: str = "GG", detail: str = "") -> None:
        extra = f" ({detail})" if detail else ""
        super().__init__(f"transient DL/I failure, status {status!r}{extra}")
        self.status = status
        self.detail = detail


class OodbError(ReproError):
    """Base class for errors raised by the object-store simulator."""


class ServiceError(ReproError):
    """Base class for errors raised by the embedded query service."""


class ServiceOverloadedError(ServiceError):
    """Raised when the admission queue is full and the caller asked not
    to wait (``submit(..., wait=False)``) — the backpressure signal."""

    def __init__(self, depth: int) -> None:
        super().__init__(
            f"service admission queue is full ({depth} queries pending)"
        )
        self.depth = depth


class LoadShedError(ServiceOverloadedError):
    """Raised when the adaptive admission controller sheds a query
    because predicted queue delay is approaching typical deadlines.

    Subclasses :class:`ServiceOverloadedError`, so it keeps the 429 /
    ``Retry-After`` wire mapping and exit code 9 — shedding is the
    *adaptive* form of the same backpressure contract, fired before the
    queue is physically full and aimed at batch traffic first.

    Attributes:
        priority: the shed query's priority class.
        predicted_wait: the controller's queue-delay estimate (seconds).
    """

    def __init__(self, priority: str, predicted_wait: float, depth: int) -> None:
        ServiceError.__init__(
            self,
            f"load shed: {priority} query rejected, predicted queue wait "
            f"{predicted_wait * 1000:.0f}ms approaches typical deadlines",
        )
        self.priority = priority
        self.predicted_wait = predicted_wait
        self.depth = depth


class ServiceShutdownError(ServiceError):
    """Raised when work is submitted to a service that has shut down."""

    def __init__(self) -> None:
        super().__init__("the query service has been shut down")


class TicketWaitTimeout(ServiceError, TimeoutError):
    """Raised when waiting on a :class:`~repro.service.QueryTicket`
    outlives the caller's patience.

    Distinct from :class:`QueryTimeout`: the *query* may still be
    running (or queued) — only the caller's wait expired.  Subclasses
    :class:`TimeoutError` too, so pre-existing ``except TimeoutError``
    handlers keep working.
    """

    def __init__(self, timeout: float | None, sql: str) -> None:
        super().__init__(
            f"query did not complete within {timeout}s: {sql!r}"
        )
        self.timeout = timeout
        self.sql = sql


class NetworkError(ReproError):
    """Base class for errors crossing the HTTP query protocol."""


class ProtocolError(NetworkError):
    """A malformed request or response (bad JSON, unknown fields)."""


class TransientNetworkError(NetworkError):
    """A retryable network-layer failure (connection reset, injected
    accept/write fault, 429/503 from a saturated or draining server).

    The HTTP client retries these under its
    :class:`~repro.resilience.retry.RetryPolicy`; after the final
    attempt the error propagates with the last response's detail.

    Attributes:
        status: HTTP status code when the failure was a response
            (0 for socket-level failures).
        retry_after: the server's Retry-After hint in seconds, if any.
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class CircuitOpenError(TransientNetworkError):
    """Raised by the client-side circuit breaker when the target server
    has failed enough consecutive attempts that further requests are
    pointless until a probe succeeds.

    Subclasses :class:`TransientNetworkError` so the retry policy treats
    an open circuit like any other transient condition — but the failure
    is produced *without touching the network*, which is the point: a
    sick server stops being hammered the moment the breaker opens.

    Attributes:
        retry_in: seconds until the breaker will allow a half-open probe.
    """

    def __init__(self, retry_in: float) -> None:
        super().__init__(
            f"circuit breaker open: next probe allowed in {retry_in:.3f}s",
            status=0,
            retry_after=retry_in,
        )
        self.retry_in = retry_in


class RemoteQueryError(NetworkError):
    """A typed error relayed from the server's error envelope.

    Attributes:
        error_type: the server-side exception class name (from the
            errors taxonomy, e.g. ``"QueryTimeout"``).
        status: the HTTP status the server mapped the error to.
    """

    def __init__(self, error_type: str, message: str, status: int) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.status = status


# ---------------------------------------------------------------------------
# CLI exit codes

#: The CLI's exit-code taxonomy, matched subclass-first — the single
#: source of truth shared by :mod:`repro.cli`, its ``--help`` epilogs,
#: and ``docs/cli.md``.  Codes 0–2 are structural (success, a ``check``
#: NO verdict, and the generic :class:`ReproError` fallback).
CLI_EXIT_CODES: list[tuple[type[ReproError], int]] = [
    (QueryTimeout, 4),
    (RowBudgetExceeded, 5),
    (QueryCancelled, 6),
    (DeadlineExpiredError, 12),
    (ResourceError, 3),
    (TransientImsError, 7),
    (RewriteMismatchError, 8),
    (ServiceOverloadedError, 9),
    (TicketWaitTimeout, 10),
    (NetworkError, 11),
    (UniquenessViolationError, 13),
    (WriteConflictError, 13),
]

#: Error-type name → exit code, for errors relayed over the wire: a
#: remote row-budget violation arrives as a RemoteQueryError carrying
#: the original type name and still exits 5.
_NAME_EXIT_CODES: dict[str, int] = {
    cls.__name__: code for cls, code in CLI_EXIT_CODES
}


def exit_code_for(error: ReproError) -> int:
    """Map a typed error to its CLI exit code (2 for the base class)."""
    if isinstance(error, RemoteQueryError):
        return _NAME_EXIT_CODES.get(error.error_type, 2)
    for cls, code in CLI_EXIT_CODES:
        if isinstance(error, cls):
            return code
    return 2


def exit_code_summary() -> str:
    """One-line-per-code text for CLI ``--help`` epilogs, kept in sync
    with :data:`CLI_EXIT_CODES` by construction."""
    lines = ["exit codes:"]
    ordered = sorted(CLI_EXIT_CODES, key=lambda pair: pair[1])
    for cls, code in ordered:
        lines.append(f"  {code:>2}  {cls.__name__}")
    lines.append("   2  any other ReproError")
    return "\n".join(lines)
