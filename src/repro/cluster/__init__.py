"""Multi-process cluster: shard workers, key-aware routing, scatter-gather.

The GIL caps a single worker-thread :class:`~repro.service.QueryService`
at roughly one core of Python work, so scaling past it means
shared-nothing *processes*.  This package provides that layer:

* :class:`~repro.cluster.ring.HashRing` — a deterministic consistent-hash
  ring (virtual nodes, stable across process restarts) mapping keys to
  shards.
* :class:`~repro.cluster.coordinator.ClusterCoordinator` — spawns N
  worker processes, each a full :class:`~repro.net.server.QueryServer`
  over a replica of the database, monitors them, and respawns any that
  die.
* :class:`~repro.cluster.frontend.ClusterFrontend` — an ``asyncio`` HTTP
  front end speaking the existing :mod:`repro.net.protocol`, so the
  stock client and CLI work unchanged.  It routes uniqueness-bound
  point queries (Theorem 1: a query bound on a candidate key identifies
  at most one row, hence exactly one shard) to a single worker via the
  ring, scatter-gathers partitionable scans across every shard with an
  order-preserving merge, and falls back to hash-routing whole queries
  otherwise — always correct, because every worker holds a replica.
* :func:`~repro.cluster.frontend.serve_cluster` — one context manager
  building the coordinator + front end pair.

Scatter-gather rides the ``scan_ranges`` execution option: each worker
executes the *same* SQL over a contiguous row-range slice of the
driving table (see :mod:`repro.engine.sliced`), and the front end
merges the shard results into output byte-identical to single-node
execution.
"""

from .coordinator import ClusterCoordinator, WorkerHandle
from .frontend import ClusterFrontend, serve_cluster
from .ring import HashRing
from .scatter import MergeSpec, classify_scatter, merge_shard_rows
from .worker import WorkerConfig, WorkerSource

__all__ = [
    "ClusterCoordinator",
    "ClusterFrontend",
    "HashRing",
    "MergeSpec",
    "WorkerConfig",
    "WorkerHandle",
    "WorkerSource",
    "classify_scatter",
    "merge_shard_rows",
    "serve_cluster",
]
