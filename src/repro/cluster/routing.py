"""Key-aware routing: the Theorem 1 single-shard fast path.

Theorem 1 of the paper: a query whose WHERE clause binds every column
of a candidate key to a constant identifies *at most one row*.  Under
hash partitioning that row lives on exactly one shard — so the front
end can skip scatter-gather entirely and forward the request to the
one worker the key hashes to, with per-request fan-out of 1.

Detection is purely structural (and therefore cacheable per SQL text):
a single-table SELECT whose WHERE is a conjunction containing
``column = literal-or-host-var`` terms that fully cover one of the
table's declared candidate keys.  Extra conjuncts only filter further,
so they never invalidate the ≤1-row bound.  The *values* bound to the
key (literals, or host variables resolved against the request params)
form the routing key hashed onto the ring.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..sql.ast import SelectQuery, SetOperation
from ..sql.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    HostVar,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
)

__all__ = [
    "PointRoute",
    "detect_point_route",
    "subquery_reference_counts",
    "table_reference_counts",
]


@dataclass(frozen=True)
class PointRoute:
    """A compiled single-shard route for one SQL text.

    ``bindings`` pairs each key column with how its value arrives:
    ``("literal", value)`` baked into the SQL, or ``("param", name)``
    resolved from the request's host-variable params at route time.
    """

    table: str
    key_columns: tuple[str, ...]
    bindings: tuple[tuple[str, object], ...]

    def routing_key(self, params: dict | None) -> tuple | None:
        """The concrete ``(table, *values)`` key, or None when a host
        variable the key needs is absent from *params*."""
        values = []
        for kind, payload in self.bindings:
            if kind == "literal":
                values.append(payload)
            else:
                if params is None:
                    return None
                name = str(payload)
                if name in params:
                    values.append(params[name])
                elif name.upper() in params:
                    values.append(params[name.upper()])
                elif name.lower() in params:
                    values.append(params[name.lower()])
                else:
                    return None
        return (self.table, *values)


def detect_point_route(query: object, catalog: object) -> PointRoute | None:
    """Compile the Theorem 1 fast path for *query*, if it applies.

    *query* is a parsed :class:`SelectQuery` / :class:`SetOperation`;
    *catalog* supplies candidate keys.  Returns None whenever the
    uniqueness argument does not hold structurally.
    """
    if not isinstance(query, SelectQuery):
        return None
    if len(query.tables) != 1:
        return None
    ref = query.tables[0]
    table_name = ref.name.upper()
    if table_name not in catalog:
        return None
    schema = catalog.table(table_name)
    if not schema.candidate_keys:
        return None
    aliases = {table_name}
    if ref.alias:
        aliases.add(ref.alias.upper())

    bindings: dict[str, tuple[str, object]] = {}
    for conjunct in _conjuncts(query.where):
        bound = _equality_binding(conjunct, aliases, schema)
        if bound is not None:
            column, binding = bound
            bindings.setdefault(column, binding)

    for key in schema.candidate_keys:
        if all(column in bindings for column in key.columns):
            return PointRoute(
                table=table_name,
                key_columns=tuple(key.columns),
                bindings=tuple(bindings[c] for c in key.columns),
            )
    return None


def _conjuncts(where: Expr | None) -> list[Expr]:
    if where is None:
        return []
    if isinstance(where, And):
        flat: list[Expr] = []
        for operand in where.operands:
            flat.extend(_conjuncts(operand))
        return flat
    return [where]


def _equality_binding(
    expr: Expr, aliases: set[str], schema: object
) -> tuple[str, tuple[str, object]] | None:
    """``col = constant`` (either orientation) → (column, binding)."""
    if not isinstance(expr, Comparison) or expr.op != "=":
        return None
    for column_side, value_side in (
        (expr.left, expr.right),
        (expr.right, expr.left),
    ):
        if not isinstance(column_side, ColumnRef):
            continue
        qualifier = column_side.qualifier
        if qualifier is not None and qualifier.upper() not in aliases:
            continue
        column = column_side.column.upper()
        if column not in schema.column_names:
            continue
        if isinstance(value_side, Literal):
            return column, ("literal", value_side.value)
        if isinstance(value_side, HostVar):
            return column, ("param", value_side.name)
    return None


def table_reference_counts(query: object) -> Counter:
    """How many times each table name is referenced in the whole AST,
    including every subquery — the scatter classifier requires the
    driving table to appear exactly once."""
    counts: Counter = Counter()
    _count_query(query, counts, Counter(), in_subquery=False)
    return counts


def subquery_reference_counts(query: object) -> Counter:
    """Table references appearing *inside subqueries only*.

    A scatter driving table must not be referenced from any subquery:
    subquery predicates evaluate against the shard's sliced database,
    so a sliced table inside one would silently change its meaning."""
    inner: Counter = Counter()
    _count_query(query, Counter(), inner, in_subquery=False)
    return inner


def _count_query(
    query: object, counts: Counter, inner: Counter, in_subquery: bool
) -> None:
    if isinstance(query, SetOperation):
        _count_query(query.left, counts, inner, in_subquery)
        _count_query(query.right, counts, inner, in_subquery)
        return
    if not isinstance(query, SelectQuery):
        return
    for ref in query.tables:
        counts[ref.name.upper()] += 1
        if in_subquery:
            inner[ref.name.upper()] += 1
    for item in query.select_list:
        expr = getattr(item, "expr", None)
        if expr is not None:
            _count_expr(expr, counts, inner, in_subquery)
    _count_expr(query.where, counts, inner, in_subquery)
    for item in query.order_by:
        _count_expr(item.expr, counts, inner, in_subquery)


def _count_expr(
    expr: Expr | None, counts: Counter, inner: Counter, in_subquery: bool
) -> None:
    if expr is None:
        return
    if isinstance(expr, (And, Or)):
        for operand in expr.operands:
            _count_expr(operand, counts, inner, in_subquery)
    elif isinstance(expr, Not):
        _count_expr(expr.operand, counts, inner, in_subquery)
    elif isinstance(expr, Comparison):
        _count_expr(expr.left, counts, inner, in_subquery)
        _count_expr(expr.right, counts, inner, in_subquery)
    elif isinstance(expr, IsNull):
        _count_expr(expr.operand, counts, inner, in_subquery)
    elif isinstance(expr, Between):
        _count_expr(expr.operand, counts, inner, in_subquery)
        _count_expr(expr.low, counts, inner, in_subquery)
        _count_expr(expr.high, counts, inner, in_subquery)
    elif isinstance(expr, InList):
        _count_expr(expr.operand, counts, inner, in_subquery)
        for item in expr.items:
            _count_expr(item, counts, inner, in_subquery)
    elif isinstance(expr, Exists):
        _count_query(expr.query, counts, inner, in_subquery=True)
    elif isinstance(expr, InSubquery):
        _count_expr(expr.operand, counts, inner, in_subquery)
        _count_query(expr.query, counts, inner, in_subquery=True)
