"""Spawn, watch, respawn and drain the shard worker processes.

The coordinator owns cluster membership: it spawns N workers (spawn
context — see :mod:`repro.cluster.worker`), performs the ready
handshake that learns each worker's dynamically-bound port, and runs a
monitor thread that respawns any worker that dies, bumping that shard's
generation.  Routing state (the consistent-hash ring) keys on the
*shard id*, which is stable across respawns; only the port moves, so
the front end reads ports through :meth:`worker_url` per request.

The coordinator also rebuilds the same replica in-process
(:attr:`database`): the front end needs a local catalog and row counts
to classify queries and compute scatter ranges, and using the identical
source recipe guarantees it plans exactly what the workers execute.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from .ring import HashRing
from .worker import WorkerConfig, WorkerSource, worker_main

__all__ = ["ClusterCoordinator", "WorkerHandle"]

#: Seconds to wait for a spawned worker's ready handshake.
READY_TIMEOUT = 60.0


@dataclass
class WorkerHandle:
    """One shard's live process: identity stable, incarnation mutable."""

    shard_id: int
    process: Any
    pid: int
    port: int
    generation: int

    def alive(self) -> bool:
        return self.process.is_alive()


class ClusterCoordinator:
    """Lifecycle manager for the shard worker fleet.

    Args:
        source: replica recipe shipped to every worker (and rebuilt
            locally for routing).
        shards: number of worker processes.
        config: per-worker knobs (threads, queue depth, seeded faults).
        ring_vnodes / ring_seed: consistent-hash ring shape; the seed
            makes routing stable across coordinator restarts.
        respawn: automatically restart workers that die.
        monitor_interval: seconds between liveness sweeps.
        on_respawn: callback ``(handle)`` after a worker is respawned —
            the front end uses it to replay open sessions onto the
            fresh process.
    """

    def __init__(
        self,
        source: WorkerSource,
        shards: int,
        *,
        config: WorkerConfig | None = None,
        ring_vnodes: int = 64,
        ring_seed: int = 0,
        respawn: bool = True,
        monitor_interval: float = 0.2,
        on_respawn: Callable[[WorkerHandle], None] | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.source = source
        self.shards = int(shards)
        self.config = config if config is not None else WorkerConfig()
        self.ring = HashRing(range(self.shards), vnodes=ring_vnodes, seed=ring_seed)
        self.auto_respawn = respawn
        self.monitor_interval = monitor_interval
        self.on_respawn = on_respawn
        #: Local replica for planning/routing (same recipe as workers).
        self.database = source.build()
        self._ctx = multiprocessing.get_context("spawn")
        self._queue = self._ctx.Queue()
        self._handles: dict[int, WorkerHandle] = {}
        self._respawns: dict[int, int] = {i: 0 for i in range(self.shards)}
        # Guards handles/respawns and serializes spawn handshakes (the
        # ready queue is shared, so only one spawn drains it at a time).
        self._lock = threading.RLock()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ClusterCoordinator":
        """Spawn every worker, wait for all ready handshakes."""
        if self._started:
            return self
        with self._lock:
            try:
                for shard_id in range(self.shards):
                    self._spawn(shard_id, generation=0)
            except Exception:
                self._terminate_all()
                raise
        self._started = True
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def drain(self, timeout: float = 10.0) -> None:
        """Gracefully stop the fleet: SIGTERM, join, kill stragglers."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=timeout)
        self._terminate_all(timeout=timeout)

    close = drain

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.drain()
        return False

    def _terminate_all(self, timeout: float = 10.0) -> None:
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            if handle.alive():
                handle.process.terminate()  # SIGTERM → graceful drain
        deadline = time.monotonic() + timeout
        for handle in handles:
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)

    # -- spawning -------------------------------------------------------

    def _spawn(self, shard_id: int, generation: int) -> WorkerHandle:
        """Spawn one worker and complete its ready handshake.

        Caller must hold the lock: the ready queue is shared across
        shards, so handshakes are serialized.
        """
        process = self._ctx.Process(
            target=worker_main,
            args=(shard_id, self.source, self.config, self._queue),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        deadline = time.monotonic() + READY_TIMEOUT
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                process.kill()
                raise TimeoutError(
                    f"shard {shard_id} did not report ready in "
                    f"{READY_TIMEOUT:.0f}s"
                )
            try:
                message = self._queue.get(timeout=remaining)
            except Exception:
                continue
            status, reported_shard, pid, detail = message
            if reported_shard != shard_id:
                # A stale message from a worker killed mid-handshake;
                # nothing else spawns concurrently (lock held), so it
                # is safe to discard.
                continue
            if status == "error":
                process.join(timeout=5.0)
                raise RuntimeError(
                    f"shard {shard_id} failed to start: {detail}"
                )
            handle = WorkerHandle(
                shard_id=shard_id,
                process=process,
                pid=pid,
                port=int(detail),
                generation=generation,
            )
            self._handles[shard_id] = handle
            return handle

    # -- monitoring -----------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.monitor_interval):
            if not self.auto_respawn:
                continue
            for shard_id in range(self.shards):
                if self._stopping.is_set():
                    return
                with self._lock:
                    handle = self._handles.get(shard_id)
                    if handle is None or handle.alive():
                        continue
                    try:
                        fresh = self._spawn(
                            shard_id, generation=handle.generation + 1
                        )
                        self._respawns[shard_id] += 1
                    except Exception:
                        continue  # retried on the next sweep
                if self.on_respawn is not None:
                    try:
                        self.on_respawn(fresh)
                    except Exception:
                        pass

    # -- membership operations ------------------------------------------

    def restart_shard(self, shard_id: int, timeout: float = 10.0) -> WorkerHandle:
        """Gracefully drain and restart one worker (rolling restart).

        The rest of the cluster keeps serving; routing is unaffected
        because shard identity survives the restart.
        """
        with self._lock:
            handle = self._require(shard_id)
            if handle.alive():
                handle.process.terminate()
                handle.process.join(timeout=timeout)
                if handle.alive():
                    handle.process.kill()
                    handle.process.join(timeout=5.0)
            fresh = self._spawn(shard_id, generation=handle.generation + 1)
        if self.on_respawn is not None:
            try:
                self.on_respawn(fresh)
            except Exception:
                pass
        return fresh

    def kill_shard(self, shard_id: int) -> int:
        """SIGKILL one worker mid-flight (chaos harness helper).

        Returns the killed pid.  With auto-respawn enabled the monitor
        brings a replacement up within a sweep or two.
        """
        with self._lock:
            handle = self._require(shard_id)
            pid = handle.pid
            handle.process.kill()
        return pid

    def _require(self, shard_id: int) -> WorkerHandle:
        handle = self._handles.get(shard_id)
        if handle is None:
            raise KeyError(f"unknown shard {shard_id}")
        return handle

    # -- addressing & introspection -------------------------------------

    def worker_url(self, shard_id: int) -> str:
        with self._lock:
            handle = self._require(shard_id)
            return f"http://{self.config.host}:{handle.port}"

    def handle(self, shard_id: int) -> WorkerHandle:
        with self._lock:
            return self._require(shard_id)

    def respawn_count(self, shard_id: int | None = None) -> int:
        with self._lock:
            if shard_id is not None:
                return self._respawns.get(shard_id, 0)
            return sum(self._respawns.values())

    def snapshot(self) -> list[dict[str, Any]]:
        """Per-shard liveness for ``/healthz`` aggregation."""
        with self._lock:
            return [
                {
                    "shard": shard_id,
                    "pid": handle.pid,
                    "port": handle.port,
                    "alive": handle.alive(),
                    "generation": handle.generation,
                    "respawns": self._respawns[shard_id],
                }
                for shard_id, handle in sorted(self._handles.items())
            ]
