"""The asyncio front end: one listening socket over N shard workers.

The front end is the cluster's only client-facing surface.  It speaks
the exact :mod:`repro.net.protocol` HTTP/JSON contract a single
:class:`~repro.net.server.QueryServer` speaks — the stock
:class:`~repro.net.client.HttpBackend` connects to it unchanged — and
multiplexes every client connection over one asyncio event loop, so a
thousand idle keep-alive connections cost one thread, not a thousand.

Per query it picks one of three routes, compiled once per SQL text and
cached:

* **point** — the Theorem 1 fast path
  (:func:`~repro.cluster.routing.detect_point_route`): a candidate key
  fully bound by constants identifies ≤ 1 row, which hash-partitioning
  places on exactly one shard.  Fan-out 1, counted in
  ``cluster_single_shard_routes_total``.
* **scatter** — the classifier
  (:func:`~repro.cluster.scatter.classify_scatter`) proved per-shard
  outputs recombine byte-identically: the same SQL fans out to every
  shard with a per-shard ``scan_ranges`` slice of the driving table,
  and :func:`~repro.cluster.scatter.merge_shard_rows` reassembles one
  response.  Any shard failure fails the whole request with that
  shard's typed envelope — a partial row set is never returned.
* **forward** — everything else goes whole to one replica shard chosen
  by ring-hashing the (session, SQL) pair, which spreads unclassified
  load while keeping a given query text's plan/analysis caches warm on
  one worker.

Resilience inheritance: the client's ``X-Deadline-Ms`` is re-anchored
here and re-emitted per shard hop with the budget *actually remaining*
at fan-out time, and ``X-Priority`` rides through untouched, so each
worker's admission controller sheds with the same priority lattice and
deadline awareness it has standalone.  Shard connection failures map to
retryable 503 envelopes (the worker is respawning; a client retry lands
on the fresh process).
"""

from __future__ import annotations

import asyncio
import json
import threading
import uuid
from typing import Any

from ..observe.metrics import MetricsRegistry
from ..resilience.admission import PRIORITY_HEADER
from ..resilience.deadline import DEADLINE_HEADER, Deadline
from ..sql.parser import parse_query
from .coordinator import ClusterCoordinator, WorkerHandle
from .ring import canonical_key
from .routing import PointRoute, detect_point_route
from .scatter import MergeSpec, classify_scatter, merge_shard_rows, partition_ranges
from .worker import WorkerConfig, WorkerSource

__all__ = ["ClusterFrontend", "serve_cluster"]

#: Upper bound on compiled route templates kept per front end; SQL
#: texts are typically few (applications template their queries).
_ROUTE_CACHE_SIZE = 512

#: Per-shard-hop connect timeout (seconds).  Workers are local
#: processes; anything slower than this is a dead or wedged worker.
_CONNECT_TIMEOUT = 5.0


class _Route:
    """Compiled routing decision for one SQL text."""

    __slots__ = ("kind", "point", "merge")

    def __init__(
        self,
        kind: str,
        point: PointRoute | None = None,
        merge: MergeSpec | None = None,
    ) -> None:
        self.kind = kind  # "point" | "scatter" | "forward"
        self.point = point
        self.merge = merge


class _ShardReply:
    """One worker's HTTP response, undecoded."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: dict[str, str], body: bytes) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


class ClusterFrontend:
    """Asyncio HTTP front end over a :class:`ClusterCoordinator`.

    The event loop runs on a dedicated thread; :meth:`start` returns
    once the listening port is bound, :meth:`drain` stops accepting,
    closes the loop and (when the front end owns it) drains the
    coordinator.  Usable as a context manager.

    Args:
        coordinator: the worker fleet (started here if not already).
        host: listening interface.
        port: listening port (0 picks a free one).
        owns_coordinator: drain the coordinator on :meth:`drain`.
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        owns_coordinator: bool = False,
    ) -> None:
        self.coordinator = coordinator
        self.host = host
        self.port = port
        self.owns_coordinator = owns_coordinator
        self.metrics = MetricsRegistry()
        self._routes: dict[str, _Route] = {}
        self._routes_lock = threading.Lock()
        # name → options wire form, replayed onto respawned workers so
        # a session survives its shard's death.
        self._sessions: dict[str, Any] = {}
        self._sessions_lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._stopping = False
        coordinator.on_respawn = self._replay_sessions

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ClusterFrontend":
        if self._thread is not None:
            return self
        self.coordinator.start()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-cluster-frontend", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise TimeoutError("cluster front end did not start in 30s")
        return self

    def drain(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._begin_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if self.owns_coordinator:
            self.coordinator.drain()

    close = drain

    def __enter__(self) -> "ClusterFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.drain()
        return False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._serve_client, self.host, self.port)
            )
            self._server = server
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            loop.run_forever()
            # _begin_shutdown stopped the loop; finish closing.
            server.close()
            loop.run_until_complete(server.wait_closed())
        except BaseException as error:  # pragma: no cover - startup race
            self._startup_error = error
            self._ready.set()
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()

    def _begin_shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
        loop = self._loop
        if loop is not None:
            loop.stop()

    # -- connection handling --------------------------------------------

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                close = headers.get("connection", "").lower() == "close"
                try:
                    await self._dispatch(method, path, headers, body, writer)
                except _Respond as respond:
                    await self._send_json(
                        writer,
                        respond.status,
                        respond.payload,
                        respond.extra_headers,
                    )
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                except Exception as error:
                    await self._send_json(
                        writer, 500, _internal_envelope(error)
                    )
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None
        except asyncio.LimitOverrunError:
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _dispatch(
        self,
        method: str,
        path: str,
        headers: dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.metrics.inc("cluster_requests_total")
        if method == "POST" and path == "/v1/query":
            await self._handle_query(headers, body, writer)
        elif method == "POST" and path == "/v1/session":
            await self._handle_session_open(headers, body)
        elif method == "DELETE" and path.startswith("/v1/session/"):
            await self._handle_session_close(path, headers, body)
        elif method == "GET" and path == "/healthz":
            await self._handle_healthz()
        elif method == "GET" and path == "/metrics":
            await self._send_metrics(writer)
        else:
            raise _Respond(
                404,
                {
                    "error": {
                        "type": "NotFound",
                        "message": f"no such endpoint: {path}",
                        "status": 404,
                        "retryable": False,
                    }
                },
            )

    # -- query routing --------------------------------------------------

    def _route_for(self, sql: str) -> _Route:
        with self._routes_lock:
            route = self._routes.get(sql)
        if route is not None:
            return route
        route = self._compile_route(sql)
        with self._routes_lock:
            self._routes[sql] = route
            while len(self._routes) > _ROUTE_CACHE_SIZE:
                self._routes.pop(next(iter(self._routes)))
        return route

    def _compile_route(self, sql: str) -> _Route:
        database = self.coordinator.database
        try:
            query = parse_query(sql)
        except Exception:
            # Forward: the worker produces the real, typed parse error.
            return _Route("forward")
        point = detect_point_route(query, database.catalog)
        if point is not None:
            return _Route("point", point=point)
        if self.coordinator.shards > 1:
            merge = classify_scatter(sql, database)
            if merge is not None:
                return _Route("scatter", merge=merge)
        return _Route("forward")

    async def _handle_query(
        self,
        headers: dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = None
        if not isinstance(payload, dict) or not isinstance(
            payload.get("sql"), str
        ):
            # Malformed request: any shard produces the same 400.
            reply = await self._forward_to_shard(0, "POST", "/v1/query", headers, body)
            await self._relay(writer, reply, headers)
            return

        sql = payload["sql"]
        params = payload.get("params")
        session = payload.get("session")
        stream = bool(payload.get("stream", False))
        route = self._route_for(sql)

        if route.kind == "point":
            key = route.point.routing_key(
                params if isinstance(params, dict) else None
            )
            if key is not None:
                shard = self.coordinator.ring.lookup(key)
                self.metrics.inc("cluster_single_shard_routes_total")
                self.metrics.inc("cluster_shard_requests_total", shard=shard)
                reply = await self._forward_to_shard(
                    shard, "POST", "/v1/query", headers, body
                )
                await self._relay(writer, reply, headers)
                return
            # A host variable the key needs is missing: fall through to
            # the forward path (the worker raises the typed error).

        if route.kind == "scatter":
            await self._scatter_query(
                route.merge, payload, headers, writer, stream
            )
            return

        shard = self.coordinator.ring.lookup(
            canonical_key((session or "default", sql))
        )
        self.metrics.inc("cluster_forward_routes_total")
        self.metrics.inc("cluster_shard_requests_total", shard=shard)
        reply = await self._forward_to_shard(shard, "POST", "/v1/query", headers, body)
        await self._relay(writer, reply, headers)

    async def _scatter_query(
        self,
        merge: MergeSpec,
        payload: dict,
        headers: dict[str, str],
        writer: asyncio.StreamWriter,
        stream: bool,
    ) -> None:
        shards = self.coordinator.shards
        total = len(self.coordinator.database.table(merge.table).rows)
        ranges = partition_ranges(total, shards)
        self.metrics.inc("cluster_scatter_total")
        self.metrics.inc("cluster_scatter_fanout_total", shards)

        requests = []
        for shard, (start, stop) in enumerate(ranges):
            shard_payload = dict(payload)
            # The front end reassembles the rows; workers always answer
            # with a plain JSON body, never a stream.
            shard_payload.pop("stream", None)
            options = dict(shard_payload.get("options") or {})
            options["scan_ranges"] = {merge.table: [start, stop]}
            shard_payload["options"] = options
            self.metrics.inc("cluster_shard_requests_total", shard=shard)
            requests.append(
                self._forward_to_shard(
                    shard,
                    "POST",
                    "/v1/query",
                    headers,
                    json.dumps(shard_payload, default=str).encode("utf-8"),
                )
            )
        replies = await asyncio.gather(*requests, return_exceptions=True)

        # All-or-nothing: the first failing shard's envelope (or a
        # retryable 503 for a dead socket) answers the whole request —
        # a partial row set must never look like a result.
        for shard, reply in enumerate(replies):
            if isinstance(reply, BaseException):
                raise _Respond(*_unreachable_envelope(shard, reply))
            if reply.status != 200:
                await self._relay(writer, reply, headers)
                return

        decoded = [reply.json() for reply in replies]
        shard_rows = [body.get("rows", []) for body in decoded]
        merged = merge_shard_rows(merge, [
            [tuple(row) for row in rows] for rows in shard_rows
        ])

        first = decoded[0]
        response: dict[str, Any] = {
            "request_id": headers.get("x-request-id")
            or first.get("request_id")
            or uuid.uuid4().hex[:12],
            "columns": first.get("columns", []),
            "rows": [list(row) for row in merged],
            "row_count": len(merged),
            "final_sql": first.get("final_sql", ""),
            "rewritten": first.get("rewritten", False),
            "rules": first.get("rules", []),
            "mismatch": any(body.get("mismatch") for body in decoded),
            "stats": _sum_stats(decoded),
        }
        if first.get("analysis") is not None:
            analysis = dict(first["analysis"])
            analysis["scatter"] = {
                "table": merge.table,
                "mode": merge.mode,
                "shards": shards,
                "ranges": [[start, stop] for start, stop in ranges],
                "rows_per_shard": [len(rows) for rows in shard_rows],
            }
            response["analysis"] = analysis
        if stream:
            await self._stream_response(writer, response)
        else:
            await self._send_json(writer, 200, response)

    async def _stream_response(
        self, writer: asyncio.StreamWriter, response: dict
    ) -> None:
        """Re-emit a merged result as NDJSON, mirroring the worker's
        stream shape (header, row chunks, sealing footer)."""
        rows = response.pop("rows")
        count = response.pop("row_count")
        lines = [json.dumps(response, separators=(",", ":"), default=str)]
        chunk_rows = self.coordinator.config.stream_chunk_rows
        for start in range(0, len(rows), chunk_rows):
            chunk = rows[start : start + chunk_rows]
            lines.append(
                json.dumps(
                    {"rows": chunk}, separators=(",", ":"), default=str
                )
            )
        lines.append(
            json.dumps(
                {"end": True, "row_count": count}, separators=(",", ":")
            )
        )
        body = ("\n".join(lines) + "\n").encode("utf-8")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- sessions -------------------------------------------------------

    async def _handle_session_open(
        self, headers: dict[str, str], body: bytes
    ) -> None:
        """Broadcast the open to every shard so any route can use the
        session; remember the spec to replay onto respawned workers."""
        replies = await asyncio.gather(
            *[
                self._forward_to_shard(s, "POST", "/v1/session", headers, body)
                for s in range(self.coordinator.shards)
            ],
            return_exceptions=True,
        )
        first_ok: _ShardReply | None = None
        for shard, reply in enumerate(replies):
            if isinstance(reply, BaseException):
                raise _Respond(*_unreachable_envelope(shard, reply))
            if reply.status != 200:
                raise _Respond(reply.status, reply.json())
            if first_ok is None:
                first_ok = reply
        decoded = first_ok.json()
        with self._sessions_lock:
            self._sessions[decoded["session"]] = {
                "name": decoded["session"],
                "options": decoded.get("options"),
            }
        raise _Respond(200, decoded)

    async def _handle_session_close(
        self, path: str, headers: dict[str, str], body: bytes
    ) -> None:
        name = path[len("/v1/session/") :]
        with self._sessions_lock:
            self._sessions.pop(name, None)
        replies = await asyncio.gather(
            *[
                self._forward_to_shard(s, "DELETE", path, headers, body)
                for s in range(self.coordinator.shards)
            ],
            return_exceptions=True,
        )
        for shard, reply in enumerate(replies):
            if isinstance(reply, BaseException):
                raise _Respond(*_unreachable_envelope(shard, reply))
            if reply.status != 200:
                raise _Respond(reply.status, reply.json())
        raise _Respond(200, replies[0].json())

    def _replay_sessions(self, handle: WorkerHandle) -> None:
        """Coordinator respawn callback (monitor thread, not the event
        loop): re-open every tracked session on the fresh worker with
        blocking I/O so the worker is fully usable before routing
        resumes sending it traffic."""
        self.metrics.inc("cluster_worker_respawns_total")
        with self._sessions_lock:
            specs = list(self._sessions.values())
        if not specs:
            return
        import urllib.request

        url = self.coordinator.worker_url(handle.shard_id)
        for spec in specs:
            payload = {"name": spec["name"]}
            if spec.get("options"):
                payload["options"] = spec["options"]
            request = urllib.request.Request(
                f"{url}/v1/session",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=10.0):
                    pass
            except Exception:
                pass  # the session's first query will surface the gap

    # -- health & metrics -----------------------------------------------

    async def _handle_healthz(self) -> None:
        shards = self.coordinator.snapshot()
        probes = await asyncio.gather(
            *[
                self._probe_health(entry["shard"])
                for entry in shards
            ],
            return_exceptions=True,
        )
        for entry, probe in zip(shards, probes):
            if isinstance(probe, BaseException) or probe is None:
                entry["health"] = None
                entry["reachable"] = False
            else:
                entry["health"] = probe
                entry["reachable"] = True
            self.metrics.set(
                "cluster_shard_up",
                1.0 if entry["reachable"] and entry["alive"] else 0.0,
                shard=entry["shard"],
            )
        all_up = all(e["alive"] and e["reachable"] for e in shards)
        raise _Respond(
            200,
            {
                "status": "ok" if all_up else "degraded",
                "shards": shards,
                "shard_count": self.coordinator.shards,
                "respawns": self.coordinator.respawn_count(),
                "ring": {
                    "vnodes": self.coordinator.ring.vnodes,
                    "seed": self.coordinator.ring.seed,
                },
            },
        )

    async def _probe_health(self, shard: int) -> dict | None:
        try:
            reply = await self._forward_to_shard(
                shard, "GET", "/healthz", {}, b""
            )
        except Exception:
            return None
        if reply.status != 200:
            return None
        return reply.json()

    async def _send_metrics(self, writer: asyncio.StreamWriter) -> None:
        for entry in self.coordinator.snapshot():
            self.metrics.set(
                "cluster_shard_up",
                1.0 if entry["alive"] else 0.0,
                shard=entry["shard"],
            )
        self.metrics.set(
            "cluster_worker_respawns_total",
            float(self.coordinator.respawn_count()),
        )
        body = self.metrics.to_prometheus().encode("utf-8")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- shard transport ------------------------------------------------

    def _hop_headers(self, client_headers: dict[str, str]) -> dict[str, str]:
        """Headers for one worker hop: deadline re-anchored to the
        budget remaining *now*, priority and request id passed through."""
        hop: dict[str, str] = {}
        raw_deadline = client_headers.get(DEADLINE_HEADER.lower())
        if raw_deadline is not None:
            try:
                deadline = Deadline.from_wire_ms(float(raw_deadline))
                hop[DEADLINE_HEADER] = f"{max(0.0, deadline.to_wire_ms()):.3f}"
            except ValueError:
                hop[DEADLINE_HEADER] = raw_deadline
        priority = client_headers.get(PRIORITY_HEADER.lower())
        if priority is not None:
            hop[PRIORITY_HEADER] = priority
        request_id = client_headers.get("x-request-id")
        if request_id is not None:
            hop["X-Request-Id"] = request_id
        return hop

    async def _forward_to_shard(
        self,
        shard: int,
        method: str,
        path: str,
        client_headers: dict[str, str],
        body: bytes,
    ) -> _ShardReply:
        """One HTTP exchange with one worker (fresh connection,
        ``Connection: close`` — ports move across respawns, so cached
        connections would pin dead incarnations)."""
        try:
            url = self.coordinator.worker_url(shard)
        except KeyError:
            raise ConnectionError(f"unknown shard {shard}") from None
        _scheme, _, rest = url.partition("://")
        host, _, port = rest.partition(":")
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, int(port)), timeout=_CONNECT_TIMEOUT
        )
        try:
            headers = self._hop_headers(client_headers)
            lines = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}"]
            for name, value in headers.items():
                lines.append(f"{name}: {value}")
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
            lines.append("Connection: close")
            head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
            writer.write(head + body)
            await writer.drain()

            raw_head = await reader.readuntil(b"\r\n\r\n")
            head_lines = raw_head.decode("latin-1").split("\r\n")
            status = int(head_lines[0].split(" ", 2)[1])
            reply_headers: dict[str, str] = {}
            for line in head_lines[1:]:
                if ":" in line:
                    name, _, value = line.partition(":")
                    reply_headers[name.strip().lower()] = value.strip()
            length = reply_headers.get("content-length")
            if length is not None:
                reply_body = await reader.readexactly(int(length))
            else:
                reply_body = await reader.read()
            return _ShardReply(status, reply_headers, reply_body)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- response plumbing ----------------------------------------------

    async def _relay(
        self,
        writer: asyncio.StreamWriter,
        reply: _ShardReply,
        client_headers: dict[str, str],
    ) -> None:
        """Pass one worker response through verbatim (body and the
        headers that matter: content type, retry-after, request id)."""
        passthrough = {}
        for name in ("content-type", "retry-after", "x-request-id"):
            if name in reply.headers:
                passthrough[name] = reply.headers[name]
        head_lines = [f"HTTP/1.1 {reply.status} {_reason(reply.status)}"]
        for name, value in passthrough.items():
            head_lines.append(f"{name}: {value}")
        head_lines.append(f"Content-Length: {len(reply.body)}")
        head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + reply.body)
        await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, separators=(",", ":"), default=str).encode(
            "utf-8"
        )
        lines = [
            f"HTTP/1.1 {status} {_reason(status)}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


class _Respond(Exception):
    """Control-flow: a handler's final (status, payload) response."""

    def __init__(
        self,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(status)
        self.status = status
        self.payload = payload
        self.extra_headers = extra_headers


def _unreachable_envelope(
    shard: int, error: BaseException
) -> tuple[int, dict, dict[str, str]]:
    """A dead/unreachable worker → a retryable 503 with Retry-After:
    the monitor respawns it, so a client retry lands on the fresh
    process.  Never a partial result."""
    payload = {
        "error": {
            "type": "TransientNetworkError",
            "message": (
                f"shard {shard} unreachable"
                f" ({type(error).__name__}: {error})"
            ),
            "status": 503,
            "retryable": True,
            "retry_after": 0.5,
        }
    }
    return 503, payload, {"Retry-After": "0.5"}


def _internal_envelope(error: BaseException) -> dict:
    return {
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "status": 500,
            "retryable": False,
        }
    }


def _sum_stats(decoded: list[dict]) -> dict:
    """Merge per-shard stats: numeric values sum, others keep first."""
    merged: dict[str, Any] = {}
    for body in decoded:
        for name, value in (body.get("stats") or {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                merged.setdefault(name, value)
            else:
                merged[name] = merged.get(name, 0) + value
    return merged


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


def serve_cluster(
    source: WorkerSource,
    shards: int,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    config: WorkerConfig | None = None,
    ring_seed: int = 0,
    respawn: bool = True,
) -> ClusterFrontend:
    """Build and start a whole cluster: N workers plus the front end.

    Returns the started :class:`ClusterFrontend` (which owns the
    coordinator — draining the front end drains the fleet).  Use as a
    context manager::

        with serve_cluster(WorkerSource.from_script(sql), shards=4) as fe:
            conn = repro.connect(fe.url)
    """
    coordinator = ClusterCoordinator(
        source,
        shards,
        config=config,
        ring_seed=ring_seed,
        respawn=respawn,
    )
    frontend = ClusterFrontend(
        coordinator, host=host, port=port, owns_coordinator=True
    )
    return frontend.start()
