"""Scatter-gather classification and order-preserving result merging.

Every worker holds a full replica, so a scatter query is the *same* SQL
sent to all shards with one extra execution option: a ``scan_ranges``
slice of the driving table T (shard *s* of *N* sees rows
``[floor(sR/N), floor((s+1)R/N))``).  Correctness then rests on two
things this module owns:

1. **Classification** — is the worker-side physical plan shaped so that
   per-slice outputs can be recombined into exactly the single-node
   output?  The classifier mirrors the worker's planning pipeline
   (relational rewrite rules + the default planner) and walks the plan
   from the root:

   * *concat mode*: T sits on the order-driving path (Filter/Project
     child, NestedLoopJoin outer, HashSemiJoin left) with no
     sort/distinct/set-op on the path — shard outputs concatenated in
     shard order equal the single-node row stream.  Hash and merge
     joins are excluded here: the hash build side is chosen from live
     cardinalities, which a slice changes, and a flipped build side
     flips the output order.
   * *set mode*: the plan ends in a sort-based DISTINCT (or a
     non-``ALL`` INTERSECT/EXCEPT), whose output is canonically sorted
     and duplicate-free — order below is irrelevant, so any join tree
     qualifies as long as slicing distributes over it set-wise (the one
     exception: an anti semi-join probed against the slice).
   * a trailing ORDER BY in either mode becomes a merge-side stable
     sort with the operator's exact key function.

   Anything else returns ``None`` and the front end falls back to
   routing the whole query to a single shard — always correct on
   replicas.

2. **Merging** — :func:`merge_shard_rows` recombines shard outputs.
   Stable-sorting the concatenation of per-shard-sorted lists equals
   stable-sorting the full list (ties across shards resolve in shard
   order, which *is* concatenation order), so the merge is byte-
   identical to single-node execution; the byte-identity suite pins
   this across Examples E1–E11.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.rewrite.engine import Optimizer
from ..engine.operators import (
    Filter,
    HashDistinct,
    HashJoin,
    HashSemiJoin,
    IndexScan,
    NestedLoopJoin,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    SortDistinct,
    SortMergeJoin,
    SortSetOp,
)
from ..engine.planner import Planner, PlannerOptions
from ..sql.ast import SetOpKind
from ..sql.parser import parse_query
from ..types.values import row_sort_key, sort_key
from .routing import subquery_reference_counts, table_reference_counts

__all__ = [
    "MergeSpec",
    "classify_scatter",
    "merge_shard_rows",
    "partition_ranges",
]


@dataclass(frozen=True)
class MergeSpec:
    """How to recombine per-shard outputs for one classified query.

    ``mode``:
        * ``"concat"`` — concatenate shard outputs in shard order.
        * ``"concat_dedup"`` — concatenate, then streaming
          first-occurrence dedup (mirrors a hash DISTINCT root).
        * ``"set"`` — sort the union by canonical full-row key and drop
          adjacent duplicates (mirrors a sort DISTINCT / non-ALL
          INTERSECT / EXCEPT root).

    ``order_keys`` — ``(position, ascending)`` pairs of a trailing
    ORDER BY, applied as a final stable sort; None when the plan has no
    Sort root.
    """

    table: str
    mode: str
    order_keys: tuple[tuple[int, bool], ...] | None = None


def partition_ranges(
    total_rows: int, shards: int
) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` row ranges, one per shard."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return [
        (total_rows * shard // shards, total_rows * (shard + 1) // shards)
        for shard in range(shards)
    ]


def classify_scatter(
    sql: str,
    database,
    *,
    optimize: bool = True,
) -> MergeSpec | None:
    """Classify *sql* for scatter-gather against *database*'s catalog.

    Mirrors the worker execution pipeline exactly — the same relational
    rewrite rules when ``optimize`` is on, then the default planner
    over the catalog — so the plan inspected here is the plan every
    replica shard will run.  Returns the :class:`MergeSpec` for the
    first (largest) table that qualifies as the driving table, or None
    when the query must fall back to single-shard routing.
    """
    try:
        query = parse_query(sql)
    except Exception:
        return None  # let the worker produce the real parse error
    if optimize:
        try:
            query = Optimizer.for_relational(database.catalog).optimize(query).query
        except Exception:
            return None
    counts = table_reference_counts(query)
    inner = subquery_reference_counts(query)
    candidates = [
        name
        for name, count in counts.items()
        if count == 1 and inner.get(name, 0) == 0 and database.has_table(name)
    ]
    if not candidates:
        return None
    # Prefer slicing the largest table: that is where scatter pays.
    candidates.sort(key=lambda name: (-len(database.table(name)), name))
    try:
        # database= mirrors the worker's planner: the cost model picks
        # hash-join build sides from live cardinalities, and the sliced
        # view reports base-table cardinality, so front end and every
        # shard all derive the identical plan.
        plan = Planner(
            database.catalog, PlannerOptions(), database=database
        ).plan(query)
    except Exception:
        return None
    for table in candidates:
        spec = _classify_plan(plan, table)
        if spec is not None:
            return spec
    return None


# ---------------------------------------------------------------------------
# plan classification


def _classify_plan(plan: PlanNode, table: str) -> MergeSpec | None:
    node = plan
    if isinstance(node, SortSetOp):
        if node.all_rows or node.kind not in (
            SetOpKind.INTERSECT,
            SetOpKind.EXCEPT,
        ):
            return None
        # T may drive the left operand only: EXCEPT subtracts the right
        # side, and "rows missing from a slice" does not distribute.
        if _scans_table(node.right, table):
            return None
        if not _scans_table(node.left, table):
            return None
        if not _set_decomposable(node.left, table):
            return None
        return MergeSpec(table=table, mode="set")

    order_keys: tuple[tuple[int, bool], ...] | None = None
    if isinstance(node, Sort):
        order_keys = tuple(
            (int(position), bool(asc))
            for position, asc in zip(node.key_positions, node.ascending)
        )
        node = node.child

    if isinstance(node, SortDistinct):
        if _scans_table(node.child, table) and _set_decomposable(
            node.child, table
        ):
            return MergeSpec(table=table, mode="set", order_keys=order_keys)
        return None
    if isinstance(node, HashDistinct):
        if _scans_table(node.child, table) and _concat_decomposable(
            node.child, table
        ):
            return MergeSpec(
                table=table, mode="concat_dedup", order_keys=order_keys
            )
        return None
    if _scans_table(node, table) and _concat_decomposable(node, table):
        return MergeSpec(table=table, mode="concat", order_keys=order_keys)
    return None


def _scans_table(node: PlanNode, table: str) -> bool:
    if isinstance(node, (SeqScan, IndexScan)) and node.table_name == table:
        return True
    return any(_scans_table(child, table) for child in node.children())


def _concat_decomposable(node: PlanNode, table: str) -> bool:
    """Is the node's row *stream* the concatenation of per-slice streams?

    True only when T sits on the order-driving path and nothing on that
    path reorders, dedups, or rebalances rows.  Subtrees that do not
    scan T are identical on every shard and need no inspection.
    """
    if isinstance(node, (SeqScan, IndexScan)):
        return node.table_name == table
    if isinstance(node, (Filter, Project)):
        return _concat_decomposable(node.child, table)
    if isinstance(node, NestedLoopJoin):
        # Output streams the outer (left) side; the inner side is
        # re-enumerated per outer row, so T must drive from the left.
        if _scans_table(node.right, table):
            return False
        return _concat_decomposable(node.left, table)
    if isinstance(node, HashSemiJoin):
        # Semi/anti joins emit left rows in left order; the right side
        # only gates membership.
        if _scans_table(node.right, table):
            return False
        return _concat_decomposable(node.left, table)
    if isinstance(node, HashJoin):
        # Output order follows the probe side.  The build-side choice
        # is replica-deterministic (sliced tables report base-table
        # cardinality to the cost model), so T may drive from the
        # probe subtree; the build side must be shard-constant.
        probe = node.right if node.build_left else node.left
        build = node.left if node.build_left else node.right
        if _scans_table(build, table):
            return False
        return _concat_decomposable(probe, table)
    # SortMergeJoin sorts both inputs (a slice sorts locally, not
    # globally).  Sort/Distinct/SetOp reorder or collapse across slice
    # boundaries.  All unsafe for concatenation.
    return False


def _set_decomposable(node: PlanNode, table: str) -> bool:
    """Does slicing T distribute over the subtree *as a set*?

    The caller guarantees the merged output passes through a sorted
    DISTINCT, so only set equality matters: joins are bilinear,
    filters/projections/distincts/sorts are pointwise or set-identity,
    and set operations distribute except where a slice appears on the
    subtrahend side (EXCEPT right) or under negation (anti join right).
    """
    if not _scans_table(node, table):
        return True  # constant subtree: identical on every shard
    if isinstance(node, (SeqScan, IndexScan)):
        return True
    if isinstance(node, (Filter, Project, Sort, SortDistinct, HashDistinct)):
        return _set_decomposable(node.child, table)
    if isinstance(node, (NestedLoopJoin, HashJoin, SortMergeJoin)):
        side = node.left if _scans_table(node.left, table) else node.right
        return _set_decomposable(side, table)
    if isinstance(node, HashSemiJoin):
        if _scans_table(node.right, table):
            # join(A, ∪ B_s) = ∪ join(A, B_s) holds for semi joins but
            # not for anti joins: "no match in a slice" ≠ "no match".
            if node.negated:
                return False
            return _set_decomposable(node.right, table)
        return _set_decomposable(node.left, table)
    if isinstance(node, SortSetOp):
        in_left = _scans_table(node.left, table)
        side = node.left if in_left else node.right
        if node.kind is SetOpKind.UNION:
            return _set_decomposable(side, table)
        if node.kind is SetOpKind.INTERSECT:
            return _set_decomposable(side, table)
        # EXCEPT: distributes over the left operand only, and only in
        # its DISTINCT form — with ALL, count_A(r) > count_B(r) can
        # hold in total while no single slice's count does.
        if not in_left or node.all_rows:
            return False
        return _set_decomposable(side, table)
    return False


# ---------------------------------------------------------------------------
# merging


def merge_shard_rows(
    spec: MergeSpec, shard_rows: list[list[tuple]]
) -> list[tuple]:
    """Recombine per-shard outputs (in shard-id order) per *spec*."""
    merged: list[tuple] = []
    for rows in shard_rows:
        merged.extend(tuple(row) for row in rows)

    if spec.mode == "set":
        merged.sort(key=row_sort_key)
        deduped: list[tuple] = []
        last_key = None
        for row in merged:
            key = row_sort_key(row)
            if key != last_key:
                deduped.append(row)
                last_key = key
        merged = deduped
    elif spec.mode == "concat_dedup":
        seen: set = set()
        deduped = []
        for row in merged:
            key = row_sort_key(row)
            if key not in seen:
                seen.add(key)
                deduped.append(row)
        merged = deduped
    elif spec.mode != "concat":
        raise ValueError(f"unknown merge mode {spec.mode!r}")

    if spec.order_keys:
        from ..engine.executor import _Reversed

        def key_fn(row: tuple):
            parts = []
            for position, asc in spec.order_keys:
                key = sort_key(row[position])
                parts.append(key if asc else _Reversed(key))
            return tuple(parts)

        merged.sort(key=key_fn)
    return merged
