"""Deterministic consistent-hash ring with virtual nodes.

Routing decisions must be *stable across process restarts*: a point
query for supplier ``S3`` has to land on the same shard today,
tomorrow, and after the front end is bounced, or per-shard caches and
diagnostics become useless.  Python's builtin ``hash`` is salted per
process (``PYTHONHASHSEED``), so the ring hashes with
:func:`hashlib.blake2b` keyed by an explicit seed instead.

Each shard contributes ``vnodes`` points on a 64-bit ring; a key is
owned by the first shard point at or clockwise-after the key's hash.
Virtual nodes keep ownership roughly uniform and — the classic
consistent-hashing property — adding or removing one shard of N only
remaps ~K/N of K keys (the property suite in
``tests/properties/test_hash_ring.py`` pins this).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["HashRing", "canonical_key"]

_SPACE_BYTES = 8  # 64-bit ring positions


def canonical_key(parts: Iterable[object]) -> str:
    """Flatten a routing key (e.g. ``("SUPPLIER", 3)``) to a stable string.

    ``None`` and numeric values format deterministically via ``repr``;
    strings are taken as-is.  The unit separator keeps ``("AB", "C")``
    distinct from ``("A", "BC")``.
    """

    rendered = []
    for part in parts:
        rendered.append(part if isinstance(part, str) else repr(part))
    return "\x1f".join(rendered)


class HashRing:
    """Consistent-hash ring mapping keys to shard ids.

    Parameters
    ----------
    shards:
        Initial shard identifiers (ints for cluster use; any string-able
        value works, which the property tests exploit).
    vnodes:
        Ring points per shard.  More points → smoother balance, larger
        remap cost when membership changes.
    seed:
        Keyed-hash seed.  Two rings built with the same shards, vnodes
        and seed produce identical lookups in any process.
    """

    def __init__(
        self,
        shards: Sequence[object] = (),
        *,
        vnodes: int = 64,
        seed: int = 0,
    ) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self._vnodes = int(vnodes)
        self._seed = int(seed)
        self._points: list[int] = []
        self._owners: list[object] = []
        self._shards: dict[object, tuple[int, ...]] = {}
        for shard in shards:
            self.add_shard(shard)

    # -- membership ---------------------------------------------------

    @property
    def shards(self) -> tuple[object, ...]:
        return tuple(self._shards)

    @property
    def vnodes(self) -> int:
        return self._vnodes

    @property
    def seed(self) -> int:
        return self._seed

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: object) -> bool:
        return shard in self._shards

    def add_shard(self, shard: object) -> None:
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on ring")
        points = tuple(
            self._hash(f"shard\x1f{shard!r}\x1f{replica}")
            for replica in range(self._vnodes)
        )
        self._shards[shard] = points
        for point in points:
            index = bisect.bisect_left(self._points, point)
            # Collisions across shards are astronomically unlikely in a
            # 64-bit space but must still be deterministic: first-added
            # shard keeps the point.
            if index < len(self._points) and self._points[index] == point:
                continue
            self._points.insert(index, point)
            self._owners.insert(index, shard)

    def remove_shard(self, shard: object) -> None:
        if shard not in self._shards:
            raise KeyError(shard)
        del self._shards[shard]
        keep_points: list[int] = []
        keep_owners: list[object] = []
        for point, owner in zip(self._points, self._owners):
            if owner != shard:
                keep_points.append(point)
                keep_owners.append(owner)
        self._points = keep_points
        self._owners = keep_owners

    # -- lookup -------------------------------------------------------

    def lookup(self, key: object) -> object:
        """Return the shard owning *key*.

        *key* may be a string, or any iterable of parts (tuples are
        canonicalised via :func:`canonical_key`).
        """

        if not self._points:
            raise LookupError("hash ring has no shards")
        if isinstance(key, str):
            canonical = key
        elif isinstance(key, (tuple, list)):
            canonical = canonical_key(key)
        else:
            canonical = repr(key)
        position = self._hash(f"key\x1f{canonical}")
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap: clockwise past the top of the ring
        return self._owners[index]

    def _hash(self, text: str) -> int:
        digest = hashlib.blake2b(
            text.encode("utf-8"),
            digest_size=_SPACE_BYTES,
            key=self._seed.to_bytes(8, "big", signed=True),
        ).digest()
        return int.from_bytes(digest, "big")
