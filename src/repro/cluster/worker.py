"""Shard worker processes: a full :class:`QueryServer` per shard.

Workers are spawned (never forked — the coordinator is threaded, and a
fork could inherit a held lock) so everything that crosses into the
child must pickle.  A :class:`Database` does not (it holds thread
locks), so the child receives a :class:`WorkerSource` — a recipe for
rebuilding the replica — plus a :class:`WorkerConfig` of plain values,
and reports its dynamically-bound port back through a spawn-context
queue.

Each worker is shard-scoped by construction: it owns its own
:class:`~repro.service.QueryService`, and therefore its own
:class:`~repro.resilience.health.HealthTracker` ladder, admission
controller (per-shard priority shedding), caches, and metrics registry.
The front end aggregates those over HTTP; nothing is shared between
processes.
"""

from __future__ import annotations

import importlib
import os
import signal
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["WorkerConfig", "WorkerSource", "worker_main"]


@dataclass(frozen=True)
class WorkerSource:
    """A picklable recipe for rebuilding the worker's database replica.

    ``kind`` is ``"script"`` (``payload`` is a CREATE TABLE / INSERT
    script executed via :meth:`Database.from_script`) or ``"factory"``
    (``payload`` is a ``"module:callable"`` path; the callable takes no
    arguments and returns a :class:`Database`).  A script pins the
    replica bytes exactly; a factory is cheaper for generated workloads
    whose builders are already deterministic.
    """

    kind: str
    payload: str

    def __post_init__(self) -> None:
        if self.kind not in ("script", "factory"):
            raise ValueError("source kind must be 'script' or 'factory'")
        if self.kind == "factory" and ":" not in self.payload:
            raise ValueError("factory source must be 'module:callable'")

    @classmethod
    def from_script(cls, script: str) -> "WorkerSource":
        return cls("script", script)

    @classmethod
    def from_factory(cls, path: str) -> "WorkerSource":
        return cls("factory", path)

    def build(self):
        """Rebuild the replica (called inside the worker process)."""
        from ..engine.database import Database

        if self.kind == "script":
            return Database.from_script(self.payload)
        module_name, _, attr = self.payload.partition(":")
        factory = getattr(importlib.import_module(module_name), attr)
        return factory()


@dataclass(frozen=True)
class WorkerConfig:
    """Plain-value knobs shipped to each worker process.

    ``faults`` is a tuple of :class:`~repro.resilience.faults.FaultSpec`
    keyword dicts (picklable fields only: ``site``, ``kind``,
    ``after``, ``times``, ``probability``, ``status``, ``delay``) armed
    at worker startup, with ``fault_seed`` re-seeding the injector RNG
    first — this is how tests and benchmark E19 place deterministic
    stalls and read faults *inside* shard processes.
    """

    host: str = "127.0.0.1"
    threads: int = 2
    queue_depth: int = 64
    parallel_workers: int | None = None
    stream_chunk_rows: int = 1000
    options_wire: Mapping[str, Any] | None = None
    faults: tuple[Mapping[str, Any], ...] = field(default_factory=tuple)
    fault_seed: int | None = None

    def default_options(self):
        from ..options import ExecutionOptions

        if not self.options_wire:
            return None
        return ExecutionOptions.from_wire(dict(self.options_wire))


def _arm_faults(config: WorkerConfig) -> None:
    from ..resilience.faults import FAULTS, FaultSpec

    if config.fault_seed is not None:
        FAULTS.seed(config.fault_seed)
    for spec in config.faults:
        FAULTS.arm(FaultSpec(**dict(spec)))


def worker_main(
    shard_id: int,
    source: WorkerSource,
    config: WorkerConfig,
    ready_queue: Any,
) -> None:
    """Spawn entry point: build the replica, serve, wait for SIGTERM.

    Reports ``("ready", shard_id, pid, port)`` on *ready_queue* once
    the HTTP listener is bound, or ``("error", shard_id, pid, message)``
    if startup fails.  On SIGTERM/SIGINT the worker drains gracefully
    (in-flight queries finish, queued ones fail fast with a retryable
    503) and exits 0.
    """

    stop = threading.Event()

    def _request_stop(_signum: int, _frame: Any) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)

    try:
        _arm_faults(config)
        from ..engine.parallel import ParallelOptions
        from ..net.server import QueryServer

        database = source.build()
        parallel = (
            ParallelOptions(workers=config.parallel_workers)
            if config.parallel_workers and config.parallel_workers > 1
            else None
        )
        server = QueryServer(
            database,
            host=config.host,
            port=0,
            workers=config.threads,
            queue_depth=config.queue_depth,
            parallel=parallel,
            options=config.default_options(),
            stream_chunk_rows=config.stream_chunk_rows,
        )
    except Exception as error:  # startup failure: report, don't hang
        ready_queue.put(("error", shard_id, os.getpid(), repr(error)))
        raise SystemExit(1)

    server.metrics.set("cluster_shard_id", float(shard_id))
    ready_queue.put(("ready", shard_id, os.getpid(), server.port))
    try:
        while not stop.wait(0.1):
            pass
    finally:
        server.drain()
