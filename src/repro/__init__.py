"""repro — a reproduction of Paulley & Larson, "Exploiting Uniqueness in
Query Optimization" (ICDE 1994).

The library provides:

* a SQL2-subset front end (:mod:`repro.sql`),
* a schema catalog with keys and CHECK constraints (:mod:`repro.catalog`),
* a multiset execution engine with three-valued logic (:mod:`repro.engine`),
* functional-dependency derivation (:mod:`repro.fd`),
* the paper's uniqueness analysis and rewrite rules (:mod:`repro.core`),
* IMS/DL-I and object-store simulators for the paper's §6
  (:mod:`repro.ims`, :mod:`repro.oodb`), and
* workload generators for the paper's supplier schema
  (:mod:`repro.workloads`).

Quickstart::

    from repro import Catalog, Database, execute, optimize, test_uniqueness

    db = Database.from_script(DDL_AND_INSERTS)
    verdict = test_uniqueness("SELECT DISTINCT ...", db.catalog)
    rewritten = optimize("SELECT DISTINCT ...", db.catalog)
    rows = execute(rewritten.query, db)
"""

from .cache import (
    cache_stats,
    caches_enabled,
    clear_all_caches,
    set_caches_enabled,
)
from .catalog import Catalog, CatalogBuilder, TableSchema
from .core import (
    ExactOptions,
    OptimizeResult,
    Optimizer,
    UniquenessOptions,
    UniquenessResult,
    check_theorem1,
    is_duplicate_free,
    optimize,
    test_uniqueness,
)
from .engine import (
    Database,
    Executor,
    ParallelOptions,
    Planner,
    PlannerOptions,
    Result,
    Stats,
    execute,
    execute_planned,
)
from .errors import (
    ExecutionError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ResourceError,
    RewriteMismatchError,
    RowBudgetExceeded,
    ServiceError,
    ServiceOverloadedError,
    ServiceShutdownError,
    TransientImsError,
)
from .resilience import (
    FAULTS,
    ExecutionGuard,
    FaultInjector,
    FaultSpec,
    ResourceBudget,
    RetryPolicy,
    call_with_retry,
)
from .observe import (
    AuditTrail,
    MetricsRegistry,
    PROCESS_METRICS,
    TRACER,
    execute_analyzed,
    explain_analyze,
    set_tracing,
    tracing_enabled,
)
from .resilience.guarded import GuardedOutcome, run_guarded
from .service import QueryService, QueryTicket, Session
from .sql import parse, parse_query, parse_script, to_sql
from .types import NULL

__version__ = "1.0.0"

__all__ = [
    "AuditTrail",
    "Catalog",
    "CatalogBuilder",
    "Database",
    "ExactOptions",
    "ExecutionError",
    "ExecutionGuard",
    "Executor",
    "FAULTS",
    "FaultInjector",
    "FaultSpec",
    "GuardedOutcome",
    "MetricsRegistry",
    "NULL",
    "OptimizeResult",
    "Optimizer",
    "PROCESS_METRICS",
    "ParallelOptions",
    "Planner",
    "PlannerOptions",
    "QueryCancelled",
    "QueryService",
    "QueryTicket",
    "QueryTimeout",
    "ReproError",
    "ResourceBudget",
    "ResourceError",
    "Result",
    "RetryPolicy",
    "RewriteMismatchError",
    "RowBudgetExceeded",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceShutdownError",
    "Session",
    "Stats",
    "TRACER",
    "TableSchema",
    "TransientImsError",
    "UniquenessOptions",
    "UniquenessResult",
    "cache_stats",
    "caches_enabled",
    "call_with_retry",
    "check_theorem1",
    "clear_all_caches",
    "execute",
    "execute_analyzed",
    "execute_planned",
    "explain_analyze",
    "is_duplicate_free",
    "optimize",
    "run_guarded",
    "set_caches_enabled",
    "set_tracing",
    "parse",
    "parse_query",
    "parse_script",
    "test_uniqueness",
    "to_sql",
    "tracing_enabled",
]
