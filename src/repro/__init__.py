"""repro — a reproduction of Paulley & Larson, "Exploiting Uniqueness in
Query Optimization" (ICDE 1994).

The library provides:

* a SQL2-subset front end (:mod:`repro.sql`),
* a schema catalog with keys and CHECK constraints (:mod:`repro.catalog`),
* a multiset execution engine with three-valued logic (:mod:`repro.engine`),
* functional-dependency derivation (:mod:`repro.fd`),
* the paper's uniqueness analysis and rewrite rules (:mod:`repro.core`),
* IMS/DL-I and object-store simulators for the paper's §6
  (:mod:`repro.ims`, :mod:`repro.oodb`), and
* workload generators for the paper's supplier schema
  (:mod:`repro.workloads`).

Quickstart::

    import repro

    db = repro.Database.from_script(DDL_AND_INSERTS)
    with repro.connect(db) as conn:          # or repro.connect("http://...")
        cursor = conn.execute("SELECT DISTINCT ...", safe_mode=True)
        rows = cursor.fetchall()

:func:`connect` returns the same :class:`Connection` facade for an
in-process database, a SQL script path, or the URL of a ``repro serve
--http`` server; every execution knob travels through one frozen
:class:`ExecutionOptions`.  The older entrypoints (``execute``,
``execute_planned``, ``run_guarded``, ``execute_analyzed``) remain as
deprecated shims delegating to the same code.
"""

from .cache import (
    cache_stats,
    caches_enabled,
    clear_all_caches,
    set_caches_enabled,
)
from .catalog import Catalog, CatalogBuilder, TableSchema
from .core import (
    ExactOptions,
    OptimizeResult,
    Optimizer,
    UniquenessOptions,
    UniquenessResult,
    check_theorem1,
    is_duplicate_free,
    optimize,
    test_uniqueness,
)
from .engine import (
    Database,
    Executor,
    ParallelOptions,
    Planner,
    PlannerOptions,
    Result,
    Stats,
)
from .engine import execute as _engine_execute
from .engine import execute_planned as _engine_execute_planned
from .errors import (
    ExecutionError,
    NetworkError,
    ProtocolError,
    QueryCancelled,
    QueryTimeout,
    RemoteQueryError,
    ReproError,
    ResourceError,
    RewriteMismatchError,
    RowBudgetExceeded,
    ServiceError,
    ServiceOverloadedError,
    ServiceShutdownError,
    TicketWaitTimeout,
    TransientImsError,
    TransientNetworkError,
)
from .resilience import (
    FAULTS,
    ExecutionGuard,
    FaultInjector,
    FaultSpec,
    ResourceBudget,
    RetryPolicy,
    call_with_retry,
)
from .observe import (
    AuditTrail,
    MetricsRegistry,
    PROCESS_METRICS,
    TRACER,
    explain_analyze,
    set_tracing,
    tracing_enabled,
)
from .observe import execute_analyzed as _observe_execute_analyzed
from .resilience.guarded import GuardedOutcome
from .resilience.guarded import run_guarded as _guarded_run_guarded
from .api import (
    Connection,
    Cursor,
    ExecutedQuery,
    connect,
    deprecated_entrypoint as _deprecated_entrypoint,
    run_with_options,
)
from .options import ExecutionOptions
from .service import QueryService, QueryTicket, Session
from .stats import (
    StatisticsCatalog,
    StatisticsCostModel,
    collect_statistics,
    ensure_statistics,
)

#: Deprecated entrypoints — thin shims over the unchanged module-level
#: implementations.  Import from the home modules (``repro.engine``,
#: ``repro.resilience.guarded``, ``repro.observe``) to skip the warning.
execute = _deprecated_entrypoint(
    "execute", "Connection.execute()", _engine_execute
)
execute_planned = _deprecated_entrypoint(
    "execute_planned", "Connection.execute()", _engine_execute_planned
)
run_guarded = _deprecated_entrypoint(
    "run_guarded",
    "Connection.execute(..., safe_mode=True)",
    _guarded_run_guarded,
)
execute_analyzed = _deprecated_entrypoint(
    "execute_analyzed",
    "Connection.execute(..., analyze=True)",
    _observe_execute_analyzed,
)
from .sql import parse, parse_query, parse_script, to_sql
from .types import NULL

__version__ = "1.0.0"

__all__ = [
    "AuditTrail",
    "Catalog",
    "CatalogBuilder",
    "Connection",
    "Cursor",
    "Database",
    "ExecutedQuery",
    "ExecutionOptions",
    "ExactOptions",
    "ExecutionError",
    "ExecutionGuard",
    "Executor",
    "FAULTS",
    "FaultInjector",
    "FaultSpec",
    "GuardedOutcome",
    "MetricsRegistry",
    "NULL",
    "NetworkError",
    "OptimizeResult",
    "Optimizer",
    "PROCESS_METRICS",
    "ParallelOptions",
    "Planner",
    "PlannerOptions",
    "ProtocolError",
    "QueryCancelled",
    "QueryService",
    "QueryTicket",
    "QueryTimeout",
    "RemoteQueryError",
    "ReproError",
    "ResourceBudget",
    "ResourceError",
    "Result",
    "RetryPolicy",
    "RewriteMismatchError",
    "RowBudgetExceeded",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceShutdownError",
    "Session",
    "StatisticsCatalog",
    "StatisticsCostModel",
    "Stats",
    "TRACER",
    "TableSchema",
    "TicketWaitTimeout",
    "TransientImsError",
    "TransientNetworkError",
    "UniquenessOptions",
    "UniquenessResult",
    "cache_stats",
    "caches_enabled",
    "call_with_retry",
    "check_theorem1",
    "clear_all_caches",
    "collect_statistics",
    "connect",
    "ensure_statistics",
    "execute",
    "execute_analyzed",
    "execute_planned",
    "explain_analyze",
    "is_duplicate_free",
    "optimize",
    "run_guarded",
    "run_with_options",
    "set_caches_enabled",
    "set_tracing",
    "parse",
    "parse_query",
    "parse_script",
    "test_uniqueness",
    "to_sql",
    "tracing_enabled",
]
