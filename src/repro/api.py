"""The unified ``Connection``/``Cursor`` facade — one way to execute.

The library grew four overlapping execution entrypoints
(:func:`~repro.engine.executor.execute`,
:func:`~repro.engine.planner.execute_planned`,
:func:`~repro.resilience.guarded.run_guarded`,
:func:`~repro.observe.analyze.execute_analyzed`), each threading its own
subset of budget/safe-mode/parallel keyword arguments.  This module
subsumes them behind a DB-API-flavored facade:

* :func:`connect` — open a :class:`Connection` from a
  :class:`~repro.engine.database.Database`, a SQL-script path, or an
  ``http(s)://`` URL of a :mod:`repro.net` server.  Local and remote
  connections expose the identical interface.
* :class:`Cursor` — ``execute(sql, ...)`` with every knob expressed
  through one frozen :class:`~repro.options.ExecutionOptions`, then
  ``fetchone``/``fetchmany``/``fetchall`` or plain iteration.
* :func:`run_with_options` — the execution core both the local backend
  and the :class:`~repro.service.QueryService` workers call: guarded
  execution (budgets, safe-mode verification) plus optional EXPLAIN
  ANALYZE, driven entirely by an options value.

The legacy entrypoints remain importable from :mod:`repro` as thin
delegating shims that raise :class:`DeprecationWarning`; their module
homes (``repro.engine``, ``repro.resilience.guarded``,
``repro.observe``) are unchanged and unwarned for internal use.

Quickstart::

    import repro

    conn = repro.connect(database)           # or repro.connect(url)
    cursor = conn.execute(
        "SELECT DISTINCT SNO FROM PARTS WHERE COLOR = 'RED'",
        timeout=5.0, safe_mode=True,
    )
    for row in cursor:
        ...
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Sequence

from .core.rewrite.engine import Optimizer
from .engine.database import Database
from .engine.parallel import ParallelOptions
from .engine.plan_cache import PlanCache
from .engine.result import Result
from .engine.stats import Stats
from .errors import (
    CatalogError,
    ProtocolError,
    ReproError,
    ResourceError,
    SqlError,
    TransactionError,
)
from .observe.analyze import execute_analyzed
from .observe.trace import NULL_SPAN, TRACER
from .options import ExecutionOptions
from .resilience.budgets import ResourceBudget
from .resilience.deadline import Deadline
from .resilience.guarded import GuardedOutcome, run_guarded
from .resilience.health import (
    SUBSYSTEM_ESTIMATOR,
    SUBSYSTEM_OPTIMIZER,
    SUBSYSTEM_PARALLEL,
    SUBSYSTEM_PLAN_CACHE,
    SUBSYSTEM_VECTORIZED,
)
from .sql.ast import (
    BeginTransaction,
    CommitTransaction,
    Delete,
    Insert,
    RollbackTransaction,
    Statement,
    Update,
)
from .sql.parser import parse, parse_query

#: Sentinel distinguishing "argument not passed" from an explicit None
#: or False in :meth:`Cursor.execute` keyword overrides.
_UNSET = object()


def run_with_options(
    query: Any,
    database: Database,
    *,
    params: dict | None = None,
    options: ExecutionOptions | None = None,
    stats: Stats | None = None,
    plan_cache: PlanCache | None = None,
    parallel: Any | None = None,
    planner_options: Any | None = None,
    health: Any | None = None,
    on_guard: Any | None = None,
    transaction: Any | None = None,
) -> GuardedOutcome:
    """Execute *query* under one :class:`ExecutionOptions` value.

    This is the single execution core behind the :class:`Connection`
    facade, :meth:`repro.service.QueryService.submit`, and the HTTP
    server: guarded execution with the options' budget and safe mode,
    rewrites disabled when ``options.optimize`` is False, and — with
    ``options.analyze`` — an instrumented EXPLAIN ANALYZE run attached
    as :attr:`~repro.resilience.guarded.GuardedOutcome.analysis`.

    *parallel* overrides ``options.parallel`` when not None (the service
    passes its live shared :class:`~repro.engine.parallel.ParallelExecution`).

    Deadline semantics: when ``options.deadline`` is set, the effective
    execution timeout is the smaller of ``options.timeout`` and the
    deadline's remaining budget, and an already-expired deadline raises
    :class:`~repro.errors.DeadlineExpiredError` here — before parsing,
    planning, or touching a single operator.

    *health* (a :class:`~repro.resilience.health.HealthTracker`) clamps
    the execution to the ladder's current tiers — a demoted subsystem's
    fast path is simply not requested — and is fed the outcome's fault
    and success signals afterwards.  *on_guard* is forwarded to
    :func:`~repro.resilience.guarded.run_guarded` so the caller can
    cooperatively cancel mid-flight.

    *transaction* (an open :class:`~repro.engine.txn.Transaction`) runs
    the statement inside that transaction: reads go through its pinned
    snapshot view, DML buffers into it without committing.  Without
    one, reads execute against the latest committed state and DML runs
    in an implicit single-statement transaction that commits before
    returning.  ``BEGIN``/``COMMIT``/``ROLLBACK`` are *not* accepted
    here — transaction lifetime belongs to the owner of the transaction
    handle (a :class:`Connection` or a service session), so control
    statements must go through :func:`apply_transaction_control`.
    """
    options = options if options is not None else ExecutionOptions()
    statement: Any = parse(query) if isinstance(query, str) else query
    if isinstance(statement, (Insert, Update, Delete)):
        return run_dml_with_options(
            statement,
            query if isinstance(query, str) else None,
            database,
            transaction,
            params=params,
            options=options,
            stats=stats,
        )
    if isinstance(
        statement, (BeginTransaction, CommitTransaction, RollbackTransaction)
    ):
        raise ProtocolError(
            "transaction control must go through a Connection or a "
            "service session (see apply_transaction_control)"
        )
    if transaction is not None:
        # Pin every read to the transaction's snapshot + its own writes.
        database = transaction.view()
    if options.scan_ranges:
        # Scatter-gather shard execution: run against a read-only
        # row-range view.  Everything below (planner, caches, health)
        # sees the view's own fingerprint, so nothing aliases the full
        # database.
        from .engine.sliced import SlicedDatabase

        database = SlicedDatabase.wrap(database, options.scan_ranges)
    timeout = options.timeout
    if options.deadline is not None:
        # Raises DeadlineExpiredError when nothing is left: queue wait
        # or network transit already spent the client's whole budget.
        timeout = options.deadline.clamp_timeout(timeout)
    budget = (
        None
        if timeout is None and options.row_budget is None
        else ResourceBudget(timeout=timeout, row_budget=options.row_budget)
    )
    effective_parallel = parallel if parallel is not None else options.parallel
    optimize = options.optimize
    engine_mode = options.engine_mode
    use_stats = options.stats or options.adaptive
    adaptive = options.adaptive
    decision = None
    if health is not None:
        decision = health.decide(
            {
                SUBSYSTEM_VECTORIZED: engine_mode != "tuple",
                SUBSYSTEM_PARALLEL: effective_parallel is not None,
                SUBSYSTEM_OPTIMIZER: optimize,
                SUBSYSTEM_PLAN_CACHE: True,
                SUBSYSTEM_ESTIMATOR: use_stats,
            }
        )
        if not decision.granted(SUBSYSTEM_VECTORIZED) and engine_mode != "tuple":
            engine_mode = "tuple"
        if not decision.granted(SUBSYSTEM_PARALLEL):
            effective_parallel = None
        if not decision.granted(SUBSYSTEM_OPTIMIZER):
            optimize = False
        if not decision.granted(SUBSYSTEM_PLAN_CACHE):
            # Bypass tier: a throwaway cache keeps the execution path
            # identical while never reading or writing the shared one.
            plan_cache = PlanCache()
        if not decision.granted(SUBSYSTEM_ESTIMATOR):
            # Heuristic tier: a misbehaving estimator plans like PR 1
            # again — rule join order, fixed selectivities.
            use_stats = adaptive = False
    if use_stats:
        planner_options = _stats_planner_options(
            planner_options, database, options, adaptive
        )
    optimizer = None
    if not optimize:
        # An empty rule list turns run_guarded into plain planned
        # execution: no rewrite can fire, so safe mode has nothing to
        # cross-check and the audit trail stays empty.
        optimizer = Optimizer(database.catalog, rules=[])
    try:
        outcome = run_guarded(
            query,
            database,
            params=params,
            budget=budget,
            optimizer=optimizer,
            safe_mode=options.safe_mode,
            stats=stats,
            plan_cache=plan_cache,
            planner_options=planner_options,
            parallel=effective_parallel,
            engine_mode=engine_mode,
            batch_rows=options.batch_rows,
            on_guard=on_guard,
        )
    except ReproError as error:
        # Budget violations and user errors (bad SQL, unknown tables)
        # say nothing about subsystem health; engine-level failures do.
        if (
            health is not None
            and decision is not None
            and not isinstance(error, (ResourceError, SqlError, CatalogError))
        ):
            health.observe(decision, stats=stats, error=error)
        raise
    if health is not None and decision is not None:
        health.observe(decision, stats=outcome.stats, outcome=outcome)
    if (options.analyze or adaptive) and not outcome.mismatch:
        # Re-execute the winning form instrumented; the guarded result
        # above stays the served answer, the analysis rides alongside.
        # Adaptive mode forces this instrumented run — observed actuals
        # are the feedback the correction store folds.
        outcome.analysis = execute_analyzed(
            parse_query(outcome.sql),
            database,
            params=params,
            options=planner_options,
            guard=budget.guard() if budget is not None else None,
            engine_mode=engine_mode,
            batch_rows=options.batch_rows,
        )
        if health is not None:
            outcome.analysis.health = health.tiers()
        if adaptive:
            from .stats.adaptive import fold_analysis

            folded = fold_analysis(
                database,
                outcome.analysis.plan,
                outcome.analysis.analysis,
                stats=outcome.stats,
            )
            if folded:
                # Mirror onto the instrumented run's own counters so
                # EXPLAIN ANALYZE output reports the folds it caused.
                outcome.analysis.stats.adaptive_corrections += folded
    return outcome


def run_dml_with_options(
    statement: Any,
    sql_text: str | None,
    database: Database,
    transaction: Any | None,
    *,
    params: dict | None = None,
    options: ExecutionOptions | None = None,
    stats: Stats | None = None,
) -> GuardedOutcome:
    """Execute one parsed DML statement under the options' budget.

    With *transaction* the writes buffer into it (visible to the
    transaction's own later statements, published only by its commit);
    without one the statement runs in an implicit single-statement
    transaction — begin, execute, commit — so autocommit DML is atomic
    and conflict-checked exactly like an explicit block.  The outcome's
    :attr:`~repro.resilience.guarded.GuardedOutcome.rowcount` carries
    the affected-row count; the result set is empty.
    """
    from .engine.dml import execute_dml

    options = options if options is not None else ExecutionOptions()
    stats = stats if stats is not None else Stats()
    if options.scan_ranges:
        raise ProtocolError("writes cannot run against a shard slice")
    timeout = options.timeout
    if options.deadline is not None:
        timeout = options.deadline.clamp_timeout(timeout)
    budget = (
        None
        if timeout is None and options.row_budget is None
        else ResourceBudget(timeout=timeout, row_budget=options.row_budget)
    )
    guard = budget.guard() if budget is not None else None
    if sql_text is None:
        sql_text = f"{type(statement).__name__.upper()} {statement.table}"
    own = transaction is None
    txn = database.begin() if own else transaction
    span_cm = (
        TRACER.span("dml.execute", stats=stats, sql=sql_text, xid=txn.xid)
        if TRACER.enabled
        else NULL_SPAN
    )
    try:
        with span_cm:
            count = execute_dml(
                statement,
                txn,
                params=params,
                stats=stats,
                guard=guard,
                engine_mode=options.engine_mode,
                batch_rows=options.batch_rows,
            )
            if own:
                txn.commit()
    except BaseException:
        if own:
            txn.rollback()  # no-op when the commit already aborted
        raise
    return GuardedOutcome(
        result=Result([], []),
        sql=sql_text,
        rewritten=False,
        rules=[],
        stats=stats,
        rowcount=count,
    )


def apply_transaction_control(
    statement: Any, host: Any, database: Database, stats: Stats | None = None
) -> GuardedOutcome:
    """Apply ``BEGIN``/``COMMIT``/``ROLLBACK`` to a transaction *host*.

    *host* is whatever owns the connection-scoped transaction — a local
    backend or a service session — and must expose a writable
    ``transaction`` attribute.  ``BEGIN`` inside an open transaction is
    an error (no nesting); ``COMMIT``/``ROLLBACK`` outside one are
    no-ops, so a DB-API ``commit()`` on a fresh connection is always
    safe.  The host's transaction slot is cleared *before* the commit
    is attempted: a failed commit (conflict, injected fault) leaves the
    session outside any transaction, with the aborted transaction's
    writes discarded.
    """
    stats = stats if stats is not None else Stats()

    def outcome(label: str) -> GuardedOutcome:
        return GuardedOutcome(
            result=Result([], []),
            sql=label,
            rewritten=False,
            rules=[],
            stats=stats,
        )

    if isinstance(statement, BeginTransaction):
        if getattr(host, "transaction", None) is not None:
            raise TransactionError(
                "a transaction is already open (nested BEGIN is not supported)"
            )
        host.transaction = database.begin()
        return outcome("BEGIN")
    txn = getattr(host, "transaction", None)
    if isinstance(statement, CommitTransaction):
        if txn is not None:
            host.transaction = None
            txn.commit()
        return outcome("COMMIT")
    if isinstance(statement, RollbackTransaction):
        if txn is not None:
            host.transaction = None
            txn.rollback()
        return outcome("ROLLBACK")
    raise ProtocolError(
        f"not a transaction-control statement: {type(statement).__name__}"
    )


def _stats_planner_options(
    planner_options: Any | None,
    database: Database,
    options: ExecutionOptions,
    adaptive: bool,
) -> Any:
    """Planner options carrying the statistics/adaptive flags.

    Also makes ``run --stats`` self-serve: a database without fresh
    statistics is ANALYZEd once here (single-flight, skipped for
    scan-range views — a per-shard slice is a per-execution object, so
    collecting on it would re-pay the pass every query; the estimator
    falls back instead and counts ``estimator_fallbacks``).
    """
    from dataclasses import replace

    from .engine.planner import PlannerOptions

    if options.scan_ranges is None and not getattr(
        database, "is_transaction_view", False
    ):
        # Transaction views are skipped for the same reason as shard
        # slices: they are per-transaction objects, so collecting on
        # them would re-pay the ANALYZE pass every statement.
        try:
            from .stats import ensure_statistics

            ensure_statistics(database)
        except Exception:
            pass  # fail-soft: estimator_for falls back and counts it
    if planner_options is None:
        return PlannerOptions(use_stats=True, adaptive=adaptive)
    return replace(planner_options, use_stats=True, adaptive=adaptive)


@dataclass
class ExecutedQuery:
    """The normalized record of one executed statement.

    Both backends produce this shape, so a :class:`Cursor` reads the
    same fields whether the query ran in-process or across the wire.

    Attributes:
        columns: output column names, in order.
        rows: the result rows as tuples (NULLs as the library's NULL
            sentinel, identical local and remote).
        sql: the SQL that produced the rows (rewritten form if a rule
            fired; the original after a safe-mode mismatch).
        rewritten / rules / mismatch: the rewrite trail.
        stats: non-zero execution counters.
        analysis: EXPLAIN ANALYZE plan dict when requested, else None.
        request_id: the server-assigned request id (remote only).
        outcome: the full :class:`GuardedOutcome` (local only).
        rowcount: rows affected by a DML statement, or the result-row
            count for reads (the DB-API cursor reports this value).
    """

    columns: list[str]
    rows: list[tuple]
    sql: str
    rewritten: bool = False
    rules: list[str] = field(default_factory=list)
    mismatch: bool = False
    stats: dict[str, Any] = field(default_factory=dict)
    analysis: dict[str, Any] | None = None
    request_id: str | None = None
    outcome: GuardedOutcome | None = None
    rowcount: int = -1


def executed_from_outcome(
    outcome: GuardedOutcome, request_id: str | None = None
) -> ExecutedQuery:
    """Fold a :class:`GuardedOutcome` into the normalized record."""
    return ExecutedQuery(
        columns=list(outcome.result.columns),
        rows=list(outcome.result.rows),
        sql=outcome.sql,
        rewritten=outcome.rewritten,
        rules=list(outcome.rules),
        mismatch=outcome.mismatch,
        stats={
            name: value
            for name, value in outcome.stats.as_dict().items()
            if value
        },
        analysis=(
            outcome.analysis.to_dict() if outcome.analysis is not None else None
        ),
        request_id=request_id,
        outcome=outcome,
        rowcount=(
            outcome.rowcount
            if outcome.rowcount >= 0
            else len(outcome.result.rows)
        ),
    )


class _LocalBackend:
    """Executes on an in-process :class:`Database` via the guarded core.

    Owns the connection's transaction state: SQL-level
    ``BEGIN``/``COMMIT``/``ROLLBACK`` flip :attr:`transaction`, and —
    with ``autocommit`` off — an implicit transaction opens lazily
    before the first statement, exactly the DB-API 2.0 posture.
    """

    remote = False

    def __init__(
        self, database: Database, plan_cache: PlanCache | None = None
    ) -> None:
        self.database = database
        self.plan_cache = plan_cache
        self.transaction = None

    def run(
        self, sql: str, params: dict | None, options: ExecutionOptions
    ) -> ExecutedQuery:
        statement = parse(sql) if isinstance(sql, str) else sql
        if isinstance(
            statement,
            (BeginTransaction, CommitTransaction, RollbackTransaction),
        ):
            return executed_from_outcome(
                apply_transaction_control(statement, self, self.database)
            )
        if self.transaction is None and not options.autocommit:
            self.transaction = self.database.begin()
        outcome = run_with_options(
            sql,
            self.database,
            params=params,
            options=options,
            plan_cache=self.plan_cache,
            transaction=self.transaction,
        )
        return executed_from_outcome(outcome)

    @property
    def in_transaction(self) -> bool:
        return self.transaction is not None

    def begin(self) -> None:
        apply_transaction_control(BeginTransaction(), self, self.database)

    def commit(self) -> None:
        apply_transaction_control(CommitTransaction(), self, self.database)

    def rollback(self) -> None:
        apply_transaction_control(RollbackTransaction(), self, self.database)

    def close(self) -> None:
        # An open transaction dies with the connection — rollback, the
        # only safe default for an abandoned handle.
        if self.transaction is not None:
            transaction, self.transaction = self.transaction, None
            transaction.rollback()

    def describe(self) -> str:
        return f"local database {self.database!r}"


class Cursor:
    """A DB-API-flavored cursor over one :class:`Connection`.

    ``execute`` returns the cursor itself, so the fluent spelling
    ``conn.cursor().execute(sql).fetchall()`` works; iteration yields
    the remaining unfetched rows.
    """

    def __init__(self, connection: "Connection") -> None:
        self.connection = connection
        self._executed: ExecutedQuery | None = None
        self._position = 0

    # -- execution ------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: dict | None = None,
        *,
        budget: ResourceBudget | None = _UNSET,  # type: ignore[assignment]
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        row_budget: int | None = _UNSET,  # type: ignore[assignment]
        safe_mode: bool = _UNSET,  # type: ignore[assignment]
        analyze: bool = _UNSET,  # type: ignore[assignment]
        optimize: bool = _UNSET,  # type: ignore[assignment]
        stats: bool = _UNSET,  # type: ignore[assignment]
        adaptive: bool = _UNSET,  # type: ignore[assignment]
        parallel: "ParallelOptions | int | None" = _UNSET,  # type: ignore[assignment]
        engine_mode: str | None = _UNSET,  # type: ignore[assignment]
        batch_rows: int | None = _UNSET,  # type: ignore[assignment]
        deadline: "Deadline | float | None" = _UNSET,  # type: ignore[assignment]
        priority: str = _UNSET,  # type: ignore[assignment]
        options: ExecutionOptions | None = None,
    ) -> "Cursor":
        """Execute *sql* with the connection's options plus overrides.

        Precedence: an explicit ``options=`` value replaces the
        connection defaults wholesale; individual keyword arguments are
        then layered on top of whichever base applies.  ``budget``
        expands to ``timeout``/``row_budget``; ``parallel`` accepts a
        plain worker count; ``deadline`` accepts seconds-from-now as
        shorthand for a :class:`~repro.resilience.deadline.Deadline`.
        """
        base = (
            options
            if options is not None
            else self.connection.default_options
        )
        resolved = _apply_overrides(
            base,
            budget=budget,
            timeout=timeout,
            row_budget=row_budget,
            safe_mode=safe_mode,
            analyze=analyze,
            optimize=optimize,
            stats=stats,
            adaptive=adaptive,
            parallel=parallel,
            engine_mode=engine_mode,
            batch_rows=batch_rows,
            deadline=deadline,
            priority=priority,
        )
        self._executed = self.connection._backend.run(sql, params, resolved)
        self._position = 0
        return self

    # -- DB-API style access --------------------------------------------

    @property
    def description(self) -> list[tuple] | None:
        """DB-API column descriptors (name plus six Nones) or None."""
        if self._executed is None:
            return None
        return [
            (name, None, None, None, None, None, None)
            for name in self._executed.columns
        ]

    @property
    def rowcount(self) -> int:
        """Rows affected by DML, rows returned by a read, or -1 before
        any execute (DB-API semantics)."""
        return -1 if self._executed is None else self._executed.rowcount

    def executemany(
        self,
        sql: str,
        seq_of_params: "Sequence[dict | None]",
        **kwargs: Any,
    ) -> "Cursor":
        """Execute *sql* once per parameter set (DB-API ``executemany``).

        After the call :attr:`rowcount` is the *sum* of the per-set
        affected rows and the fetchable result is the last execution's.
        The statements are not implicitly atomic — open a transaction
        (``autocommit = False`` or ``BEGIN``) to make the batch
        all-or-nothing.
        """
        total = 0
        last: ExecutedQuery | None = None
        for params in seq_of_params:
            self.execute(sql, params, **kwargs)
            assert self._executed is not None
            total += max(self._executed.rowcount, 0)
            last = self._executed
        if last is None:  # zero parameter sets: a completed empty batch
            last = ExecutedQuery(columns=[], rows=[], sql=sql)
        last.rowcount = total
        self._executed = last
        self._position = 0
        return self

    def fetchone(self) -> tuple | None:
        """The next row, or None when the result is exhausted."""
        rows = self._rows()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: int = 1) -> list[tuple]:
        """Up to *size* further rows."""
        rows = self._rows()
        chunk = rows[self._position : self._position + max(size, 0)]
        self._position += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple]:
        """Every remaining row."""
        rows = self._rows()
        chunk = rows[self._position :]
        self._position = len(rows)
        return chunk

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- result metadata ------------------------------------------------

    @property
    def columns(self) -> list[str]:
        """Output column names of the current result."""
        return [] if self._executed is None else list(self._executed.columns)

    @property
    def executed(self) -> ExecutedQuery:
        """The normalized record of the last execution."""
        if self._executed is None:
            raise ReproError("no query has been executed on this cursor")
        return self._executed

    @property
    def outcome(self) -> GuardedOutcome | None:
        """The full :class:`GuardedOutcome` (None on remote connections)."""
        return self.executed.outcome

    @property
    def analysis(self) -> dict[str, Any] | None:
        """EXPLAIN ANALYZE plan dict when ``analyze`` was requested."""
        return self.executed.analysis

    def close(self) -> None:
        """Forget the current result (cursors hold no server state)."""
        self._executed = None
        self._position = 0

    def _rows(self) -> list[tuple]:
        return self.executed.rows

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class Connection:
    """One handle on a query engine — in-process or across the wire.

    Attributes:
        default_options: the :class:`ExecutionOptions` every
            ``execute`` starts from (per-call overrides layer on top).
    """

    def __init__(
        self,
        backend: Any,
        default_options: ExecutionOptions | None = None,
    ) -> None:
        self._backend = backend
        self.default_options = (
            default_options if default_options is not None else ExecutionOptions()
        )
        self._closed = False

    # -- factories ------------------------------------------------------

    @classmethod
    def local(
        cls,
        database: Database,
        *,
        options: ExecutionOptions | None = None,
        plan_cache: PlanCache | None = None,
    ) -> "Connection":
        """A connection executing directly against *database*."""
        return cls(_LocalBackend(database, plan_cache), options)

    # -- properties -----------------------------------------------------

    @property
    def remote(self) -> bool:
        """Whether this connection crosses the network."""
        return bool(getattr(self._backend, "remote", False))

    @property
    def closed(self) -> bool:
        return self._closed

    # -- transactions ----------------------------------------------------

    @property
    def autocommit(self) -> bool:
        """Whether each statement commits on its own (default True).

        Set to False for the DB-API 2.0 posture: an implicit MVCC
        transaction opens before the next statement and stays open
        until :meth:`commit` or :meth:`rollback`.  Flipping the flag is
        only allowed outside an open transaction.
        """
        return self.default_options.autocommit

    @autocommit.setter
    def autocommit(self, value: bool) -> None:
        if self.in_transaction:
            raise TransactionError(
                "cannot change autocommit inside an open transaction; "
                "commit() or rollback() first"
            )
        self.default_options = replace(
            self.default_options, autocommit=bool(value)
        )

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit or implicit transaction is open."""
        return bool(getattr(self._backend, "in_transaction", False))

    def begin(self) -> None:
        """Open an explicit transaction (same as executing ``BEGIN``)."""
        self._check_open()
        self._backend.begin()

    def commit(self) -> None:
        """Publish the open transaction's writes; no-op without one.

        Raises the transaction's typed error —
        :class:`~repro.errors.WriteConflictError` or
        :class:`~repro.errors.UniquenessViolationError` — when a
        concurrent committer won; the transaction is then rolled back
        and the connection is back in autocommit-per-statement mode.
        """
        self._check_open()
        self._backend.commit()

    def rollback(self) -> None:
        """Discard the open transaction's writes; no-op without one."""
        self._check_open()
        self._backend.rollback()

    # -- execution ------------------------------------------------------

    def cursor(self) -> Cursor:
        """A fresh cursor on this connection."""
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str, params: dict | None = None, **kwargs: Any) -> Cursor:
        """Convenience: ``cursor().execute(...)`` in one call."""
        self._check_open()
        return self.cursor().execute(sql, params, **kwargs)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release the backend (idempotent)."""
        if not self._closed:
            self._backend.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # DB-API context semantics: a clean exit commits any open
        # transaction, an exception rolls it back; either way the
        # connection closes.  Pre-transaction call sites are unaffected
        # — without an open transaction both calls are no-ops.
        try:
            if not self._closed and self.in_transaction:
                if exc_type is None:
                    self.commit()
                else:
                    self.rollback()
        finally:
            self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else self._backend.describe()
        return f"Connection({state})"


def connect(
    source: "Database | str",
    *,
    options: ExecutionOptions | None = None,
    plan_cache: PlanCache | None = None,
    **kwargs: Any,
) -> Connection:
    """Open a :class:`Connection` — the single documented entrypoint.

    *source* selects the backend:

    * a :class:`~repro.engine.database.Database` — execute in-process;
    * an ``http://`` or ``https://`` URL — talk to a
      :mod:`repro.net` server (extra keyword arguments such as
      ``retry_policy`` and ``default_session`` are forwarded to
      :func:`repro.net.client.connect`);
    * any other string — a path to a SQL script of CREATE TABLE /
      INSERT statements the database is built from.

    The returned object behaves identically either way: rewrite wins,
    budgets, safe mode, and EXPLAIN ANALYZE all flow through the same
    :class:`~repro.options.ExecutionOptions`.
    """
    if isinstance(source, Database):
        if kwargs:
            raise TypeError(
                f"unexpected arguments for a local connection: "
                f"{', '.join(sorted(kwargs))}"
            )
        return Connection.local(
            source, options=options, plan_cache=plan_cache
        )
    if isinstance(source, str):
        if source.startswith(("http://", "https://")):
            from .net.client import connect as http_connect

            return http_connect(source, options=options, **kwargs)
        if kwargs:
            raise TypeError(
                f"unexpected arguments for a local connection: "
                f"{', '.join(sorted(kwargs))}"
            )
        with open(source, encoding="utf-8") as handle:
            database = Database.from_script(handle.read())
        return Connection.local(
            database, options=options, plan_cache=plan_cache
        )
    raise ProtocolError(
        f"cannot connect to {type(source).__name__!r}: expected a Database, "
        f"a script path, or an http(s) URL"
    )


def _apply_overrides(
    base: ExecutionOptions,
    *,
    budget: Any = _UNSET,
    timeout: Any = _UNSET,
    row_budget: Any = _UNSET,
    safe_mode: Any = _UNSET,
    analyze: Any = _UNSET,
    optimize: Any = _UNSET,
    stats: Any = _UNSET,
    adaptive: Any = _UNSET,
    parallel: Any = _UNSET,
    engine_mode: Any = _UNSET,
    batch_rows: Any = _UNSET,
    deadline: Any = _UNSET,
    priority: Any = _UNSET,
) -> ExecutionOptions:
    """Layer explicitly-passed keyword overrides onto *base*."""
    values: dict[str, Any] = {
        "timeout": base.timeout,
        "row_budget": base.row_budget,
        "safe_mode": base.safe_mode,
        "analyze": base.analyze,
        "optimize": base.optimize,
        "stats": base.stats,
        "adaptive": base.adaptive,
        "parallel": base.parallel,
        "engine_mode": base.engine_mode,
        "batch_rows": base.batch_rows,
        "deadline": base.deadline,
        "priority": base.priority,
        "scan_ranges": base.scan_ranges,
        "autocommit": base.autocommit,
    }
    if budget is not _UNSET and budget is not None:
        if not isinstance(budget, ResourceBudget):
            raise TypeError("budget must be a ResourceBudget")
        values["timeout"] = budget.timeout
        values["row_budget"] = budget.row_budget
    if timeout is not _UNSET:
        values["timeout"] = timeout
    if row_budget is not _UNSET:
        values["row_budget"] = row_budget
    if safe_mode is not _UNSET:
        values["safe_mode"] = bool(safe_mode)
    if analyze is not _UNSET:
        values["analyze"] = bool(analyze)
    if optimize is not _UNSET:
        values["optimize"] = bool(optimize)
    if stats is not _UNSET:
        values["stats"] = bool(stats)
    if adaptive is not _UNSET:
        values["adaptive"] = bool(adaptive)
    if parallel is not _UNSET:
        if isinstance(parallel, int) and not isinstance(parallel, bool):
            parallel = (
                ParallelOptions(workers=parallel) if parallel > 1 else None
            )
        values["parallel"] = parallel
    if engine_mode is not _UNSET:
        values["engine_mode"] = engine_mode
    if batch_rows is not _UNSET:
        values["batch_rows"] = batch_rows
    if deadline is not _UNSET:
        if isinstance(deadline, (int, float)) and not isinstance(deadline, bool):
            deadline = Deadline.after(float(deadline))
        values["deadline"] = deadline
    if priority is not _UNSET:
        values["priority"] = priority
    return ExecutionOptions(**values)


def deprecated_entrypoint(name: str, replacement: str, target: Any) -> Any:
    """Wrap a legacy entrypoint so calls warn but still work.

    The shim preserves the target's signature and behavior exactly; the
    :class:`DeprecationWarning` names the facade spelling to migrate to.
    The un-shimmed function stays importable from its home module for
    internal callers.
    """

    @functools.wraps(target)
    def shim(*args: Any, **kwargs: Any) -> Any:
        warnings.warn(
            f"repro.{name}() is deprecated; use {replacement} "
            f"(see repro.connect / repro.api.Connection)",
            DeprecationWarning,
            stacklevel=2,
        )
        return target(*args, **kwargs)

    shim.__doc__ = (
        f"Deprecated alias of :func:`{target.__module__}.{target.__name__}`;"
        f" use {replacement} instead.\n\n{target.__doc__ or ''}"
    )
    return shim


__all__ = [
    "Connection",
    "Cursor",
    "ExecutedQuery",
    "ExecutionOptions",
    "apply_transaction_control",
    "connect",
    "deprecated_entrypoint",
    "executed_from_outcome",
    "run_dml_with_options",
    "run_with_options",
]
