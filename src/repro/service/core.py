"""The embeddable concurrent query service.

:class:`QueryService` owns a pool of worker threads draining a bounded
admission queue.  Callers interact through
:class:`~repro.service.Session` handles and :class:`QueryTicket`
futures; every query executes through
:func:`~repro.resilience.guarded.run_guarded`, so the service inherits
the whole resilience stack — budgets, safe-mode verification, typed
errors — without new execution code.

Concurrency design (the full locking order lives in DESIGN.md §3e):

* The **admission queue** is a bounded :class:`queue.Queue`; its
  internal lock is independent of every other lock in the process.
  ``submit(..., wait=True)`` blocks when the queue is full — that *is*
  the backpressure — while ``wait=False`` turns a full queue into a
  :class:`~repro.errors.ServiceOverloadedError` for callers that would
  rather shed load than stall.
* **Workers never hold a lock while executing a query.**  All shared
  structures a query touches (plan cache, memo caches, fault injector,
  metrics, tracer, per-table index builds) are individually
  thread-safe leaf locks, so no lock ordering between them can arise.
* **Morsel parallelism uses a separate pool.**  Query workers dispatch
  row-range morsels to :func:`repro.engine.parallel.shared_pool`, never
  to each other — a query worker waiting on its own pool for morsel
  slots would be a deadlock by construction.
"""

from __future__ import annotations

import queue
import threading
import time

from ..api import apply_transaction_control, run_with_options
from ..sql.ast import (
    BeginTransaction,
    CommitTransaction,
    RollbackTransaction,
)
from ..sql.parser import parse
from ..engine.database import Database
from ..engine.parallel import (
    ParallelExecution,
    ParallelOptions,
    parallel_execution,
)
from ..engine.plan_cache import GLOBAL_PLAN_CACHE, PlanCache
from ..engine.planner import PlannerOptions
from ..engine.stats import Stats
from ..errors import (
    QueryCancelled,
    ServiceOverloadedError,
    ServiceShutdownError,
    TicketWaitTimeout,
)
from ..observe.metrics import MetricsRegistry
from ..observe.trace import NULL_SPAN, TRACER
from ..options import ExecutionOptions
from ..resilience.admission import AdmissionController, SheddingPolicy
from ..resilience.budgets import ExecutionGuard, ResourceBudget
from ..resilience.guarded import GuardedOutcome
from ..resilience.health import HealthPolicy, HealthTracker
from .session import Session


class QueryTicket:
    """A future for one submitted query.

    Workers complete the ticket exactly once; :meth:`result` blocks
    until then and either returns the
    :class:`~repro.resilience.guarded.GuardedOutcome` or re-raises the
    error the execution died with (budget violations, SQL errors, and
    shutdown all surface as their original typed exceptions).
    """

    __slots__ = (
        "sql",
        "session_name",
        "request_id",
        "_event",
        "_outcome",
        "_error",
        "_cancel_lock",
        "_guard",
        "_cancelled",
        "_cancel_reason",
    )

    def __init__(
        self, sql: str, session_name: str, request_id: str | None = None
    ) -> None:
        self.sql = sql
        self.session_name = session_name
        self.request_id = request_id
        self._event = threading.Event()
        self._outcome: GuardedOutcome | None = None
        self._error: BaseException | None = None
        self._cancel_lock = threading.Lock()  # leaf: guard attach vs cancel
        self._guard: ExecutionGuard | None = None
        self._cancelled = False
        self._cancel_reason = ""

    def done(self) -> bool:
        """Whether the query has finished (successfully or not)."""
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called (the query may still
        run to completion if it was already past its last checkpoint)."""
        return self._cancelled

    def cancel(self, reason: str = "") -> None:
        """Abandon the query: stop it consuming worker time.

        Safe from any thread at any point in the ticket's life.  A
        still-queued query is dropped by the worker without executing;
        a running query is cooperatively cancelled through its
        :class:`~repro.resilience.budgets.ExecutionGuard` and fails with
        :class:`~repro.errors.QueryCancelled` at its next tick; a
        finished query is unaffected.  This is how the HTTP front end
        stops an abandoned wait (client gave up, deadline expired) from
        burning a worker on an answer nobody will read.
        """
        with self._cancel_lock:
            self._cancelled = True
            self._cancel_reason = reason
            guard = self._guard
        if guard is not None:
            guard.cancel(reason)

    def _attach_guard(self, guard: ExecutionGuard) -> None:
        """Worker-side: connect the live execution's guard, honouring a
        cancellation that raced ahead of the attach."""
        with self._cancel_lock:
            self._guard = guard
            cancelled, reason = self._cancelled, self._cancel_reason
        if cancelled:
            guard.cancel(reason)

    def result(self, timeout: float | None = None) -> GuardedOutcome:
        """Block for the outcome; re-raise the query's error if it failed.

        An expired wait raises :class:`~repro.errors.TicketWaitTimeout`
        — the *wait* timed out, not necessarily the query, which may
        still be queued or running.  (The class also subclasses
        :class:`TimeoutError` for pre-existing handlers.)
        """
        if not self._event.wait(timeout):
            raise TicketWaitTimeout(timeout, self.sql)
        if self._error is not None:
            raise self._error
        assert self._outcome is not None
        return self._outcome

    # -- completion (worker side) ---------------------------------------

    def _complete(self, outcome: GuardedOutcome) -> None:
        self._outcome = outcome
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


#: Queue items are (session, ticket, sql, params, options, enqueued_at);
#: None is the shutdown sentinel (one per worker, enqueued after all
#: pending work).
_WorkItem = tuple


class QueryService:
    """An embeddable, thread-pooled SQL query service.

    Usage::

        with QueryService(workers=4) as service:
            session = service.session(database)
            tickets = session.submit_many(["SELECT ...", "SELECT ..."])
            results = [t.result() for t in tickets]

    Args:
        workers: query worker threads draining the admission queue.
        queue_depth: bound on queries admitted but not yet running;
            a full queue blocks ``submit`` (or raises with
            ``wait=False``) — the backpressure contract.
        parallel: optional
            :class:`~repro.engine.parallel.ParallelOptions` enabling
            partition-parallel operators *within* each query, on a
            morsel pool separate from the query workers.
        plan_cache: plan cache shared by every session (the process
            global by default).  Safe across sessions: keys include the
            database fingerprint.
        metrics: registry the service folds per-query outcomes into
            (a private registry by default; pass
            :data:`~repro.observe.metrics.PROCESS_METRICS` to publish).
        shedding: adaptive admission tuning (a
            :class:`~repro.resilience.admission.SheddingPolicy`); batch
            queries are shed once predicted queue wait approaches
            typical deadlines, long before the hard queue bound.
        health_policy: error-budget tuning for the service's private
            :class:`~repro.resilience.health.HealthTracker` — the
            degradation ladder that converts repeated subsystem
            fallbacks into sticky demotions with timed probation.
    """

    def __init__(
        self,
        workers: int = 2,
        queue_depth: int = 64,
        *,
        parallel: ParallelOptions | ParallelExecution | None = None,
        plan_cache: PlanCache | None = None,
        metrics: MetricsRegistry | None = None,
        shedding: SheddingPolicy | None = None,
        health_policy: HealthPolicy | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self.workers = workers
        self.queue_depth = queue_depth
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._plan_cache = (
            plan_cache if plan_cache is not None else GLOBAL_PLAN_CACHE
        )
        self._parallel = parallel_execution(parallel)
        # Service-scoped on purpose: a chaos test demoting subsystems on
        # one service must never poison another service (or the tests
        # that run after it), so neither tracker is a process global.
        self.admission = AdmissionController(shedding)
        self.health = HealthTracker(health_policy, metrics=self.metrics)
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._shutdown = threading.Event()
        self._state_lock = threading.Lock()  # leaf: session naming, shutdown
        self._session_count = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-query-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- sessions -------------------------------------------------------

    def session(
        self,
        database: Database,
        *,
        name: str | None = None,
        budget: ResourceBudget | None = None,
        planner_options: PlannerOptions | None = None,
        safe_mode: bool = False,
        options: ExecutionOptions | None = None,
    ) -> Session:
        """Open a session binding *database* and its execution settings.

        *options* sets the session's default
        :class:`~repro.options.ExecutionOptions` directly; the legacy
        ``budget``/``safe_mode`` arguments remain as shorthand and are
        folded into an options value when *options* is not given.
        """
        if self._shutdown.is_set():
            raise ServiceShutdownError()
        with self._state_lock:
            self._session_count += 1
            if name is None:
                name = f"session-{self._session_count}"
        return Session(
            self,
            database,
            name,
            budget=budget,
            planner_options=planner_options,
            safe_mode=safe_mode,
            options=options,
        )

    # -- submission -----------------------------------------------------

    def submit(
        self,
        session: Session,
        sql: str,
        params: dict | None = None,
        *,
        wait: bool = True,
        options: ExecutionOptions | None = None,
        request_id: str | None = None,
    ) -> QueryTicket:
        """Enqueue one query; returns a :class:`QueryTicket` immediately.

        With ``wait=True`` (default) a full admission queue blocks the
        caller until a slot frees — backpressure.  With ``wait=False`` a
        full queue raises :class:`~repro.errors.ServiceOverloadedError`
        instead, so load-shedding callers get a typed signal.

        *options* layers per-query
        :class:`~repro.options.ExecutionOptions` over the session's
        defaults (non-default fields win).  *request_id* tags the
        ticket and the worker's trace span — the HTTP front end passes
        the caller's ``X-Request-Id`` through here.

        Admission order (each gate rejects before any work is queued):
        shutdown → expired deadline
        (:class:`~repro.errors.DeadlineExpiredError` — the budget is
        already gone, so executing would waste a worker on a dead
        answer) → adaptive shedding
        (:class:`~repro.errors.LoadShedError` for batch traffic when
        predicted queue wait approaches typical deadlines) → the hard
        queue bound.
        """
        if self._shutdown.is_set():
            raise ServiceShutdownError()
        effective = session.options.merged(options)
        if effective.deadline is not None:
            remaining = effective.deadline.remaining()
            if remaining <= 0:
                self.metrics.inc(
                    "service_deadline_rejected_total", session=session.name
                )
                effective.deadline.check()  # raises DeadlineExpiredError
            self.admission.observe_deadline(remaining)
        try:
            self.admission.admit(
                effective.priority, self._queue.qsize(), self.queue_depth
            )
        except ServiceOverloadedError:
            self.metrics.inc(
                "service_shed_total", priority=effective.priority
            )
            raise
        ticket = QueryTicket(sql, session.name, request_id)
        item = (session, ticket, sql, params, options, time.monotonic())
        if wait:
            self._queue.put(item)
        else:
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self.metrics.inc("service_rejected_total")
                raise ServiceOverloadedError(self.queue_depth) from None
        self.metrics.inc("service_submitted_total", session=session.name)
        return ticket

    def submit_many(
        self,
        session: Session,
        queries: list[str | tuple[str, dict | None]],
    ) -> list[QueryTicket]:
        """Enqueue a batch; returns one ticket per query, in order.

        Each entry is either SQL text or a ``(sql, params)`` pair.
        Submission applies backpressure per query (``wait=True``), so a
        batch larger than the queue depth simply trickles in as workers
        drain it.
        """
        tickets = []
        for entry in queries:
            if isinstance(entry, tuple):
                sql, params = entry
            else:
                sql, params = entry, None
            tickets.append(self.submit(session, sql, params))
        return tickets

    # -- lifecycle ------------------------------------------------------

    def shutdown(self, wait: bool = True, *, cancel_queued: bool = False) -> None:
        """Stop accepting work, drain pending queries, stop the workers.

        With ``cancel_queued=False`` (default) queries already admitted
        still execute before the workers exit.  With
        ``cancel_queued=True`` — the graceful-drain contract the HTTP
        server uses on SIGTERM — only queries already *running* finish;
        everything still queued fails immediately with
        :class:`~repro.errors.ServiceShutdownError` (HTTP 503, which is
        retryable) so a full queue cannot stretch the drain window.
        Either way no ticket is stranded: every admitted query ends
        completed, failed, or drained, and the
        ``service_drained_total`` counter accounts the drained ones.
        Idempotent.
        """
        with self._state_lock:
            if self._shutdown.is_set():
                return
            self._shutdown.set()
        if cancel_queued:
            self._fail_stranded()
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()
            self._fail_stranded()

    def _fail_stranded(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is None:
                continue
            ticket = item[1]
            self.metrics.inc(
                "service_drained_total", session=ticket.session_name
            )
            ticket._fail(ServiceShutdownError())

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown(wait=True)
        return False

    # -- worker loop ----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            session, ticket, sql, params, options, enqueued_at = item
            # The observed queue wait is the shedding controller's
            # ground truth — and the slice of the client's deadline the
            # queue already spent.
            waited = time.monotonic() - enqueued_at
            self.admission.observe_wait(waited)
            effective = session.options.merged(options)
            if ticket.cancelled:
                # The caller abandoned the wait while we were queued:
                # don't burn a worker on an answer nobody will read.
                self.metrics.inc(
                    "service_abandoned_total", session=session.name
                )
                ticket._fail(QueryCancelled(ticket._cancel_reason))
                continue
            if effective.deadline is not None:
                try:
                    # Queue wait spent the budget: reject with zero
                    # work, annotated with where the time went.
                    effective.deadline.check(waited=waited)
                except BaseException as error:
                    self.metrics.inc(
                        "service_deadline_expired_total", session=session.name
                    )
                    self.metrics.inc(
                        "service_failed_total",
                        session=session.name,
                        error=type(error).__name__,
                    )
                    session._record(Stats(), failed=True)
                    ticket._fail(error)
                    continue
            stats = Stats()
            # Request-id propagation: the span carries the id the HTTP
            # layer (or any submitter) attached, so one request can be
            # followed socket -> queue -> worker in the trace tree.
            span_cm = (
                TRACER.span(
                    "service.query",
                    stats=stats,
                    session=session.name,
                    **(
                        {"request_id": ticket.request_id}
                        if ticket.request_id
                        else {}
                    ),
                )
                if TRACER.enabled
                else NULL_SPAN
            )
            # Session-scoped transaction control: BEGIN/COMMIT/ROLLBACK
            # flip the session's transaction; everything else executes
            # inside it while it is open.  Parse failures fall through
            # so run_with_options raises the same typed error it always
            # did.
            control = None
            try:
                candidate = parse(sql)
            except Exception:
                candidate = None
            if isinstance(
                candidate,
                (BeginTransaction, CommitTransaction, RollbackTransaction),
            ):
                control = candidate
            try:
                with span_cm:
                    if control is not None:
                        outcome = apply_transaction_control(
                            control, session, session.database, stats
                        )
                    else:
                        outcome = run_with_options(
                            sql,
                            session.database,
                            params=params,
                            options=effective,
                            stats=stats,
                            planner_options=session.planner_options,
                            plan_cache=self._plan_cache,
                            parallel=self._parallel,
                            health=self.health,
                            on_guard=ticket._attach_guard,
                            transaction=session.transaction,
                        )
            except BaseException as error:
                session._record(stats, failed=True)
                self.metrics.inc(
                    "service_failed_total",
                    session=session.name,
                    error=type(error).__name__,
                )
                ticket._fail(error)
            else:
                session._record(outcome.stats, failed=False)
                self.metrics.inc(
                    "service_completed_total", session=session.name
                )
                self.metrics.record_outcome(outcome)
                ticket._complete(outcome)
