"""Per-session state for the embedded query service.

A :class:`Session` binds one database handle to the execution settings
its queries run under — budget, planner options, safe mode — plus the
accumulation sinks that must stay isolated between tenants: a private
:class:`~repro.engine.stats.Stats` total and a per-session metrics
label.  Two sessions of the same service can point at *different*
databases; the plan cache keys on the database fingerprint, so their
entries can never be confused, and their counters never mix because
each query executes with a fresh ``Stats`` folded into its session's
total by the worker that ran it.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from ..engine.database import Database
from ..engine.planner import PlannerOptions
from ..engine.stats import Stats
from ..options import ExecutionOptions
from ..resilience.budgets import ResourceBudget

if TYPE_CHECKING:  # pragma: no cover
    from .core import QueryService, QueryTicket


class Session:
    """One tenant's handle on a :class:`~repro.service.QueryService`.

    Sessions are cheap: they hold no threads and no queue of their own,
    only the database handle, the per-query execution settings, and the
    session-scoped accumulators.  Create them via
    :meth:`QueryService.session`, then :meth:`submit` queries; results
    arrive through :class:`~repro.service.QueryTicket` handles.

    Attributes:
        name: the session's metrics label (unique per service).
        database: the database every query of this session runs against.
        options: the session's default
            :class:`~repro.options.ExecutionOptions`; per-query options
            passed to ``submit`` layer on top of these.
        planner_options: physical-planning knobs for this session.
        stats: accumulated counters over every completed query.
        queries_completed / queries_failed: session-scoped outcomes.

    ``budget`` and ``safe_mode`` remain readable as properties derived
    from :attr:`options`, so pre-facade callers keep working.
    """

    def __init__(
        self,
        service: "QueryService",
        database: Database,
        name: str,
        budget: ResourceBudget | None = None,
        planner_options: PlannerOptions | None = None,
        safe_mode: bool = False,
        options: ExecutionOptions | None = None,
    ) -> None:
        self._service = service
        self.database = database
        self.name = name
        self.options = (
            options
            if options is not None
            else ExecutionOptions.create(budget=budget, safe_mode=safe_mode)
        )
        self.planner_options = planner_options
        self.stats = Stats()
        self.queries_completed = 0
        self.queries_failed = 0
        #: The session's open MVCC transaction, or None.  Set by the
        #: worker executing this session's ``BEGIN`` and cleared by its
        #: ``COMMIT``/``ROLLBACK``; while open, every statement of the
        #: session reads the pinned snapshot and buffers its writes.
        #: Transactional sessions must serialize their submissions
        #: (submit, wait, submit) — the protocol the HTTP client
        #: follows — since two workers racing on one session's
        #: transaction state would interleave unpredictably.
        self.transaction = None
        # Leaf lock: guards the accumulators only; never held while
        # executing a query or touching the service.
        self._lock = threading.Lock()

    # -- legacy views over the options value ----------------------------

    @property
    def budget(self) -> ResourceBudget | None:
        """The per-query budget the session's options imply."""
        return self.options.budget()

    @property
    def safe_mode(self) -> bool:
        """Whether queries default to safe-mode cross-checking."""
        return self.options.safe_mode

    # -- submission convenience ----------------------------------------

    def submit(
        self,
        sql: str,
        params: dict | None = None,
        *,
        wait: bool = True,
        options: ExecutionOptions | None = None,
        request_id: str | None = None,
    ) -> "QueryTicket":
        """Enqueue one query on the owning service.  See
        :meth:`QueryService.submit`."""
        return self._service.submit(
            self, sql, params, wait=wait, options=options, request_id=request_id
        )

    def submit_many(
        self, queries: list[str | tuple[str, dict | None]]
    ) -> list["QueryTicket"]:
        """Enqueue a batch on the owning service.  See
        :meth:`QueryService.submit_many`."""
        return self._service.submit_many(self, queries)

    # -- accounting (called by service workers) ------------------------

    def _record(self, stats: Stats | None, failed: bool) -> None:
        """Fold one finished query into the session's totals."""
        with self._lock:
            if failed:
                self.queries_failed += 1
            else:
                self.queries_completed += 1
            if stats is not None:
                self.stats = self.stats + stats

    def snapshot(self) -> dict:
        """A consistent view of the session's accumulated outcomes."""
        with self._lock:
            return {
                "name": self.name,
                "completed": self.queries_completed,
                "failed": self.queries_failed,
                "stats": self.stats.snapshot(),
            }
