"""Embeddable concurrent query service.

The service layer turns the library into a multi-tenant query server
inside one process: a :class:`QueryService` owns worker threads and a
bounded admission queue; each tenant opens a :class:`Session` (its own
database handle, budget, and counters); every submitted query comes
back as a :class:`QueryTicket` future resolving to a
:class:`~repro.resilience.guarded.GuardedOutcome`.

See ``docs/architecture.md`` for where this layer sits in the stack and
``DESIGN.md`` §3e for the concurrency contract it relies on.
"""

from .core import QueryService, QueryTicket
from .session import Session

__all__ = ["QueryService", "QueryTicket", "Session"]
