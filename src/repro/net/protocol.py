"""The HTTP+JSON query protocol: schemas, value codec, error mapping.

The contract both ends share:

* **Values.**  SQL values are JSON scalars; the NULL sentinel crosses
  the wire as JSON ``null`` and is restored on receipt, so a row that
  travelled the socket compares ``≐``-identical to one produced
  in-process.  Rows are JSON arrays, restored to tuples.
* **Requests.**  ``POST /v1/query`` carries ``{"sql": ..., "params":
  {...}, "session": ..., "options": {...}, "stream": bool,
  "wait_timeout": seconds}`` where ``options`` is the wire form of
  :class:`~repro.options.ExecutionOptions` — the same frozen value the
  local facade and the service use.
* **Errors.**  Failures travel as an *envelope* ``{"error": {"type",
  "message", "status", "retryable", "retry_after"?}}``; the status code
  comes from the errors-taxonomy table below (subclass-first, like the
  CLI exit codes).  A client must retry only when ``retryable`` is true
  (429 backpressure, 503 drain/transient faults) and must honour
  ``Retry-After``.  Write conflicts — a candidate key taken or a
  write-write race lost to a concurrent committer — are ``409
  Conflict`` and never transport-retryable.
* **Streaming.**  With ``"stream": true`` the response is NDJSON
  (``application/x-ndjson``): a header object, ``{"rows": [...]}``
  chunk objects flushed incrementally, and a final
  ``{"end": true, ...}`` summary — or ``{"error": envelope}`` if the
  query dies mid-stream, so a truncated result is never mistaken for a
  complete one.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from ..errors import (
    CatalogError,
    DeadlineExpiredError,
    ExecutionError,
    InjectedFaultError,
    NetworkError,
    ProtocolError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    RewriteMismatchError,
    RowBudgetExceeded,
    ServiceOverloadedError,
    ServiceShutdownError,
    SqlError,
    TicketWaitTimeout,
    TransientImsError,
    UniquenessViolationError,
    UnsupportedQueryError,
    WriteConflictError,
)
from ..resilience.admission import PRIORITY_HEADER
from ..resilience.deadline import DEADLINE_HEADER
from ..types.values import NULL

#: Content types both ends agree on.
CONTENT_JSON = "application/json"
CONTENT_NDJSON = "application/x-ndjson"

#: Header carrying the request id end to end.
REQUEST_ID_HEADER = "X-Request-Id"

#: Errors taxonomy → HTTP status, matched subclass-first (mirrors the
#: CLI exit-code table in :mod:`repro.cli`).  429/503 are the two
#: retryable families: backpressure and drain/transient infrastructure.
ERROR_STATUS: list[tuple[type[BaseException], int]] = [
    (ServiceOverloadedError, 429),  # includes LoadShedError (shedding)
    (ServiceShutdownError, 503),
    (TicketWaitTimeout, 408),
    (DeadlineExpiredError, 504),  # budget gone before execution began
    (QueryTimeout, 504),
    (RowBudgetExceeded, 413),
    (QueryCancelled, 503),
    (TransientImsError, 503),
    (InjectedFaultError, 503),
    (RewriteMismatchError, 500),
    # Write conflicts: the request was well-formed but lost to a
    # concurrent committer.  409 is deliberately NOT retryable at the
    # transport level — blindly replaying a conflicting write is a
    # correctness decision only the application can make.
    (UniquenessViolationError, 409),
    (WriteConflictError, 409),
    (ProtocolError, 400),
    (NetworkError, 502),
    (SqlError, 400),
    (CatalogError, 400),
    (UnsupportedQueryError, 400),
    (ExecutionError, 400),
]

#: Default Retry-After (seconds) attached to retryable statuses.
ERROR_RETRY_AFTER = 1.0

#: Ceiling on the advertised Retry-After, whatever the error reports.
#: A shedding controller under a pathological spike can predict queue
#: waits far beyond anything a client should sleep on one attempt.
ERROR_RETRY_AFTER_CAP = 5.0

#: Statuses a client may retry (with the envelope's ``retryable`` flag
#: as the authoritative signal when an envelope is present).
RETRYABLE_STATUSES = frozenset({429, 503})


def status_for_error(error: BaseException) -> int:
    """The HTTP status for *error*: taxonomy first, 400 for other
    library errors (the request was unprocessable), 500 otherwise."""
    for cls, status in ERROR_STATUS:
        if isinstance(error, cls):
            return status
    if isinstance(error, ReproError):
        return 400
    return 500


def retry_after_for_error(error: BaseException) -> float:
    """The Retry-After hint (seconds) to advertise for *error*.

    A :class:`~repro.errors.LoadShedError` carries the admission
    controller's own queue-delay prediction — the single best estimate
    of when retrying will actually succeed — so that is what the 429
    advertises (capped; a pathological spike can predict waits no
    client should sleep through in one attempt).  Everything else gets
    the fixed default.
    """
    predicted = getattr(error, "predicted_wait", None)
    if isinstance(predicted, (int, float)) and predicted > 0:
        return round(min(float(predicted), ERROR_RETRY_AFTER_CAP), 3)
    return ERROR_RETRY_AFTER


def error_envelope(
    error: BaseException, request_id: str | None = None
) -> tuple[int, dict[str, Any]]:
    """``(status, envelope_dict)`` for one failure."""
    status = status_for_error(error)
    body: dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
        "status": status,
        "retryable": status in RETRYABLE_STATUSES,
    }
    if status in RETRYABLE_STATUSES:
        body["retry_after"] = retry_after_for_error(error)
    if request_id:
        body["request_id"] = request_id
    return status, {"error": body}


# ---------------------------------------------------------------------------
# value codec


def encode_value(value: Any) -> Any:
    """One SQL value → its JSON form (NULL → ``null``)."""
    return None if value is NULL else value


def decode_value(value: Any) -> Any:
    """One JSON value → its SQL form (``null`` → NULL)."""
    return NULL if value is None else value


def encode_rows(rows: Iterable[tuple]) -> list[list[Any]]:
    """Result rows → JSON arrays."""
    return [[encode_value(value) for value in row] for row in rows]


def decode_rows(rows: Iterable[Iterable[Any]]) -> list[tuple]:
    """JSON arrays → result rows (tuples, NULLs restored)."""
    return [tuple(decode_value(value) for value in row) for row in rows]


def encode_params(params: Mapping[str, Any] | None) -> dict[str, Any] | None:
    """Host-variable bindings → their JSON form."""
    if params is None:
        return None
    return {name: encode_value(value) for name, value in params.items()}


def decode_params(params: Any) -> dict[str, Any] | None:
    """JSON host-variable bindings → SQL values, validated."""
    if params is None:
        return None
    if not isinstance(params, Mapping):
        raise ProtocolError("params must be a JSON object")
    decoded: dict[str, Any] = {}
    for name, value in params.items():
        if not isinstance(name, str):
            raise ProtocolError("param names must be strings")
        if value is not None and not isinstance(value, (int, float, str)):
            raise ProtocolError(
                f"param {name!r} must be a scalar or null"
            )
        decoded[name] = decode_value(value)
    return decoded


# ---------------------------------------------------------------------------
# request parsing (server side)


def parse_json(raw: bytes) -> dict[str, Any]:
    """Decode a request body; malformed JSON is a typed 400."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"malformed JSON body: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    return payload


def parse_query_request(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Validate a ``/v1/query`` body into its typed pieces.

    Returns a dict with keys ``sql``, ``params``, ``session``,
    ``options`` (an :class:`~repro.options.ExecutionOptions`),
    ``stream``, and ``wait_timeout``.
    """
    from ..options import ExecutionOptions

    known = {"sql", "params", "session", "options", "stream", "wait_timeout"}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(
            f"unknown request field(s): {', '.join(sorted(unknown))}"
        )
    sql = payload.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        raise ProtocolError("field 'sql' must be a non-empty string")
    session = payload.get("session")
    if session is not None and not isinstance(session, str):
        raise ProtocolError("field 'session' must be a string")
    stream = payload.get("stream", False)
    if not isinstance(stream, bool):
        raise ProtocolError("field 'stream' must be a boolean")
    wait_timeout = payload.get("wait_timeout")
    if wait_timeout is not None and (
        not isinstance(wait_timeout, (int, float))
        or isinstance(wait_timeout, bool)
        or wait_timeout <= 0
    ):
        raise ProtocolError("field 'wait_timeout' must be a positive number")
    return {
        "sql": sql,
        "params": decode_params(payload.get("params")),
        "session": session,
        "options": ExecutionOptions.from_wire(payload.get("options")),
        "stream": stream,
        "wait_timeout": float(wait_timeout) if wait_timeout else None,
    }


# ---------------------------------------------------------------------------
# response building (server side) / parsing (client side)


def query_response(executed: Any) -> dict[str, Any]:
    """The non-streamed ``/v1/query`` response body for an
    :class:`~repro.api.ExecutedQuery`."""
    body: dict[str, Any] = {
        "request_id": executed.request_id,
        "columns": list(executed.columns),
        "rows": encode_rows(executed.rows),
        "row_count": len(executed.rows),
        "rowcount": executed.rowcount,
        "final_sql": executed.sql,
        "rewritten": executed.rewritten,
        "rules": list(executed.rules),
        "mismatch": executed.mismatch,
        "stats": dict(executed.stats),
    }
    if executed.analysis is not None:
        body["analysis"] = executed.analysis
    return body


def stream_header(executed: Any) -> dict[str, Any]:
    """First NDJSON line: everything known before the rows."""
    body = query_response(executed)
    del body["rows"]
    del body["row_count"]
    return body


def stream_chunk(rows: list[tuple]) -> dict[str, Any]:
    """One NDJSON rows chunk."""
    return {"rows": encode_rows(rows)}


def stream_footer(executed: Any) -> dict[str, Any]:
    """Final NDJSON line: the row count seals the stream as complete."""
    return {"end": True, "row_count": len(executed.rows)}


def parse_query_response(payload: Mapping[str, Any]) -> "Any":
    """A response body → an :class:`~repro.api.ExecutedQuery`."""
    from ..api import ExecutedQuery

    if "error" in payload:
        raise decode_error(payload)
    try:
        rows = decode_rows(payload["rows"])
        rowcount = payload.get("rowcount")
        return ExecutedQuery(
            columns=list(payload["columns"]),
            rows=rows,
            sql=payload.get("final_sql", ""),
            rewritten=bool(payload.get("rewritten", False)),
            rules=list(payload.get("rules", [])),
            mismatch=bool(payload.get("mismatch", False)),
            stats=dict(payload.get("stats", {})),
            analysis=payload.get("analysis"),
            request_id=payload.get("request_id"),
            rowcount=(
                int(rowcount)
                if isinstance(rowcount, int) and not isinstance(rowcount, bool)
                else len(rows)
            ),
        )
    except (KeyError, TypeError) as error:
        raise ProtocolError(f"malformed query response: {error}") from None


def decode_error(payload: Mapping[str, Any]) -> ReproError:
    """An error envelope → the typed client-side exception."""
    from ..errors import RemoteQueryError, TransientNetworkError

    envelope = payload.get("error")
    if not isinstance(envelope, Mapping):
        raise ProtocolError("malformed error envelope")
    error_type = str(envelope.get("type", "ReproError"))
    message = str(envelope.get("message", ""))
    status = int(envelope.get("status", 500))
    if envelope.get("retryable"):
        retry_after = envelope.get("retry_after")
        return TransientNetworkError(
            f"{error_type}: {message}",
            status=status,
            retry_after=float(retry_after) if retry_after else None,
        )
    return RemoteQueryError(error_type, message, status)


def dumps(payload: Mapping[str, Any]) -> bytes:
    """Canonical JSON bytes for one body or NDJSON line."""
    return json.dumps(payload, separators=(",", ":"), default=str).encode(
        "utf-8"
    )
