"""``QueryServer`` — a threaded HTTP front end over the query service.

Architecture: one :class:`~repro.service.QueryService` (worker pool +
bounded admission queue) does all execution; HTTP handler threads only
parse requests, submit with ``wait=False`` — so a saturated admission
queue surfaces as **429 + Retry-After**, the wire form of the service's
typed backpressure — and block on the ticket.  Large results stream as
NDJSON with an incremental flush per chunk, so the first rows reach the
client while later chunks are still being encoded.

Endpoints::

    POST /v1/query            execute SQL (JSON, or NDJSON with "stream")
    POST /v1/session          open a named session with default options
    DELETE /v1/session/<name> close a session
    GET  /healthz             liveness + drain state
    GET  /metrics             Prometheus text from the metrics registry

Resilience: every request passes the ``net_accept`` fault site on entry
and every response/stream-chunk write passes ``net_write`` — the chaos
suite aims seeded faults at both; an injected accept failure is a
retryable 503, an injected write failure kills the response mid-flight
(streams carry a terminal error line so truncation is detectable).

Lifecycle: :meth:`QueryServer.drain` (wired to SIGTERM by the CLI)
stops admitting new queries (503 + Retry-After), lets every in-flight
query complete and its response flush, then stops the listener.
"""

from __future__ import annotations

import itertools
import json
import threading
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Any

from ..api import executed_from_outcome
from ..engine.database import Database
from ..engine.parallel import ParallelExecution, ParallelOptions
from ..engine.plan_cache import PlanCache
from ..errors import (
    ProtocolError,
    ReproError,
    ServiceShutdownError,
    TicketWaitTimeout,
)
from ..observe.metrics import MetricsRegistry
from ..observe.trace import NULL_SPAN, TRACER
from ..options import ExecutionOptions
from ..resilience.admission import (
    PRIORITIES,
    PRIORITY_HEADER,
    SheddingPolicy,
)
from ..resilience.deadline import DEADLINE_HEADER, Deadline
from ..resilience.health import HealthPolicy
from ..resilience.faults import (
    FAULTS,
    SITE_NET_ACCEPT,
    SITE_NET_READ,
    SITE_NET_WRITE,
)
from ..service import QueryService, Session
from . import protocol
from .protocol import (
    CONTENT_JSON,
    CONTENT_NDJSON,
    REQUEST_ID_HEADER,
    error_envelope,
)

#: Name of the session used when a request names none.
DEFAULT_SESSION = "default"


class QueryServer:
    """An HTTP+JSON query server fronting one :class:`QueryService`.

    Usage::

        with QueryServer(database, workers=4) as server:
            print(server.url)        # e.g. http://127.0.0.1:53211
            server.wait()            # block until drained

    Args:
        database: the database the default session queries.
        host / port: bind address (port 0 picks a free port).
        workers / queue_depth / parallel / plan_cache: forwarded to the
            underlying :class:`~repro.service.QueryService`.
        options: server-wide default
            :class:`~repro.options.ExecutionOptions`; session defaults
            and per-request options layer on top.
        metrics: registry HTTP and query counters fold into (a private
            one by default; it backs ``GET /metrics``).
        stream_chunk_rows: rows per NDJSON chunk (each chunk is one
            flushed write).
    """

    def __init__(
        self,
        database: Database,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_depth: int = 64,
        parallel: ParallelOptions | ParallelExecution | None = None,
        plan_cache: PlanCache | None = None,
        options: ExecutionOptions | None = None,
        metrics: MetricsRegistry | None = None,
        stream_chunk_rows: int = 1000,
        shedding: SheddingPolicy | None = None,
        health_policy: HealthPolicy | None = None,
    ) -> None:
        if stream_chunk_rows < 1:
            raise ValueError("stream_chunk_rows must be at least 1")
        self.database = database
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.default_options = (
            options if options is not None else ExecutionOptions()
        )
        self.stream_chunk_rows = stream_chunk_rows
        self.service = QueryService(
            workers=workers,
            queue_depth=queue_depth,
            parallel=parallel,
            plan_cache=plan_cache,
            metrics=self.metrics,
            shedding=shedding,
            health_policy=health_policy,
        )
        self._sessions: dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._request_counter = itertools.count(1)
        self._httpd = _Listener((host, port), _Handler)
        self._httpd.app = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-http-listener",
            daemon=True,
        )
        self._thread.start()

    # -- addressing -----------------------------------------------------

    @property
    def url(self) -> str:
        """The server's base URL."""
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        """Whether a graceful drain is in progress (or finished)."""
        return self._draining.is_set()

    # -- session registry -----------------------------------------------

    def open_session(
        self,
        name: str | None = None,
        options: ExecutionOptions | None = None,
    ) -> Session:
        """Open (and register) a named session over the default database."""
        defaults = self.default_options.merged(options)
        with self._sessions_lock:
            if name is not None and name in self._sessions:
                raise ProtocolError(f"session {name!r} already exists")
        session = self.service.session(
            self.database, name=name, options=defaults
        )
        with self._sessions_lock:
            self._sessions[session.name] = session
        return session

    def close_session(self, name: str) -> dict[str, Any]:
        """Unregister *name*; returns its final snapshot."""
        with self._sessions_lock:
            session = self._sessions.pop(name, None)
        if session is None:
            raise ProtocolError(f"unknown session {name!r}")
        return session.snapshot()

    def get_session(self, name: str | None) -> Session:
        """The named session (the lazily-created default for None)."""
        wanted = name or DEFAULT_SESSION
        with self._sessions_lock:
            session = self._sessions.get(wanted)
        if session is None:
            if name is not None and name != DEFAULT_SESSION:
                raise ProtocolError(f"unknown session {name!r}")
            session = self.open_session(DEFAULT_SESSION)
        return session

    def session_names(self) -> list[str]:
        with self._sessions_lock:
            return sorted(self._sessions)

    def next_request_id(self, provided: str | None) -> str:
        """The caller's request id, or a fresh server-generated one."""
        if provided:
            return provided[:128]
        return f"req-{next(self._request_counter):06d}-{uuid.uuid4().hex[:8]}"

    # -- lifecycle ------------------------------------------------------

    def drain(self) -> None:
        """Graceful shutdown: finish in-flight queries, then stop.

        New ``/v1/query`` requests observed after this point get a
        retryable 503.  Queries already *running* complete and their
        responses flush before the listener closes; queries still
        *queued* fail fast with the same retryable 503
        (``cancel_queued=True``), so a full admission queue cannot
        stretch the drain window — and the service's ledger counters
        account every one (``service_drained_total``).  Idempotent.
        """
        if self._draining.is_set():
            self._stopped.wait()
            return
        self._draining.set()
        self.service.shutdown(wait=True, cancel_queued=True)
        self._httpd.shutdown()
        self._httpd.server_close()  # joins handler threads
        self._stopped.set()

    #: Alias so the server can sit in a ``with`` like a Connection.
    close = drain

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server has fully drained."""
        return self._stopped.wait(timeout)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.drain()
        return False

    def __repr__(self) -> str:
        state = "draining" if self.draining else "serving"
        return f"QueryServer({self.url}, {state})"


class _Listener(ThreadingHTTPServer):
    """The threaded listener; ``app`` points back to the QueryServer."""

    daemon_threads = True
    block_on_close = True  # server_close() joins in-flight handlers
    app: QueryServer


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the owning :class:`QueryServer`."""

    protocol_version = "HTTP/1.1"
    #: Socket read timeout: a stalled client must not pin a thread.
    timeout = 60
    server: _Listener

    # -- routing --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/healthz":
            self._route("healthz", self._handle_healthz)
        elif self.path == "/metrics":
            self._route("metrics", self._handle_metrics)
        else:
            self._route("unknown", self._handle_not_found)

    def do_POST(self) -> None:  # noqa: N802
        if self.path == "/v1/query":
            self._route("query", self._handle_query)
        elif self.path == "/v1/session":
            self._route("session", self._handle_session_open)
        else:
            self._route("unknown", self._handle_not_found)

    def do_DELETE(self) -> None:  # noqa: N802
        if self.path.startswith("/v1/session/"):
            self._route("session", self._handle_session_close)
        else:
            self._route("unknown", self._handle_not_found)

    # -- plumbing -------------------------------------------------------

    def _route(self, route: str, handler: Any) -> None:
        app = self.server.app
        started = perf_counter()
        self.request_id = app.next_request_id(
            self.headers.get(REQUEST_ID_HEADER)
        )
        self._responded = False
        span_cm = (
            TRACER.span(
                "http.request",
                route=route,
                request_id=self.request_id,
            )
            if TRACER.enabled
            else NULL_SPAN
        )
        status = 500
        try:
            with span_cm as span:
                # The accept fault site: chaos scenarios make admission
                # itself fail; the typed result is a retryable 503.
                FAULTS.check(SITE_NET_ACCEPT)
                status = handler()
                if span is not None:
                    span.attributes["status"] = status
        except Exception as error:  # noqa: BLE001 — boundary
            status = self._send_error(error)
        finally:
            app.metrics.record_http(route, status, perf_counter() - started)

    def _read_body(self) -> bytes:
        """The request body, guarded by the ``net_read`` fault site.

        An injected exception fault models the socket dying mid-read; a
        ``corrupt`` fault mangles or truncates the bytes the way a
        broken proxy would.  Either way the failure stays *inside this
        request*: a short or unparsable body becomes a clean typed 400
        envelope before any session or queue slot is touched.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return b""
        FAULTS.check(SITE_NET_READ)
        data = FAULTS.corrupt(SITE_NET_READ, self.rfile.read(length))
        if len(data) < length:
            raise ProtocolError(
                f"truncated request body: expected {length} bytes, "
                f"got {len(data)}"
            )
        return data

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        extra_headers: dict[str, str] | None = None,
    ) -> int:
        body = protocol.dumps(payload)
        # The write fault site fires *before* headers go out, so an
        # injected fault surfaces as a clean typed 503 on this request.
        FAULTS.check(SITE_NET_WRITE)
        self.send_response(status)
        self.send_header("Content-Type", CONTENT_JSON)
        self.send_header("Content-Length", str(len(body)))
        self.send_header(REQUEST_ID_HEADER, self.request_id)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self._responded = True
        self.wfile.write(body)
        return status

    def _send_error(self, error: Exception) -> int:
        if not isinstance(error, ReproError):
            if isinstance(error, (BrokenPipeError, ConnectionError)):
                self.close_connection = True
                return 499  # client went away; nothing to send
            error = ReproError(f"internal error: {error!r}")
            status, payload = 500, {
                "error": {
                    "type": "InternalError",
                    "message": str(error),
                    "status": 500,
                    "retryable": False,
                    "request_id": self.request_id,
                }
            }
        else:
            status, payload = error_envelope(error, self.request_id)
        if self._responded:
            # Mid-stream failure: the headers are gone; emit a terminal
            # error line so the client can tell truncation from success.
            try:
                self.wfile.write(protocol.dumps(payload) + b"\n")
                self.wfile.flush()
            except OSError:
                pass
            self.close_connection = True
            return status
        extra = {}
        retry_after = payload["error"].get("retry_after")
        if retry_after is not None:
            extra["Retry-After"] = str(retry_after)
        try:
            return self._send_json(status, payload, extra)
        except ReproError:
            # net_write fault while sending the error itself: abort.
            self.close_connection = True
            return status

    # -- endpoints ------------------------------------------------------

    def _handle_not_found(self) -> int:
        return self._send_json(
            404,
            {
                "error": {
                    "type": "NotFound",
                    "message": f"no such endpoint: {self.path}",
                    "status": 404,
                    "retryable": False,
                }
            },
        )

    def _handle_healthz(self) -> int:
        app = self.server.app
        return self._send_json(
            200,
            {
                "status": "draining" if app.draining else "ok",
                "workers": app.service.workers,
                "queue_depth": app.service.queue_depth,
                "sessions": app.session_names(),
                # The degradation ladder: current tier per subsystem,
                # plus the full error-budget detail for operators.
                "health": app.service.health.tiers(),
                "subsystems": app.service.health.snapshot(),
                "admission": app.service.admission.snapshot(),
            },
        )

    def _handle_metrics(self) -> int:
        app = self.server.app
        app.metrics.record_caches()
        app.service.health.export()  # publish the degraded gauges
        body = app.metrics.to_prometheus().encode("utf-8")
        FAULTS.check(SITE_NET_WRITE)
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self._responded = True
        self.wfile.write(body)
        return 200

    def _handle_session_open(self) -> int:
        app = self.server.app
        if app.draining:
            raise ServiceShutdownError()
        payload = protocol.parse_json(self._read_body())
        unknown = set(payload) - {"name", "options"}
        if unknown:
            raise ProtocolError(
                f"unknown session field(s): {', '.join(sorted(unknown))}"
            )
        name = payload.get("name")
        if name is not None and (not isinstance(name, str) or not name):
            raise ProtocolError("field 'name' must be a non-empty string")
        options = ExecutionOptions.from_wire(payload.get("options"))
        session = app.open_session(name, options)
        return self._send_json(
            200,
            {
                "session": session.name,
                "options": session.options.to_wire(),
                "request_id": self.request_id,
            },
        )

    def _handle_session_close(self) -> int:
        app = self.server.app
        name = self.path[len("/v1/session/") :]
        snapshot = app.close_session(name)
        snapshot["stats"] = {
            k: v for k, v in snapshot["stats"].as_dict().items() if v
        }
        return self._send_json(
            200, {"closed": name, "snapshot": snapshot}
        )

    def _handle_query(self) -> int:
        app = self.server.app
        if app.draining:
            raise ServiceShutdownError()
        request = protocol.parse_query_request(
            protocol.parse_json(self._read_body())
        )
        options = self._apply_resilience_headers(request["options"])
        session = app.get_session(request["session"])
        # wait=False: a full admission queue is the 429 backpressure
        # signal, never a silently blocked handler thread.
        ticket = app.service.submit(
            session,
            request["sql"],
            request["params"],
            wait=False,
            options=options,
            request_id=self.request_id,
        )
        try:
            outcome = ticket.result(timeout=request["wait_timeout"])
        except TicketWaitTimeout:
            # The client's wait is over; nobody will read the answer.
            # Cancel so a queued query is dropped and a running one
            # stops at its next cooperative checkpoint, instead of
            # silently burning a worker (the abandoned-ticket leak).
            ticket.cancel(f"HTTP wait abandoned ({self.request_id})")
            app.metrics.inc("http_abandoned_total")
            raise
        executed = executed_from_outcome(outcome, self.request_id)
        if request["stream"]:
            return self._stream_result(executed)
        return self._send_json(200, protocol.query_response(executed))

    def _apply_resilience_headers(
        self, options: ExecutionOptions
    ) -> ExecutionOptions:
        """Fold ``X-Deadline-Ms`` / ``X-Priority`` into the options.

        Headers win over the body's options fields — they are the
        transport-level spelling a proxy or gateway can set without
        parsing the JSON.  The deadline header carries *remaining
        milliseconds* and is re-anchored against this process's
        monotonic clock on receipt.
        """
        import dataclasses

        changes: dict[str, Any] = {}
        raw_deadline = self.headers.get(DEADLINE_HEADER)
        if raw_deadline is not None:
            try:
                ms = float(raw_deadline)
            except ValueError:
                raise ProtocolError(
                    f"header {DEADLINE_HEADER} must be a number of "
                    f"milliseconds, got {raw_deadline!r}"
                ) from None
            if ms < 0:
                raise ProtocolError(
                    f"header {DEADLINE_HEADER} must be non-negative"
                )
            changes["deadline"] = Deadline.from_wire_ms(ms)
        raw_priority = self.headers.get(PRIORITY_HEADER)
        if raw_priority is not None:
            if raw_priority not in PRIORITIES:
                raise ProtocolError(
                    f"header {PRIORITY_HEADER} must be one of "
                    + ", ".join(repr(p) for p in PRIORITIES)
                )
            changes["priority"] = raw_priority
        return dataclasses.replace(options, **changes) if changes else options

    def _stream_result(self, executed: Any) -> int:
        """NDJSON: header, chunked rows with incremental flush, footer."""
        app = self.server.app
        FAULTS.check(SITE_NET_WRITE)
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_NDJSON)
        self.send_header(REQUEST_ID_HEADER, self.request_id)
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        self._responded = True
        self.wfile.write(protocol.dumps(protocol.stream_header(executed)) + b"\n")
        self.wfile.flush()
        chunk_rows = app.stream_chunk_rows
        for start in range(0, len(executed.rows), chunk_rows):
            chunk = executed.rows[start : start + chunk_rows]
            FAULTS.check(SITE_NET_WRITE)
            self.wfile.write(
                protocol.dumps(protocol.stream_chunk(chunk)) + b"\n"
            )
            self.wfile.flush()  # incremental delivery, chunk by chunk
            app.metrics.inc("http_stream_chunks_total")
        self.wfile.write(protocol.dumps(protocol.stream_footer(executed)) + b"\n")
        self.wfile.flush()
        return 200

    # -- quiet logging --------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        """Server logs ride the metrics registry, not stderr."""
