"""The HTTP client: dial a :class:`~repro.net.server.QueryServer` and
get back the exact :class:`~repro.api.Connection` facade a local
database gives you.

Transport is stdlib ``urllib.request``; resilience reuses the library's
own :func:`~repro.resilience.retry.call_with_retry` with a bounded,
jittered :class:`~repro.resilience.retry.RetryPolicy`: a 429 (admission
queue full), a 503 (drain or injected transient fault), or a socket
failure becomes a :class:`~repro.errors.TransientNetworkError` that the
policy retries — honouring the server's ``Retry-After`` when one is
given — while every other envelope decodes to a terminal
:class:`~repro.errors.RemoteQueryError`.  NULLs survive the round trip
(JSON ``null`` ↔ the engine's NULL sentinel), so remote rows compare
``≐``-identical to local ones.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import urllib.error
import urllib.request
from typing import Any

from ..api import Connection, ExecutedQuery
from ..errors import (
    CircuitOpenError,
    ProtocolError,
    TransientNetworkError,
)
from ..options import ExecutionOptions
from ..sql.ast import (
    BeginTransaction,
    CommitTransaction,
    RollbackTransaction,
)
from ..sql.parser import parse
from ..resilience.admission import PRIORITY_HEADER, PRIORITY_INTERACTIVE
from ..resilience.breaker import CircuitBreaker
from ..resilience.deadline import DEADLINE_HEADER, Deadline
from ..resilience.retry import RetryPolicy, call_with_retry
from . import protocol
from .protocol import CONTENT_NDJSON, REQUEST_ID_HEADER

#: Wire retries back off harder than in-process IMS retries: a drain or
#: queue-full condition clears in tenths of seconds, not microseconds.
DEFAULT_HTTP_RETRY = RetryPolicy(
    max_attempts=5, base_delay=0.05, multiplier=2.0, max_delay=1.0
)


class HttpBackend:
    """A :class:`~repro.api.Connection` backend speaking the
    :mod:`repro.net.protocol` wire format.

    Args:
        url: server base URL (``http://host:port``).
        session: server-side session name queries run under (the
            server's shared default session when None).
        retry_policy: backoff schedule for retryable failures.
        stream: request NDJSON streaming responses (the assembled
            result is identical; streaming bounds server-side buffering
            for large results and exercises incremental delivery).
        timeout: socket timeout per HTTP attempt, in seconds.
        rng: randomness source for retry jitter (seedable for tests).
        breaker: the client-side
            :class:`~repro.resilience.breaker.CircuitBreaker` guarding
            this server (a default one when None).  Consecutive
            transient failures open it; an open breaker fails attempts
            locally with :class:`~repro.errors.CircuitOpenError` —
            which subclasses the retryable family carrying the time to
            the next half-open probe as ``retry_after``, so the retry
            loop sleeps exactly to the probe window instead of
            hammering a dead socket.
    """

    remote = True

    def __init__(
        self,
        url: str,
        *,
        session: str | None = None,
        retry_policy: RetryPolicy | None = None,
        stream: bool = False,
        timeout: float = 30.0,
        rng: random.Random | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.url = url.rstrip("/")
        self.session = session
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_HTTP_RETRY
        )
        self.stream = stream
        self.timeout = timeout
        self.retries = 0  # cumulative wire retries, for tests/metrics
        self._rng = rng if rng is not None else random.Random()
        self._owned_session = False
        #: Mirror of the server-side session's transaction state.  SQL
        #: ``BEGIN``/``COMMIT``/``ROLLBACK`` executes *on the server*
        #: (the session pins the snapshot there); this flag only tracks
        #: it so :class:`~repro.api.Connection` semantics — implicit
        #: begin under ``autocommit=False``, context-manager commit —
        #: work identically against a remote database.
        self.in_transaction = False
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        # Per-call resilience headers (set by run(), cleared after):
        # the deadline header is recomputed per *attempt* so a retry
        # sends the budget actually remaining, not a stale snapshot.
        self._deadline: Deadline | None = None
        self._priority: str = PRIORITY_INTERACTIVE

    # -- the Connection backend interface -------------------------------

    def run(
        self, sql: str, params: dict | None, options: ExecutionOptions
    ) -> ExecutedQuery:
        control = self._transaction_control(sql)
        if (
            control is None
            and not self.in_transaction
            and not options.autocommit
        ):
            # DB-API posture with autocommit off: open the implicit
            # transaction on the server before the first statement.
            self._run_wire("BEGIN", None, options)
            self.in_transaction = True
        if control == "end":
            try:
                executed = self._run_wire(sql, params, options)
            except TransientNetworkError:
                raise  # server state unknown; keep the flag for retry
            except Exception:
                # A typed failure (conflict, uniqueness) means the
                # server rolled the session's transaction back.
                self.in_transaction = False
                raise
            self.in_transaction = False
            return executed
        executed = self._run_wire(sql, params, options)
        if control == "begin":
            self.in_transaction = True
        return executed

    @staticmethod
    def _transaction_control(sql: str) -> str | None:
        """``"begin"`` / ``"end"`` for transaction-control SQL, else None."""
        if not isinstance(sql, str):
            return None
        head = sql.strip().split(None, 1)[0].upper() if sql.strip() else ""
        if head not in ("BEGIN", "COMMIT", "ROLLBACK", "START"):
            return None
        try:
            statement = parse(sql)
        except Exception:  # noqa: BLE001 — let the server issue the error
            return None
        if isinstance(statement, BeginTransaction):
            return "begin"
        if isinstance(statement, (CommitTransaction, RollbackTransaction)):
            return "end"
        return None

    def _run_wire(
        self, sql: str, params: dict | None, options: ExecutionOptions
    ) -> ExecutedQuery:
        if options.deadline is not None:
            # Fast-fail locally: an expired deadline must not even
            # touch the network (the server would reject it anyway).
            options.deadline.check()
        body: dict[str, Any] = {"sql": sql}
        encoded = protocol.encode_params(params)
        if encoded is not None:
            body["params"] = encoded
        if self.session is not None:
            body["session"] = self.session
        wire_options = options.to_wire()
        # Deadline and priority ride the headers, recomputed per
        # attempt; the body copy would freeze a stale remaining-ms.
        wire_options.pop("deadline_ms", None)
        wire_options.pop("priority", None)
        if wire_options:
            body["options"] = wire_options
        if self.stream:
            body["stream"] = True
        self._deadline = options.deadline
        self._priority = options.priority
        try:
            return self._call_retrying("/v1/query", body, self._query_once)
        finally:
            self._deadline = None
            self._priority = PRIORITY_INTERACTIVE

    def begin(self) -> None:
        """Open an explicit transaction on the server-side session."""
        self.run("BEGIN", None, ExecutionOptions())

    def commit(self) -> None:
        """Publish the open server-side transaction; no-op without one."""
        if self.in_transaction:
            self.run("COMMIT", None, ExecutionOptions())

    def rollback(self) -> None:
        """Discard the open server-side transaction; no-op without one."""
        if self.in_transaction:
            self.run("ROLLBACK", None, ExecutionOptions())

    def close(self) -> None:
        """Close the server-side session if this backend opened it."""
        if self.in_transaction:
            try:
                self.rollback()  # abandoned handle: discard, never publish
            except Exception:  # noqa: BLE001 — best-effort cleanup
                self.in_transaction = False
        if self._owned_session and self.session is not None:
            try:
                self._request("DELETE", f"/v1/session/{self.session}", None)
            except Exception:  # noqa: BLE001 — best-effort cleanup
                pass
            self.session = None
            self._owned_session = False

    def describe(self) -> str:
        where = f"{self.url}"
        if self.session is not None:
            where += f" session={self.session}"
        return f"remote server {where}"

    # -- session lifecycle ----------------------------------------------

    def open_session(
        self,
        name: str | None = None,
        options: ExecutionOptions | None = None,
    ) -> str:
        """Open a named server-side session and bind queries to it."""
        body: dict[str, Any] = {}
        if name is not None:
            body["name"] = name
        if options is not None:
            wire = options.to_wire()
            if wire:
                body["options"] = wire
        payload = self._call_retrying(
            "/v1/session", body, self._json_once
        )
        self.session = payload["session"]
        self._owned_session = True
        return self.session

    # -- server views ----------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        """The server's ``/healthz`` document."""
        return self._request("GET", "/healthz", None)

    def metrics_text(self) -> str:
        """The server's raw Prometheus ``/metrics`` exposition."""
        status, headers, raw = self._raw_request("GET", "/metrics", None)
        return raw.decode("utf-8")

    # -- transport -------------------------------------------------------

    def _call_retrying(self, path: str, body: dict, once: Any) -> Any:
        def on_retry(_attempt: int, _error: BaseException) -> None:
            self.retries += 1

        return call_with_retry(
            lambda: once(path, body),
            policy=self.retry_policy,
            retryable=(TransientNetworkError,),
            rng=self._rng,
            sleep=self._sleep_honouring_retry_after,
            on_retry=on_retry,
        )

    #: Set just before each retry sleep; folded into the sleep so the
    #: client never hammers a server that told it when to come back.
    _pending_retry_after: float | None = None

    def _sleep_honouring_retry_after(self, seconds: float) -> None:
        import time

        hint = self._pending_retry_after
        self._pending_retry_after = None
        # The server's hint *replaces* the backoff schedule: a shedding
        # 429 predicts when the admission queue will actually have
        # room, and that estimate beats the exponential schedule in
        # both directions (an early fixed backoff just gets shed again;
        # a late one wastes the freed slot).  Capped by the policy's
        # max_delay so a misbehaving server cannot stall the client,
        # and jittered like every other sleep so the herd of clients a
        # shedding episode rejects does not return in lockstep.
        if hint is not None:
            seconds = min(hint, self.retry_policy.max_delay)
            if self.retry_policy.jitter:
                seconds -= (
                    seconds * self.retry_policy.jitter * self._rng.random()
                )
        time.sleep(max(0.0, seconds))

    def _query_once(self, path: str, body: dict) -> ExecutedQuery:
        status, headers, raw = self._raw_request("POST", path, body)
        content_type = (headers.get("Content-Type") or "").split(";")[0]
        if content_type == CONTENT_NDJSON:
            return self._assemble_stream(raw)
        payload = self._parse_body(raw)
        return protocol.parse_query_response(payload)

    def _json_once(self, path: str, body: dict) -> dict[str, Any]:
        status, headers, raw = self._raw_request("POST", path, body)
        payload = self._parse_body(raw)
        if "error" in payload:
            raise protocol.decode_error(payload)
        return payload

    def _assemble_stream(self, raw: bytes) -> ExecutedQuery:
        """NDJSON lines → one ExecutedQuery; a missing footer or an
        error line means the stream was cut and must not pass for a
        complete result."""
        header: dict[str, Any] | None = None
        rows: list[tuple] = []
        sealed = False
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            record = self._parse_body(line)
            if "error" in record:
                raise protocol.decode_error(record)
            if header is None:
                header = record
            elif record.get("end"):
                sealed = True
                if record.get("row_count") != len(rows):
                    raise ProtocolError(
                        "stream footer row_count disagrees with rows received"
                    )
            else:
                rows.extend(protocol.decode_rows(record.get("rows", [])))
        if header is None or not sealed:
            raise TransientNetworkError(
                "result stream truncated before its footer", status=0
            )
        header["rows"] = protocol.encode_rows(rows)
        return protocol.parse_query_response(header)

    def _parse_body(self, raw: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(
                f"malformed response from server: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise ProtocolError("response body must be a JSON object")
        return payload

    def _request(self, method: str, path: str, body: dict | None) -> dict:
        status, headers, raw = self._raw_request(method, path, body)
        payload = self._parse_body(raw)
        if "error" in payload:
            raise protocol.decode_error(payload)
        return payload

    def _raw_request(
        self, method: str, path: str, body: dict | None
    ) -> tuple[int, Any, bytes]:
        """One HTTP attempt → ``(status, headers, body bytes)``.

        Error responses with a decodable envelope raise the typed
        error (transient ones pick up ``Retry-After``); socket-level
        failures become :class:`TransientNetworkError` so the retry
        policy treats a dropped connection like a 503.

        The circuit breaker gates every attempt: an open circuit fails
        here without touching the network, transient failures feed its
        counter, and any response at all — even an error envelope —
        counts as proof of life that closes it.
        """
        try:
            self.breaker.acquire()
        except CircuitOpenError as error:
            # Sleep the retry loop exactly to the half-open window.
            self._pending_retry_after = error.retry_after
            raise
        data = protocol.dumps(body) if body is not None else None
        request = urllib.request.Request(
            self.url + path, data=data, method=method
        )
        if data is not None:
            request.add_header("Content-Type", "application/json")
        if self._deadline is not None:
            request.add_header(
                DEADLINE_HEADER, f"{self._deadline.to_wire_ms():.3f}"
            )
        if self._priority != PRIORITY_INTERACTIVE:
            request.add_header(PRIORITY_HEADER, self._priority)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                result = response.status, response.headers, response.read()
            self.breaker.record_success()
            return result
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = self._parse_body(raw)
                typed = protocol.decode_error(payload)
            except ProtocolError:
                typed = self._statusline_error(error.code, raw)
            if isinstance(typed, TransientNetworkError):
                self._pending_retry_after = typed.retry_after
                self.breaker.record_failure()
            else:
                # A typed terminal envelope is a *working* server
                # rejecting this particular request — proof of life.
                self.breaker.record_success()
            raise typed from None
        except (
            urllib.error.URLError,
            ConnectionError,
            socket.timeout,
            TimeoutError,
            http.client.HTTPException,
        ) as error:
            self.breaker.record_failure()
            raise TransientNetworkError(
                f"{method} {path} failed: {error!r}", status=0
            ) from None

    @staticmethod
    def _statusline_error(code: int, raw: bytes) -> Exception:
        from ..errors import RemoteQueryError

        if code in protocol.RETRYABLE_STATUSES:
            return TransientNetworkError(
                f"HTTP {code}", status=code, retry_after=None
            )
        return RemoteQueryError("HTTPError", raw.decode("utf-8", "replace"), code)


def connect(
    url: str,
    *,
    options: ExecutionOptions | None = None,
    session: str | None = None,
    fresh_session: bool = False,
    retry_policy: RetryPolicy | None = None,
    stream: bool = False,
    timeout: float = 30.0,
    rng: random.Random | None = None,
    breaker: CircuitBreaker | None = None,
) -> Connection:
    """Dial a :class:`~repro.net.server.QueryServer`; returns the same
    :class:`~repro.api.Connection` facade a local database gives.

    Args:
        url: server base URL.
        options: default :class:`~repro.options.ExecutionOptions` for
            every cursor on this connection (sent with each request).
        session: bind queries to an existing named server session.
        fresh_session: open (and own) a new server-side session — it is
            closed again when the connection closes.
        retry_policy / timeout / rng / breaker: transport knobs, see
            :class:`HttpBackend`.
        stream: ask for NDJSON streaming responses.
    """
    backend = HttpBackend(
        url,
        session=session,
        retry_policy=retry_policy,
        stream=stream,
        timeout=timeout,
        rng=rng,
        breaker=breaker,
    )
    if fresh_session:
        backend.open_session(session, options)
    return Connection(backend, default_options=options)
