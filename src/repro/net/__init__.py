"""The network layer: an HTTP+JSON query protocol over the service.

Three stdlib-only modules put a wire in front of the optimizer, so the
paper's rewrite wins (§6's Example 10 gateway argument: halving the
call count halves the *remote* cost) become end-to-end latency and
throughput wins measurable at the socket:

* :mod:`~repro.net.protocol` — the request/response schemas, the SQL
  value codec (NULL ↔ ``null``), and the errors-taxonomy → HTTP status
  mapping with its retryability contract;
* :mod:`~repro.net.server` — :class:`QueryServer`, a threaded
  ``http.server`` front end over :class:`~repro.service.QueryService`:
  ``POST /v1/query`` (JSON or streamed NDJSON), ``POST /v1/session``
  lifecycle, ``GET /healthz``, ``GET /metrics`` (Prometheus text),
  request-id propagation, typed 429 backpressure, graceful drain;
* :mod:`~repro.net.client` — :func:`~repro.net.client.connect`, giving
  back the same :class:`~repro.api.Connection` facade as a local
  database, with bounded jittered retry on 429/transient faults.

Everything is importable lazily — ``import repro`` does not pay for the
HTTP machinery until a URL is actually dialed.
"""

from .client import HttpBackend, connect
from .protocol import (
    ERROR_RETRY_AFTER,
    decode_rows,
    encode_rows,
    error_envelope,
    status_for_error,
)
from .server import QueryServer

__all__ = [
    "ERROR_RETRY_AFTER",
    "HttpBackend",
    "QueryServer",
    "connect",
    "decode_rows",
    "encode_rows",
    "error_envelope",
    "status_for_error",
]
