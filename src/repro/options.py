"""One frozen options object for every execution surface.

Before this module existed, the same three knobs — budgets, safe mode,
morsel parallelism — were threaded as loose keyword arguments through
four different entrypoints (``execute``, ``execute_planned``,
``run_guarded``, ``execute_analyzed``), the service's ``Session``, and
the CLI.  :class:`ExecutionOptions` consolidates them: the
:mod:`repro.api` facade, :meth:`repro.service.QueryService.submit`, and
the HTTP request schema (:mod:`repro.net.protocol`) all carry this one
immutable value, and :meth:`ExecutionOptions.to_wire` /
:meth:`ExecutionOptions.from_wire` round-trip it local → service →
socket without loss.

Import discipline: this module depends only on the leaf dataclasses
(:class:`~repro.resilience.budgets.ResourceBudget`,
:class:`~repro.engine.parallel.ParallelOptions`) plus
:mod:`repro.errors`, so every layer — engine, service, net, CLI — can
import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from .engine.columnar import ENGINE_MODES
from .engine.parallel import ParallelOptions
from .errors import ProtocolError
from .resilience.admission import PRIORITIES, PRIORITY_INTERACTIVE
from .resilience.budgets import ResourceBudget
from .resilience.deadline import Deadline


@dataclass(frozen=True)
class ExecutionOptions:
    """Everything that shapes one query execution, in one frozen value.

    Attributes:
        timeout: per-query wall-clock budget in seconds (None = none).
        row_budget: rows the query may *process* (None = unlimited).
        safe_mode: cross-check uniqueness rewrites against the
            unrewritten plan; quarantine rules on a mismatch.
        analyze: additionally run EXPLAIN ANALYZE instrumentation and
            attach per-operator actuals to the outcome.
        optimize: apply the rewrite rules at all (False = execute the
            query exactly as written).
        stats: plan with the statistics-driven cost model — collected
            table statistics (``Database.analyze()``) feed cardinality
            estimates and cost-based join-order enumeration; without
            fresh statistics the planner falls back to rule order.
        adaptive: feed observed cardinalities from this (analyzed) run
            back into the adaptive correction store, and consult prior
            corrections while planning; implies statistics-driven
            planning and forces an instrumented execution.
        parallel: morsel-parallel execution knobs, or None for serial.
        engine_mode: ``"tuple"`` (row-at-a-time interpreter/compiled
            closures), ``"vectorized"`` (columnar batches), ``"auto"``
            (vectorize exactly when faults are disarmed), or None to
            defer to :func:`repro.engine.columnar.default_engine_mode`.
        batch_rows: rows per column batch in vectorized mode (None =
            the engine default).
        deadline: end-to-end :class:`~repro.resilience.deadline.Deadline`
            — the instant the *client* stops caring.  Queue wait spends
            it, the effective execution timeout is clamped to what is
            left, and an already-expired deadline is rejected before any
            operator runs.  Crosses the wire as remaining milliseconds
            (``deadline_ms``).
        priority: admission priority class — ``"interactive"``
            (default, shed last) or ``"batch"`` (shed first under
            load).
        scan_ranges: row-range slices applied to named tables for the
            duration of this execution, as ``(table, start, stop)``
            triples.  The scatter-gather layer sets one slice of the
            driving table per shard; execution then runs against a
            read-only :class:`~repro.engine.sliced.SlicedDatabase`
            view.  Crosses the wire as ``{"scan_ranges": {table:
            [start, stop]}}``.
        autocommit: when True (default), each statement outside an
            explicit ``BEGIN`` block commits on its own.  When False,
            the connection opens an implicit MVCC transaction before
            the first statement and holds it until ``commit()`` /
            ``rollback()`` — the DB-API 2.0 posture.  Crosses the wire
            only when False.

    The class is frozen and built from frozen parts, so a value can key
    caches, cross threads, and be shared between a session default and
    a per-query override without defensive copies.
    """

    timeout: float | None = None
    row_budget: int | None = None
    safe_mode: bool = False
    analyze: bool = False
    optimize: bool = True
    stats: bool = False
    adaptive: bool = False
    parallel: ParallelOptions | None = None
    engine_mode: str | None = None
    batch_rows: int | None = None
    deadline: Deadline | None = None
    priority: str = PRIORITY_INTERACTIVE
    scan_ranges: tuple[tuple[str, int, int], ...] | None = None
    autocommit: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.row_budget is not None and self.row_budget <= 0:
            raise ValueError("row budget must be positive")
        if self.engine_mode is not None and self.engine_mode not in ENGINE_MODES:
            raise ValueError(
                f"engine_mode must be one of {', '.join(ENGINE_MODES)}"
            )
        if self.batch_rows is not None and self.batch_rows <= 0:
            raise ValueError("batch_rows must be positive")
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {', '.join(PRIORITIES)}"
            )
        if self.scan_ranges is not None:
            seen: set[str] = set()
            for entry in self.scan_ranges:
                if len(entry) != 3:
                    raise ValueError(
                        "scan_ranges entries must be (table, start, stop)"
                    )
                table, start, stop = entry
                if not isinstance(table, str) or not table:
                    raise ValueError("scan_ranges table must be a name")
                if table.upper() in seen:
                    raise ValueError(
                        f"duplicate scan range for table {table.upper()}"
                    )
                seen.add(table.upper())
                if (
                    not isinstance(start, int)
                    or not isinstance(stop, int)
                    or isinstance(start, bool)
                    or isinstance(stop, bool)
                    or start < 0
                    or stop < start
                ):
                    raise ValueError(
                        f"invalid scan range [{start}, {stop}) for {table}"
                    )

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        *,
        budget: ResourceBudget | None = None,
        timeout: float | None = None,
        row_budget: int | None = None,
        safe_mode: bool = False,
        analyze: bool = False,
        optimize: bool = True,
        stats: bool = False,
        adaptive: bool = False,
        parallel: "ParallelOptions | int | None" = None,
        engine_mode: str | None = None,
        batch_rows: int | None = None,
        deadline: "Deadline | float | None" = None,
        priority: str = PRIORITY_INTERACTIVE,
        scan_ranges: "Mapping[str, tuple[int, int]] | tuple[tuple[str, int, int], ...] | None" = None,
        autocommit: bool = True,
    ) -> "ExecutionOptions":
        """Build options from the looser spellings the API accepts.

        ``budget`` expands into ``timeout``/``row_budget`` (explicit
        fields win over the budget's); ``parallel`` accepts a plain
        worker count as shorthand for ``ParallelOptions(workers=n)``;
        ``deadline`` accepts plain seconds-from-now as shorthand for
        ``Deadline.after(seconds)``.
        """
        if budget is not None:
            if timeout is None:
                timeout = budget.timeout
            if row_budget is None:
                row_budget = budget.row_budget
        if isinstance(parallel, int):
            parallel = (
                ParallelOptions(workers=parallel) if parallel > 1 else None
            )
        if isinstance(deadline, (int, float)):
            deadline = Deadline.after(float(deadline))
        if isinstance(scan_ranges, Mapping):
            scan_ranges = tuple(
                (table, start, stop)
                for table, (start, stop) in sorted(scan_ranges.items())
            )
        elif scan_ranges is not None:
            scan_ranges = tuple(tuple(entry) for entry in scan_ranges)
        return cls(
            timeout=timeout,
            row_budget=row_budget,
            safe_mode=safe_mode,
            analyze=analyze,
            optimize=optimize,
            stats=stats,
            adaptive=adaptive,
            parallel=parallel,
            engine_mode=engine_mode,
            batch_rows=batch_rows,
            deadline=deadline,
            priority=priority,
            scan_ranges=scan_ranges,
            autocommit=autocommit,
        )

    # -- derived views --------------------------------------------------

    def budget(self) -> ResourceBudget | None:
        """The :class:`ResourceBudget` these options imply, if any."""
        if self.timeout is None and self.row_budget is None:
            return None
        return ResourceBudget(timeout=self.timeout, row_budget=self.row_budget)

    def merged(self, override: "ExecutionOptions | None") -> "ExecutionOptions":
        """These options with every non-default field of *override* on top.

        Used by the service and the HTTP server to layer a per-query
        request over a session's defaults: a field the request left at
        its default keeps the session's value.
        """
        if override is None:
            return self
        changes = {}
        for spec in fields(self):
            value = getattr(override, spec.name)
            default = spec.default
            if value != default:
                changes[spec.name] = value
        return replace(self, **changes) if changes else self

    # -- wire round-trip ------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        """A JSON-ready dict, omitting fields at their defaults."""
        payload: dict[str, Any] = {}
        if self.timeout is not None:
            payload["timeout"] = self.timeout
        if self.row_budget is not None:
            payload["row_budget"] = self.row_budget
        if self.safe_mode:
            payload["safe_mode"] = True
        if self.analyze:
            payload["analyze"] = True
        if not self.optimize:
            payload["optimize"] = False
        if self.stats:
            payload["stats"] = True
        if self.adaptive:
            payload["adaptive"] = True
        if self.parallel is not None:
            payload["parallel"] = {
                "workers": self.parallel.workers,
                "morsel_size": self.parallel.morsel_size,
                "min_parallel_rows": self.parallel.min_parallel_rows,
            }
        if self.engine_mode is not None:
            payload["engine_mode"] = self.engine_mode
        if self.batch_rows is not None:
            payload["batch_rows"] = self.batch_rows
        if self.deadline is not None:
            # Remaining milliseconds, re-anchored by the receiving hop:
            # the two processes share no clock, monotonic or otherwise.
            payload["deadline_ms"] = self.deadline.to_wire_ms()
        if self.priority != PRIORITY_INTERACTIVE:
            payload["priority"] = self.priority
        if self.scan_ranges is not None:
            payload["scan_ranges"] = {
                table: [start, stop]
                for table, start, stop in self.scan_ranges
            }
        if not self.autocommit:
            payload["autocommit"] = False
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any] | None) -> "ExecutionOptions":
        """Parse the wire dict; unknown keys raise a typed error.

        The strictness is deliberate: a typo'd option silently ignored
        on the server would make local and remote execution diverge,
        which is exactly what the unified facade exists to prevent.
        """
        if payload is None:
            return cls()
        if not isinstance(payload, Mapping):
            raise ProtocolError("options must be a JSON object")
        # The deadline travels as remaining milliseconds, not as the
        # local Deadline object, so the wire name differs from the field.
        known = {spec.name for spec in fields(cls)} - {"deadline"}
        known.add("deadline_ms")
        unknown = set(payload) - known
        if unknown:
            raise ProtocolError(
                f"unknown option(s): {', '.join(sorted(unknown))}"
            )
        kwargs: dict[str, Any] = {}
        for name in ("timeout", "row_budget"):
            if payload.get(name) is not None:
                value = payload[name]
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    raise ProtocolError(f"option {name!r} must be a number")
                kwargs[name] = int(value) if name == "row_budget" else float(value)
        for name in (
            "safe_mode",
            "analyze",
            "optimize",
            "stats",
            "adaptive",
            "autocommit",
        ):
            if name in payload:
                value = payload[name]
                if not isinstance(value, bool):
                    raise ProtocolError(f"option {name!r} must be a boolean")
                kwargs[name] = value
        if payload.get("engine_mode") is not None:
            value = payload["engine_mode"]
            if not isinstance(value, str) or value not in ENGINE_MODES:
                raise ProtocolError(
                    "option 'engine_mode' must be one of "
                    + ", ".join(repr(mode) for mode in ENGINE_MODES)
                )
            kwargs["engine_mode"] = value
        if payload.get("batch_rows") is not None:
            value = payload["batch_rows"]
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError("option 'batch_rows' must be an integer")
            kwargs["batch_rows"] = value
        if payload.get("deadline_ms") is not None:
            value = payload["deadline_ms"]
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value < 0
            ):
                raise ProtocolError(
                    "option 'deadline_ms' must be a non-negative number"
                )
            kwargs["deadline"] = Deadline.from_wire_ms(float(value))
        if payload.get("priority") is not None:
            value = payload["priority"]
            if not isinstance(value, str) or value not in PRIORITIES:
                raise ProtocolError(
                    "option 'priority' must be one of "
                    + ", ".join(repr(p) for p in PRIORITIES)
                )
            kwargs["priority"] = value
        if payload.get("scan_ranges") is not None:
            value = payload["scan_ranges"]
            if not isinstance(value, Mapping):
                raise ProtocolError(
                    "option 'scan_ranges' must map table names to "
                    "[start, stop] pairs"
                )
            entries = []
            for table, window in sorted(value.items()):
                if (
                    not isinstance(table, str)
                    or not isinstance(window, (list, tuple))
                    or len(window) != 2
                    or any(
                        not isinstance(edge, int) or isinstance(edge, bool)
                        for edge in window
                    )
                ):
                    raise ProtocolError(
                        "option 'scan_ranges' must map table names to "
                        "[start, stop] pairs"
                    )
                entries.append((table, int(window[0]), int(window[1])))
            kwargs["scan_ranges"] = tuple(entries)
        parallel = payload.get("parallel")
        if parallel is not None:
            if isinstance(parallel, int) and not isinstance(parallel, bool):
                kwargs["parallel"] = (
                    ParallelOptions(workers=parallel) if parallel > 1 else None
                )
            elif isinstance(parallel, Mapping):
                extra = set(parallel) - {
                    "workers",
                    "morsel_size",
                    "min_parallel_rows",
                }
                if extra:
                    raise ProtocolError(
                        f"unknown parallel option(s): {', '.join(sorted(extra))}"
                    )
                try:
                    kwargs["parallel"] = ParallelOptions(**dict(parallel))
                except (TypeError, ValueError) as error:
                    raise ProtocolError(
                        f"invalid parallel options: {error}"
                    ) from None
            else:
                raise ProtocolError(
                    "option 'parallel' must be a worker count or an object"
                )
        try:
            return cls(**kwargs)
        except ValueError as error:
            raise ProtocolError(f"invalid options: {error}") from None


#: The all-defaults value layered under every merge.
DEFAULT_OPTIONS = ExecutionOptions()
