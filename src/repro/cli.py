"""Command-line interface.

Usage::

    python -m repro check    [--schema DDL.sql | --paper] "SELECT DISTINCT ..."
    python -m repro optimize [--schema DDL.sql | --paper]
                             [--profile relational|navigational] "SELECT ..."
    python -m repro run      [--script DB.sql | --demo] [--plan]
                             [--timeout SECONDS] [--row-budget N]
                             [--safe-mode] [--param NAME=VALUE ...]
                             "SELECT ..."
    python -m repro demo

* ``check`` runs Algorithm 1 and prints the paper-style trace.
* ``optimize`` prints the rewrite trace and the final SQL.
* ``run`` executes a query — against a script-built database
  (``--script`` containing CREATE TABLE / INSERT statements) or the
  bundled demo instance — optionally showing the physical plan.
  ``--timeout`` and ``--row-budget`` set per-query resource budgets;
  ``--safe-mode`` cross-checks uniqueness-based rewrites against the
  unrewritten plan and quarantines any rule caught changing the result.
* ``demo`` walks through the paper's worked examples.

Exit codes: 0 success (for ``check``: verdict YES), 1 ``check`` verdict
NO, 2 generic library error, 3 other resource-budget error, 4 query
timeout, 5 row budget exceeded, 6 query cancelled, 7 transient IMS
failure with retries exhausted, 8 safe-mode rewrite mismatch.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .catalog import Catalog
from .core import Optimizer, UniquenessOptions, test_uniqueness
from .engine import Database, Planner, Stats, execute_planned
from .errors import (
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ResourceError,
    RewriteMismatchError,
    RowBudgetExceeded,
    TransientImsError,
)
from .resilience import ResourceBudget
from .resilience.guarded import run_guarded
from .sql import parse_query
from .types import NULL, SqlValue
from .workloads import (
    PAPER_QUERIES,
    SupplierScale,
    build_catalog,
    build_database,
    generate,
)


def build_arg_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Exploiting Uniqueness in Query Optimization "
        "(Paulley & Larson, ICDE 1994) — reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_schema_options(sub: argparse.ArgumentParser) -> None:
        group = sub.add_mutually_exclusive_group()
        group.add_argument(
            "--schema", metavar="FILE", help="DDL file defining the schema"
        )
        group.add_argument(
            "--paper",
            action="store_true",
            help="use the paper's supplier schema (default)",
        )

    check = commands.add_parser(
        "check", help="run Algorithm 1 on a query"
    )
    add_schema_options(check)
    check.add_argument(
        "--use-check-constraints",
        action="store_true",
        help="exploit CHECK constraints over NOT NULL columns",
    )
    check.add_argument("sql", help="the query to analyze")

    optimize = commands.add_parser(
        "optimize", help="rewrite a query and show the trace"
    )
    add_schema_options(optimize)
    optimize.add_argument(
        "--profile",
        choices=("relational", "navigational"),
        default="relational",
        help="rule profile (default: relational)",
    )
    optimize.add_argument("sql", help="the query to optimize")

    run = commands.add_parser("run", help="execute a query")
    source = run.add_mutually_exclusive_group()
    source.add_argument(
        "--script",
        metavar="FILE",
        help="script of CREATE TABLE / INSERT statements to build the "
        "database from",
    )
    source.add_argument(
        "--demo",
        action="store_true",
        help="run against a small generated supplier instance (default)",
    )
    run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="host-variable binding (repeatable)",
    )
    run.add_argument(
        "--plan", action="store_true", help="also print the physical plan"
    )
    run.add_argument(
        "--no-optimize",
        action="store_true",
        help="execute the query as written, skipping the rewrite rules",
    )
    run.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="abort the query after this many seconds (exit code 4)",
    )
    run.add_argument(
        "--row-budget",
        type=int,
        metavar="N",
        help="abort after processing this many rows (exit code 5)",
    )
    run.add_argument(
        "--safe-mode",
        action="store_true",
        help="cross-check rewrites against the unrewritten plan; on a "
        "mismatch quarantine the rules and serve the verified result",
    )
    run.add_argument("sql", help="the query to execute")

    commands.add_parser("demo", help="walk through the paper's examples")
    return parser


def _load_catalog(args: argparse.Namespace) -> Catalog:
    if getattr(args, "schema", None):
        with open(args.schema) as handle:
            return Catalog.from_ddl(handle.read())
    return build_catalog()


def _parse_params(pairs: list[str]) -> dict[str, SqlValue]:
    params: dict[str, SqlValue] = {}
    for pair in pairs:
        name, _, text = pair.partition("=")
        if not name or not _:
            raise ReproError(f"malformed --param {pair!r}; use NAME=VALUE")
        value: SqlValue
        if text.upper() == "NULL":
            value = NULL
        else:
            try:
                value = int(text)
            except ValueError:
                try:
                    value = float(text)
                except ValueError:
                    value = text
        params[name.upper()] = value
    return params


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: Algorithm 1 verdict (exit 0 = YES)."""
    catalog = _load_catalog(args)
    options = UniquenessOptions(
        use_check_constraints=args.use_check_constraints
    )
    result = test_uniqueness(args.sql, catalog, options)
    print(result.explain())
    return 0 if result.unique else 1


def cmd_optimize(args: argparse.Namespace) -> int:
    """``repro optimize``: print the rewrite trace and final SQL."""
    catalog = _load_catalog(args)
    if args.profile == "navigational":
        optimizer = Optimizer.for_navigational(catalog)
    else:
        optimizer = Optimizer.for_relational(catalog)
    outcome = optimizer.optimize(args.sql)
    print(outcome.explain())
    print()
    print(outcome.sql)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: optimize (unless told not to) and execute, guarded."""
    if args.script:
        with open(args.script) as handle:
            database = Database.from_script(handle.read())
    else:
        database = build_database(
            generate(SupplierScale(suppliers=25, parts_per_supplier=5))
        )
    params = _parse_params(args.param)

    budget = None
    if args.timeout is not None or args.row_budget is not None:
        budget = ResourceBudget(
            timeout=args.timeout, row_budget=args.row_budget
        )

    if args.no_optimize:
        query = parse_query(args.sql)
        if args.plan:
            plan = Planner(database.catalog).plan(query)
            print("physical plan:")
            print(plan.explain(indent=1))
            print()
        stats = Stats()
        result = execute_planned(
            query,
            database,
            params=params,
            stats=stats,
            guard=budget.guard() if budget is not None else None,
        )
        print(result.to_table())
        print()
        print(f"-- {len(result)} row(s); {stats.describe()}")
        return 0

    outcome = run_guarded(
        args.sql,
        database,
        params=params,
        budget=budget,
        safe_mode=args.safe_mode,
    )
    if outcome.rewritten and not outcome.mismatch:
        print(f"-- rewritten via {', '.join(outcome.rules)}")
        print(f"-- {outcome.sql}")
        print()
    if args.plan:
        plan = Planner(database.catalog).plan(parse_query(outcome.sql))
        print("physical plan:")
        print(plan.explain(indent=1))
        print()
    print(outcome.result.to_table())
    print()
    print(f"-- {len(outcome.result)} row(s); {outcome.stats.describe()}")
    if outcome.mismatch:
        print(f"warning: {outcome.describe()}", file=sys.stderr)
        return 8
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """``repro demo``: walk the paper's Examples 1-11."""
    catalog = build_catalog()
    relational = Optimizer.for_relational(catalog)
    navigational = Optimizer.for_navigational(catalog)
    for query in PAPER_QUERIES:
        print("=" * 70)
        print(f"Example {query.example}: {query.description}")
        print(f"  {query.sql}")
        optimizer = (
            navigational if query.example in ("10", "11") else relational
        )
        outcome = optimizer.optimize(query.sql)
        if outcome.changed:
            for step in outcome.steps:
                print(f"  [{step.rule}] {step.note}")
            print(f"  => {outcome.sql}")
        else:
            print("  (no rewrite applies)")
    return 0


#: Exit-code taxonomy, matched subclass-first (see module docstring).
_ERROR_EXIT_CODES: list[tuple[type[ReproError], int]] = [
    (QueryTimeout, 4),
    (RowBudgetExceeded, 5),
    (QueryCancelled, 6),
    (ResourceError, 3),
    (TransientImsError, 7),
    (RewriteMismatchError, 8),
]


def exit_code_for(error: ReproError) -> int:
    """Map a typed error to its CLI exit code (2 for the base class)."""
    for cls, code in _ERROR_EXIT_CODES:
        if isinstance(error, cls):
            return code
    return 2


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    handlers = {
        "check": cmd_check,
        "optimize": cmd_optimize,
        "run": cmd_run,
        "demo": cmd_demo,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`): exit quietly
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
