"""Command-line interface.

Usage::

    python -m repro check    [--schema DDL.sql | --paper] [--json]
                             "SELECT DISTINCT ..."
    python -m repro optimize [--schema DDL.sql | --paper]
                             [--profile relational|navigational] "SELECT ..."
    python -m repro run      [--script DB.sql | --demo] [--plan]
                             [--timeout SECONDS] [--row-budget N]
                             [--safe-mode] [--param NAME=VALUE ...]
                             [--trace] [--analyze] [--json]
                             [--stats] [--adaptive]
                             [--metrics-out FILE]
                             [--workers N] [--parallel-scan]
                             "SELECT ..."
    python -m repro analyze-stats [--script DB.sql | --demo] [--json]
    python -m repro explain  [--script DB.sql | --demo]
                             [--profile relational|navigational]
                             [--no-optimize] [--analyze] [--json]
                             [--param NAME=VALUE ...] "SELECT ..."
    python -m repro serve    [--script DB.sql | --demo] [--file FILE]
                             [--workers N] [--queue-depth N]
                             [--parallel-scan] [--timeout SECONDS]
                             [--row-budget N] [--safe-mode] [--json]
                             [--stats] [--adaptive]
                             [--http PORT] [--host ADDR] [--shards N]
    python -m repro client   URL [--session NAME] [--stream]
                             [--timeout SECONDS] [--row-budget N]
                             [--safe-mode] [--analyze] [--no-optimize]
                             [--stats] [--adaptive]
                             [--param NAME=VALUE ...] [--json] "SELECT ..."
    python -m repro demo

* ``check`` runs Algorithm 1 and prints the paper-style trace
  (``--json`` emits the verdict plus the bound-attribute witness).
* ``optimize`` prints the rewrite trace, the theorem-by-theorem proof
  sketch, and the final SQL.
* ``run`` executes a query — against a script-built database
  (``--script`` containing CREATE TABLE / INSERT statements) or the
  bundled demo instance — optionally showing the physical plan.
  ``--timeout`` and ``--row-budget`` set per-query resource budgets;
  ``--safe-mode`` cross-checks uniqueness-based rewrites against the
  unrewritten plan and quarantines any rule caught changing the result.
  ``--trace`` prints the hierarchical span tree, ``--analyze`` runs
  EXPLAIN ANALYZE (per-operator actual rows / loops / time / q-error)
  plus the rewrite proof sketch, and ``--metrics-out FILE`` exports a
  metrics snapshot (``.prom`` selects Prometheus text, else JSON).
  ``--stats`` plans cost-based from table statistics (collected
  automatically on first use); ``--adaptive`` additionally runs
  instrumented and folds observed row counts back into per-plan-node
  corrections so repeated runs converge (see ``docs/cost_model.md``).
* ``analyze-stats`` runs the ANALYZE pass — per-table row counts,
  per-column NULL/distinct counts, min/max, equi-depth histograms —
  stores the catalog on the database, and prints a summary.
* ``explain`` shows the rewrite audit and the physical plan without
  printing rows; with ``--analyze`` the plan is annotated with actuals
  from one instrumented execution.
* ``serve`` runs a batch of queries (one per line, from ``--file`` or
  stdin) through the embedded :class:`~repro.service.QueryService` —
  ``--workers`` query threads, a ``--queue-depth``-bounded admission
  queue, and optional per-query morsel parallelism.  With ``--http
  PORT`` it instead starts the network server
  (:class:`~repro.net.server.QueryServer`) on that port and serves
  until SIGTERM/SIGINT, then drains gracefully — in-flight queries
  complete before the listener closes.  ``--shards N`` (with
  ``--http``) serves a sharded cluster instead: N worker processes
  behind the :class:`~repro.cluster.ClusterFrontend` front end (see
  ``docs/cluster.md``).
* ``client`` executes one query against a running ``serve --http``
  server through the same :class:`~repro.api.Connection` facade local
  code uses, with bounded retry on 429/transient faults.
* ``demo`` walks through the paper's worked examples.

``run`` additionally accepts ``--workers N`` (morsel worker threads for
partition-parallel scans and hash joins; 1 = serial) and
``--parallel-scan`` (drop the row-count cost gate so even small inputs
take the morsel paths — mainly for demos and tests).

Exit codes: 0 success (for ``check``: verdict YES), 1 ``check`` verdict
NO, 2 generic library error, 3 other resource-budget error, 4 query
timeout, 5 row budget exceeded, 6 query cancelled, 7 transient IMS
failure with retries exhausted, 8 safe-mode rewrite mismatch, 9 service
admission queue overloaded, 10 ticket wait timed out, 11 network
failure with retries exhausted, 12 deadline expired before execution
began.  A :class:`~repro.errors.
RemoteQueryError` relayed from a server maps by its *original* error
type — a remote row-budget violation still exits 5.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from .catalog import Catalog
from .core import Optimizer, UniquenessOptions, test_uniqueness
from .engine import (
    Database,
    ParallelOptions,
    Planner,
    PlannerOptions,
    Stats,
)
from .api import Connection
from .api import connect as api_connect
from .errors import (
    ReproError,
    exit_code_for as _exit_code_for,
    exit_code_summary,
)
from .options import ExecutionOptions
from .observe import (
    AuditTrail,
    MetricsRegistry,
    TRACER,
    execute_analyzed,
    set_tracing,
)
from .resilience import ResourceBudget
from .service import QueryService
from .sql import parse_query
from .types import NULL, SqlValue
from .workloads import (
    PAPER_QUERIES,
    SupplierScale,
    build_catalog,
    build_database,
    generate,
)


def build_arg_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Exploiting Uniqueness in Query Optimization "
        "(Paulley & Larson, ICDE 1994) — reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_schema_options(sub: argparse.ArgumentParser) -> None:
        group = sub.add_mutually_exclusive_group()
        group.add_argument(
            "--schema", metavar="FILE", help="DDL file defining the schema"
        )
        group.add_argument(
            "--paper",
            action="store_true",
            help="use the paper's supplier schema (default)",
        )

    def add_database_options(sub: argparse.ArgumentParser) -> None:
        source = sub.add_mutually_exclusive_group()
        source.add_argument(
            "--script",
            metavar="FILE",
            help="script of CREATE TABLE / INSERT statements to build the "
            "database from",
        )
        source.add_argument(
            "--demo",
            action="store_true",
            help="run against a small generated supplier instance (default)",
        )
        sub.add_argument(
            "--param",
            action="append",
            default=[],
            metavar="NAME=VALUE",
            help="host-variable binding (repeatable)",
        )

    check = commands.add_parser(
        "check", help="run Algorithm 1 on a query"
    )
    add_schema_options(check)
    check.add_argument(
        "--use-check-constraints",
        action="store_true",
        help="exploit CHECK constraints over NOT NULL columns",
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="emit the verdict and witness as JSON",
    )
    check.add_argument("sql", help="the query to analyze")

    optimize = commands.add_parser(
        "optimize", help="rewrite a query and show the trace"
    )
    add_schema_options(optimize)
    optimize.add_argument(
        "--profile",
        choices=("relational", "navigational"),
        default="relational",
        help="rule profile (default: relational)",
    )
    optimize.add_argument("sql", help="the query to optimize")

    run = commands.add_parser("run", help="execute a query")
    add_database_options(run)
    run.add_argument(
        "--plan", action="store_true", help="also print the physical plan"
    )
    run.add_argument(
        "--no-optimize",
        action="store_true",
        help="execute the query as written, skipping the rewrite rules",
    )
    run.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="abort the query after this many seconds (exit code 4)",
    )
    run.add_argument(
        "--row-budget",
        type=int,
        metavar="N",
        help="abort after processing this many rows (exit code 5)",
    )
    run.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        help="end-to-end deadline in milliseconds; a query whose budget "
        "is already spent is rejected before any work (exit code 12)",
    )
    run.add_argument(
        "--priority",
        choices=("interactive", "batch"),
        help="admission priority class (default interactive; batch is "
        "shed first under load)",
    )
    run.add_argument(
        "--safe-mode",
        action="store_true",
        help="cross-check rewrites against the unrewritten plan; on a "
        "mismatch quarantine the rules and serve the verified result",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="record and print the hierarchical trace spans",
    )
    run.add_argument(
        "--analyze",
        action="store_true",
        help="EXPLAIN ANALYZE: execute instrumented and print per-operator "
        "actual rows, loops, timing, and q-error plus the rewrite audit",
    )
    run.add_argument(
        "--stats",
        action="store_true",
        help="cost-based planning from table statistics (the ANALYZE "
        "pass runs automatically when the catalog is missing or stale)",
    )
    run.add_argument(
        "--adaptive",
        action="store_true",
        help="statistics-driven planning plus the adaptive feedback "
        "loop: execute instrumented and fold actual row counts into "
        "per-plan-node corrections (implies --stats)",
    )
    run.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write a metrics snapshot (.prom = Prometheus text, else JSON)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit rows, stats, audit, plan, and trace as one JSON object",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="morsel worker threads for partition-parallel operators "
        "(default 1 = serial execution)",
    )
    run.add_argument(
        "--parallel-scan",
        action="store_true",
        help="drop the row-count cost gate so even small inputs take the "
        "parallel morsel paths (implies --workers 2 when unset)",
    )
    run.add_argument(
        "--engine-mode",
        choices=("tuple", "vectorized", "auto"),
        help="execution style: tuple (row-at-a-time interpreter), "
        "vectorized (columnar batches), or auto (vectorize when safe); "
        "default: the REPRO_ENGINE_MODE environment variable, else tuple",
    )
    run.add_argument(
        "--batch-rows",
        type=int,
        metavar="N",
        help="rows per column batch in vectorized mode",
    )
    run.add_argument("sql", help="the query to execute")

    explain = commands.add_parser(
        "explain",
        help="show the rewrite audit and physical plan without the rows",
    )
    add_database_options(explain)
    explain.add_argument(
        "--profile",
        choices=("relational", "navigational"),
        default="relational",
        help="rule profile (default: relational)",
    )
    explain.add_argument(
        "--no-optimize",
        action="store_true",
        help="explain the query as written, skipping the rewrite rules",
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute once, instrumented, and annotate the plan with actuals",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the plan and audit as one JSON object",
    )
    explain.add_argument("sql", help="the query to explain")

    analyze_stats = commands.add_parser(
        "analyze-stats",
        help="collect table statistics (the ANALYZE pass) and print them",
    )
    stats_source = analyze_stats.add_mutually_exclusive_group()
    stats_source.add_argument(
        "--script",
        metavar="FILE",
        help="script of CREATE TABLE / INSERT statements to build the "
        "database from",
    )
    stats_source.add_argument(
        "--demo",
        action="store_true",
        help="analyze a small generated supplier instance (default)",
    )
    analyze_stats.add_argument(
        "--json",
        action="store_true",
        help="emit the statistics catalog as JSON",
    )

    serve = commands.add_parser(
        "serve",
        help="run a batch of queries through the embedded query service",
        epilog=exit_code_summary(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    source = serve.add_mutually_exclusive_group()
    source.add_argument(
        "--script",
        metavar="FILE",
        help="script of CREATE TABLE / INSERT statements to build the "
        "database from",
    )
    source.add_argument(
        "--demo",
        action="store_true",
        help="serve against a small generated supplier instance (default)",
    )
    serve.add_argument(
        "--file",
        metavar="FILE",
        help="file with one query per line ('--' comments and blank lines "
        "are skipped); default: read stdin",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="query worker threads (default 2)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="admission queue bound; a full queue blocks submission "
        "(default 64)",
    )
    serve.add_argument(
        "--parallel-scan",
        action="store_true",
        help="additionally enable partition-parallel operators inside "
        "each query (separate morsel pool)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-query wall-clock budget",
    )
    serve.add_argument(
        "--row-budget",
        type=int,
        metavar="N",
        help="per-query row-processing budget",
    )
    serve.add_argument(
        "--safe-mode",
        action="store_true",
        help="cross-check rewrites against the unrewritten plan",
    )
    serve.add_argument(
        "--engine-mode",
        choices=("tuple", "vectorized", "auto"),
        help="execution style for every served query (default: tuple)",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="cost-based planning from table statistics for every "
        "served query",
    )
    serve.add_argument(
        "--adaptive",
        action="store_true",
        help="statistics-driven planning plus the adaptive correction "
        "loop for every served query (implies --stats)",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit per-query outcomes and service metrics as JSON",
    )
    serve.add_argument(
        "--http",
        type=int,
        metavar="PORT",
        help="serve the HTTP+JSON query protocol on this port instead of "
        "running a batch; drains gracefully on SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="bind address for --http (default 127.0.0.1)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="with --http: serve a sharded cluster of N worker "
        "processes behind an asyncio front end (key-bound point "
        "queries route to one shard; partitioned scans scatter-gather)",
    )

    client = commands.add_parser(
        "client",
        help="execute one query against a running `serve --http` server",
        epilog=exit_code_summary(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    client.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8080")
    client.add_argument(
        "--session",
        metavar="NAME",
        help="run under this named server-side session",
    )
    client.add_argument(
        "--stream",
        action="store_true",
        help="request an NDJSON streaming response",
    )
    client.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-query wall-clock budget (enforced server-side)",
    )
    client.add_argument(
        "--row-budget",
        type=int,
        metavar="N",
        help="per-query row-processing budget (enforced server-side)",
    )
    client.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        help="end-to-end deadline in milliseconds, propagated via the "
        "X-Deadline-Ms header (exit code 12 when already spent)",
    )
    client.add_argument(
        "--priority",
        choices=("interactive", "batch"),
        help="admission priority class sent as X-Priority (default "
        "interactive; batch is shed first under load)",
    )
    client.add_argument(
        "--safe-mode",
        action="store_true",
        help="cross-check rewrites against the unrewritten plan",
    )
    client.add_argument(
        "--analyze",
        action="store_true",
        help="also fetch the EXPLAIN ANALYZE plan",
    )
    client.add_argument(
        "--no-optimize",
        action="store_true",
        help="execute the query as written, skipping the rewrite rules",
    )
    client.add_argument(
        "--engine-mode",
        choices=("tuple", "vectorized", "auto"),
        help="execution style, enforced server-side (default: tuple)",
    )
    client.add_argument(
        "--stats",
        action="store_true",
        help="cost-based planning from table statistics (server-side)",
    )
    client.add_argument(
        "--adaptive",
        action="store_true",
        help="statistics-driven planning plus the adaptive correction "
        "loop (server-side; implies --stats)",
    )
    client.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="host-variable binding (repeatable)",
    )
    client.add_argument(
        "--json",
        action="store_true",
        help="emit rows, stats, and the rewrite trail as one JSON object",
    )
    client.add_argument("sql", help="the query to execute")

    commands.add_parser("demo", help="walk through the paper's examples")
    return parser


def _load_catalog(args: argparse.Namespace) -> Catalog:
    if getattr(args, "schema", None):
        with open(args.schema) as handle:
            return Catalog.from_ddl(handle.read())
    return build_catalog()


def _load_database(args: argparse.Namespace) -> Database:
    """The database a ``run``/``explain`` invocation targets."""
    if args.script:
        with open(args.script) as handle:
            return Database.from_script(handle.read())
    return build_database(
        generate(SupplierScale(suppliers=25, parts_per_supplier=5))
    )


def _parallel_options(args: argparse.Namespace) -> ParallelOptions | None:
    """Morsel-parallelism options from ``--workers``/``--parallel-scan``.

    ``--parallel-scan`` without an explicit worker count still gets two
    morsel workers; with ``workers`` at 1 and no force flag, execution
    stays serial (returns None).
    """
    workers = getattr(args, "workers", 1)
    forced = getattr(args, "parallel_scan", False)
    if forced and workers < 2:
        workers = 2
    if workers < 2:
        return None
    if forced:
        # Drop the cost gate (and shrink morsels) so small demo inputs
        # still exercise the parallel operator paths.
        return ParallelOptions(
            workers=workers, morsel_size=256, min_parallel_rows=1
        )
    return ParallelOptions(workers=workers)


def _parse_params(pairs: list[str]) -> dict[str, SqlValue]:
    params: dict[str, SqlValue] = {}
    for pair in pairs:
        name, _, text = pair.partition("=")
        if not name or not _:
            raise ReproError(f"malformed --param {pair!r}; use NAME=VALUE")
        value: SqlValue
        if text.upper() == "NULL":
            value = NULL
        else:
            try:
                value = int(text)
            except ValueError:
                try:
                    value = float(text)
                except ValueError:
                    value = text
        params[name.upper()] = value
    return params


def _jsonable(value: Any) -> Any:
    return None if value is NULL else value


def _print_json(payload: dict[str, Any]) -> None:
    print(json.dumps(payload, indent=2, default=str))


def _plan_fresh(database: Database, sql: str, args: Any = None) -> Any:
    """Plan *sql* the way the invocation executed it — cost-based when
    ``--stats``/``--adaptive`` was given, rule order otherwise."""
    if args is not None and (
        getattr(args, "stats", False) or getattr(args, "adaptive", False)
    ):
        from .stats import ensure_statistics

        try:
            ensure_statistics(database)
        except ReproError:
            pass  # estimator falls back to heuristics
        options = PlannerOptions(
            use_stats=True, adaptive=getattr(args, "adaptive", False)
        )
        planner = Planner(database.catalog, options, database=database)
        return planner.plan(parse_query(sql))
    return Planner(database.catalog).plan(parse_query(sql))


def _print_plan(
    database: Database,
    sql: str,
    plan: Any = None,
    analysis: Any = None,
    header: str = "physical plan:",
    args: Any = None,
) -> None:
    """Print the physical plan for *sql* (planned fresh unless given)."""
    if plan is None:
        plan = _plan_fresh(database, sql, args)
    print(header)
    print(plan.explain(indent=1, analysis=analysis))
    print()


def _write_metrics(
    path: str,
    stats: Stats,
    outcome: Any = None,
    audit: AuditTrail | None = None,
) -> None:
    """Export one invocation's counters to *path* (.prom or JSON)."""
    registry = MetricsRegistry()
    registry.record_stats(stats)
    registry.record_caches()
    if outcome is not None:
        registry.record_outcome(outcome)
    if audit is not None:
        registry.record_audit(audit)
    registry.write(path)
    print(f"-- metrics written to {path}", file=sys.stderr)


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: Algorithm 1 verdict (exit 0 = YES)."""
    catalog = _load_catalog(args)
    options = UniquenessOptions(
        use_check_constraints=args.use_check_constraints
    )
    result = test_uniqueness(args.sql, catalog, options)
    if args.json:
        _print_json(
            {
                "command": "check",
                "sql": args.sql,
                "unique": result.unique,
                "reason": result.reason,
                "witness": result.witness(),
            }
        )
    else:
        print(result.explain())
    return 0 if result.unique else 1


def cmd_optimize(args: argparse.Namespace) -> int:
    """``repro optimize``: print the rewrite trace and final SQL."""
    catalog = _load_catalog(args)
    if args.profile == "navigational":
        optimizer = Optimizer.for_navigational(catalog)
    else:
        optimizer = Optimizer.for_relational(catalog)
    outcome = optimizer.optimize(args.sql)
    print(outcome.explain())
    print()
    print("proof sketch:")
    print(outcome.proof_sketch())
    print()
    print(outcome.sql)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: execute one query through the Connection facade."""
    database = _load_database(args)
    params = _parse_params(args.param)

    previous = set_tracing(True) if args.trace else None
    if args.trace:
        TRACER.clear()
    try:
        return _run_query(args, database, params)
    finally:
        if args.trace:
            set_tracing(previous)


def _run_query(
    args: argparse.Namespace,
    database: Database,
    params: dict[str, SqlValue],
) -> int:
    options = ExecutionOptions.create(
        timeout=args.timeout,
        row_budget=args.row_budget,
        deadline=(
            args.deadline_ms / 1000.0
            if args.deadline_ms is not None
            else None
        ),
        priority=args.priority or "interactive",
        safe_mode=args.safe_mode,
        analyze=args.analyze,
        optimize=not args.no_optimize,
        stats=args.stats,
        adaptive=args.adaptive,
        parallel=_parallel_options(args),
        engine_mode=args.engine_mode,
        batch_rows=args.batch_rows,
    )
    with Connection.local(database, options=options) as connection:
        cursor = connection.execute(args.sql, params or None)
        executed = cursor.executed
    outcome = executed.outcome
    analyzed = outcome.analysis  # AnalyzedExecution when --analyze ran
    audit: AuditTrail | None = outcome.audit
    rules, mismatch, final_sql = executed.rules, executed.mismatch, executed.sql
    if analyzed is not None:
        # EXPLAIN ANALYZE re-executed the winning form instrumented;
        # show the actuals (and counters) from that run.
        result, stats = analyzed.result, analyzed.stats
    else:
        result, stats = outcome.result, outcome.stats

    if args.metrics_out:
        _write_metrics(args.metrics_out, stats, outcome=outcome, audit=audit)

    if args.json:
        payload: dict[str, Any] = {
            "command": "run",
            "sql": args.sql,
            "rewritten": bool(rules),
            "final_sql": final_sql,
            "rules": rules,
            "mismatch": mismatch,
            "columns": result.columns,
            "rows": [
                [_jsonable(value) for value in row] for row in result.rows
            ],
            "row_count": len(result),
            "rowcount": executed.rowcount,
            "stats": {
                name: value
                for name, value in stats.as_dict().items()
                if value
            },
        }
        if audit is not None:
            payload["audit"] = audit.to_dicts()
        if analyzed is not None:
            payload["plan"] = analyzed.to_dict()
        elif args.plan:
            plan = _plan_fresh(database, final_sql, args)
            payload["plan"] = plan.explain()
        if args.trace:
            payload["trace"] = TRACER.to_dicts()
        _print_json(payload)
        return 8 if mismatch else 0

    if rules and not mismatch:
        print(f"-- rewritten via {', '.join(rules)}")
        print(f"-- {final_sql}")
        print()
    if analyzed is not None:
        _print_plan(
            database,
            final_sql,
            plan=analyzed.plan,
            analysis=analyzed.analysis,
            header="EXPLAIN ANALYZE:",
        )
    elif args.plan:
        _print_plan(database, final_sql, args=args)
    if outcome.rowcount >= 0:
        # A DML statement: no result rows, just the affected count.
        print(f"-- {outcome.rowcount} row(s) affected; {stats.describe()}")
    else:
        print(result.to_table())
        print()
        print(f"-- {len(result)} row(s); {stats.describe()}")
    if args.analyze and audit is not None and len(audit):
        print()
        print("rewrite audit:")
        print(audit.proof_sketch())
    if args.trace:
        print()
        print("trace:")
        print(TRACER.render())
    if mismatch:
        print(f"warning: {outcome.describe()}", file=sys.stderr)
        return 8
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: rewrite audit plus (annotated) physical plan."""
    database = _load_database(args)
    params = _parse_params(args.param)

    audit: AuditTrail | None = None
    rules: list[str] = []
    final_sql = args.sql
    if not args.no_optimize:
        if args.profile == "navigational":
            optimizer = Optimizer.for_navigational(database.catalog)
        else:
            optimizer = Optimizer.for_relational(database.catalog)
        outcome = optimizer.optimize(args.sql)
        final_sql = outcome.sql
        audit = outcome.audit
        for step in outcome.steps:
            if step.rule not in rules:
                rules.append(step.rule)

    analyzed = None
    analysis = None
    if args.analyze:
        analyzed = execute_analyzed(
            parse_query(final_sql), database, params=params
        )
        plan, analysis = analyzed.plan, analyzed.analysis
    else:
        plan = Planner(database.catalog).plan(parse_query(final_sql))

    if args.json:
        payload: dict[str, Any] = {
            "command": "explain",
            "sql": args.sql,
            "rewritten": bool(rules),
            "final_sql": final_sql,
            "rules": rules,
            "plan": (
                analyzed.to_dict() if analyzed is not None else plan.explain()
            ),
        }
        if audit is not None:
            payload["audit"] = audit.to_dicts()
        _print_json(payload)
        return 0

    if rules:
        print(f"-- rewritten via {', '.join(rules)}")
        print(f"-- {final_sql}")
        print()
    _print_plan(
        database,
        final_sql,
        plan=plan,
        analysis=analysis,
        header="EXPLAIN ANALYZE:" if args.analyze else "physical plan:",
    )
    if audit is not None and len(audit):
        print("rewrite audit:")
        print(audit.proof_sketch())
    return 0


def cmd_analyze_stats(args: argparse.Namespace) -> int:
    """``repro analyze-stats``: run ANALYZE and print the catalog."""
    database = _load_database(args)
    catalog = database.analyze()
    if args.json:
        _print_json(
            {
                "command": "analyze-stats",
                "version": catalog.version,
                "tables": catalog.as_dict(),
            }
        )
        return 0
    for name in sorted(catalog.table_names()):
        table = catalog.table(name)
        print(f"{name}: {table.row_count} row(s)")
        for column_name, column in table.columns.items():
            parts = [
                f"distinct={column.n_distinct}"
                + ("" if column.exact_distinct else " (estimated)"),
                f"nulls={column.null_count}",
            ]
            if column.min_value is not None:
                parts.append(f"min={column.min_value!r}")
                parts.append(f"max={column.max_value!r}")
            if column.histogram is not None:
                parts.append(
                    f"histogram={len(column.histogram.counts)} bucket(s)"
                )
            print(f"  {column_name}: {', '.join(parts)}")
    print(f"-- statistics version {catalog.version}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: batch through the embedded service, or — with
    ``--http`` — the network server until SIGTERM/SIGINT."""
    if args.shards is not None:
        if args.http is None:
            print("error: --shards requires --http", file=sys.stderr)
            return 2
        return _serve_cluster_http(args)
    database = _load_database(args)
    if args.http is not None:
        return _serve_http(args, database)
    if args.file:
        with open(args.file) as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    queries = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("--")
    ]
    if not queries:
        print("no queries to serve", file=sys.stderr)
        return 0

    budget = None
    if args.timeout is not None or args.row_budget is not None:
        budget = ResourceBudget(
            timeout=args.timeout, row_budget=args.row_budget
        )
    parallel = (
        ParallelOptions(workers=2, morsel_size=256, min_parallel_rows=1)
        if args.parallel_scan
        else None
    )

    failures: list[tuple[str, ReproError]] = []
    records: list[dict[str, Any]] = []
    with QueryService(
        workers=args.workers,
        queue_depth=args.queue_depth,
        parallel=parallel,
    ) as service:
        session = service.session(
            database,
            budget=budget,
            safe_mode=args.safe_mode,
            options=(
                ExecutionOptions.create(
                    timeout=args.timeout,
                    row_budget=args.row_budget,
                    safe_mode=args.safe_mode,
                    engine_mode=args.engine_mode,
                    stats=args.stats,
                    adaptive=args.adaptive,
                )
                if args.engine_mode or args.stats or args.adaptive
                else None
            ),
        )
        tickets = service.submit_many(session, queries)
        for ticket in tickets:
            record: dict[str, Any] = {"sql": ticket.sql}
            try:
                outcome = ticket.result()
            except ReproError as error:
                record["error"] = str(error)
                record["error_type"] = type(error).__name__
                failures.append((ticket.sql, error))
            else:
                record["rows"] = len(outcome.result)
                record["rewritten"] = outcome.rewritten
                if outcome.rules:
                    record["rules"] = outcome.rules
            records.append(record)
        snapshot = session.snapshot()
        metrics = service.metrics.as_dict()

    if args.json:
        _print_json(
            {
                "command": "serve",
                "workers": args.workers,
                "queries": records,
                "completed": snapshot["completed"],
                "failed": snapshot["failed"],
                "stats": {
                    name: value
                    for name, value in snapshot["stats"].as_dict().items()
                    if value
                },
                "metrics": metrics,
            }
        )
    else:
        for record in records:
            if "error" in record:
                line = f"ERROR [{record['error_type']}] {record['error']}"
            else:
                line = f"{record['rows']} row(s)"
                if record["rewritten"]:
                    line += f" (rewritten via {', '.join(record['rules'])})"
            print(f"{record['sql']}\n  -> {line}")
        print(
            f"-- served {snapshot['completed']} quer(ies), "
            f"{snapshot['failed']} failed, on {args.workers} worker(s)"
        )
    if failures:
        return exit_code_for(failures[0][1])
    return 0


def _serve_http(args: argparse.Namespace, database: Database) -> int:
    """``repro serve --http PORT``: the network query server."""
    import signal
    import threading

    from .net.server import QueryServer

    options = ExecutionOptions.create(
        timeout=args.timeout,
        row_budget=args.row_budget,
        safe_mode=args.safe_mode,
        engine_mode=args.engine_mode,
        stats=args.stats,
        adaptive=args.adaptive,
    )
    parallel = (
        ParallelOptions(workers=2, morsel_size=256, min_parallel_rows=1)
        if args.parallel_scan
        else None
    )
    stop = threading.Event()

    def _request_stop(signum: int, _frame: Any) -> None:
        print(
            f"-- signal {signum}: draining (in-flight queries complete)",
            file=sys.stderr,
        )
        stop.set()

    previous_handlers = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _request_stop),
        signal.SIGINT: signal.signal(signal.SIGINT, _request_stop),
    }
    try:
        with QueryServer(
            database,
            host=args.host,
            port=args.http,
            workers=args.workers,
            queue_depth=args.queue_depth,
            parallel=parallel,
            options=options,
        ) as server:
            print(f"-- serving on {server.url}", file=sys.stderr, flush=True)
            stop.wait()
            # __exit__ drains: stop admitting, finish in-flight, close.
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    print("-- drained", file=sys.stderr)
    return 0


def _serve_cluster_http(args: argparse.Namespace) -> int:
    """``repro serve --http PORT --shards N``: the sharded cluster."""
    import signal
    import threading

    from .cluster import ClusterFrontend, ClusterCoordinator, WorkerConfig, WorkerSource

    if args.shards < 1:
        print("error: --shards must be at least 1", file=sys.stderr)
        return 2
    if args.script:
        with open(args.script) as handle:
            source = WorkerSource.from_script(handle.read())
    else:
        source = WorkerSource.from_factory(
            "repro.workloads.supplier:build_database"
        )
    options = ExecutionOptions.create(
        timeout=args.timeout,
        row_budget=args.row_budget,
        safe_mode=args.safe_mode,
        engine_mode=args.engine_mode,
        stats=args.stats,
        adaptive=args.adaptive,
    )
    config = WorkerConfig(
        host="127.0.0.1",
        threads=args.workers,
        queue_depth=args.queue_depth,
        parallel_workers=2 if args.parallel_scan else None,
        options_wire=options.to_wire() or None,
    )
    stop = threading.Event()

    def _request_stop(signum: int, _frame: Any) -> None:
        print(
            f"-- signal {signum}: draining cluster (workers finish in-flight "
            "queries)",
            file=sys.stderr,
        )
        stop.set()

    previous_handlers = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _request_stop),
        signal.SIGINT: signal.signal(signal.SIGINT, _request_stop),
    }
    coordinator = ClusterCoordinator(source, args.shards, config=config)
    try:
        with ClusterFrontend(
            coordinator,
            host=args.host,
            port=args.http,
            owns_coordinator=True,
        ) as frontend:
            print(
                f"-- serving {args.shards} shard(s) on {frontend.url}",
                file=sys.stderr,
                flush=True,
            )
            stop.wait()
            # __exit__ drains the front end, then the worker fleet.
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    print("-- drained", file=sys.stderr)
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    """``repro client``: one query over the wire via the facade."""
    options = ExecutionOptions.create(
        timeout=args.timeout,
        row_budget=args.row_budget,
        deadline=(
            args.deadline_ms / 1000.0
            if args.deadline_ms is not None
            else None
        ),
        priority=args.priority or "interactive",
        safe_mode=args.safe_mode,
        analyze=args.analyze,
        optimize=not args.no_optimize,
        stats=args.stats,
        adaptive=args.adaptive,
        engine_mode=args.engine_mode,
    )
    params = _parse_params(args.param)
    with api_connect(
        args.url,
        options=options,
        session=args.session,
        stream=args.stream,
    ) as connection:
        cursor = connection.execute(args.sql, params or None)
        executed = cursor.executed

    from .engine.result import Result

    result = Result(executed.columns, executed.rows)
    if args.json:
        _print_json(
            {
                "command": "client",
                "url": args.url,
                "sql": args.sql,
                "request_id": executed.request_id,
                "rewritten": executed.rewritten,
                "final_sql": executed.sql,
                "rules": executed.rules,
                "mismatch": executed.mismatch,
                "columns": executed.columns,
                "rows": [
                    [_jsonable(value) for value in row]
                    for row in executed.rows
                ],
                "row_count": len(executed.rows),
                "rowcount": executed.rowcount,
                "stats": executed.stats,
                **(
                    {"analysis": executed.analysis}
                    if executed.analysis is not None
                    else {}
                ),
            }
        )
        return 8 if executed.mismatch else 0

    if executed.rules and not executed.mismatch:
        print(f"-- rewritten via {', '.join(executed.rules)}")
        print(f"-- {executed.sql}")
        print()
    described = ", ".join(
        f"{name}={value}" for name, value in sorted(executed.stats.items())
    )
    # A DML response has no result columns; its rowcount is the
    # affected-row count from the envelope.
    if not executed.columns and executed.rowcount >= 0:
        print(
            f"-- {executed.rowcount} row(s) affected; "
            f"request {executed.request_id}"
            + (f"; {described}" if described else "")
        )
        if executed.mismatch:
            print("warning: safe-mode mismatch; served the verified result",
                  file=sys.stderr)
            return 8
        return 0
    print(result.to_table())
    print()
    print(
        f"-- {len(result)} row(s); request {executed.request_id}"
        + (f"; {described}" if described else "")
    )
    if executed.mismatch:
        print("warning: safe-mode mismatch; served the verified result",
              file=sys.stderr)
        return 8
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """``repro demo``: walk the paper's Examples 1-11."""
    catalog = build_catalog()
    relational = Optimizer.for_relational(catalog)
    navigational = Optimizer.for_navigational(catalog)
    for query in PAPER_QUERIES:
        print("=" * 70)
        print(f"Example {query.example}: {query.description}")
        print(f"  {query.sql}")
        optimizer = (
            navigational if query.example in ("10", "11") else relational
        )
        outcome = optimizer.optimize(query.sql)
        if outcome.changed:
            for step in outcome.steps:
                print(f"  [{step.rule}] {step.note}")
            print(f"  => {outcome.sql}")
        else:
            print("  (no rewrite applies)")
    return 0


# The exit-code taxonomy lives in repro.errors (single source of
# truth, shared with the --help epilogs and docs/cli.md); re-exported
# here for backward compatibility with callers of cli.exit_code_for.
exit_code_for = _exit_code_for


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    handlers = {
        "check": cmd_check,
        "optimize": cmd_optimize,
        "run": cmd_run,
        "explain": cmd_explain,
        "analyze-stats": cmd_analyze_stats,
        "serve": cmd_serve,
        "client": cmd_client,
        "demo": cmd_demo,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`): exit quietly
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
