"""Recursive-descent parser for the paper's SQL2 subset.

Grammar (informal)::

    statement    := query_expr | create_table | insert | update | delete
                    | txn_control
    query_expr   := query_term ((UNION | EXCEPT) [ALL] query_term)*
    query_term   := query_prim (INTERSECT [ALL] query_prim)*
    query_prim   := select_query | '(' query_expr ')'
    select_query := SELECT [ALL|DISTINCT] select_list
                    FROM table_ref (',' table_ref)*
                    [WHERE condition] [ORDER BY order_list]
    condition    := or-expression over comparisons, BETWEEN, IN,
                    IS [NOT] NULL, [NOT] EXISTS (query), NOT, parentheses
    create_table := CREATE TABLE name '(' element (',' element)* ')'
    insert       := INSERT INTO name ['(' cols ')'] VALUES row (',' row)*
    update       := UPDATE name SET col '=' operand (',' ...) [WHERE condition]
    delete       := DELETE FROM name [WHERE condition]
    txn_control  := (BEGIN | COMMIT | ROLLBACK) [TRANSACTION | WORK]

INTERSECT binds tighter than UNION/EXCEPT, matching the SQL standard.
"""

from __future__ import annotations

from ..errors import ParseError
from ..types.values import NULL
from .ast import (
    Assignment,
    BeginTransaction,
    CheckClause,
    ColumnDef,
    CommitTransaction,
    CreateTable,
    Delete,
    ForeignKeyClause,
    Insert,
    OrderItem,
    PrimaryKeyClause,
    Quantifier,
    Query,
    RollbackTransaction,
    SelectItem,
    SelectQuery,
    SetOperation,
    SetOpKind,
    Star,
    Statement,
    TableRef,
    UniqueClause,
    Update,
)
from .expressions import (
    Between,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    HostVar,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    conjoin,
    disjoin,
)
from .lexer import tokenize
from .tokens import Token, TokenType


class Parser:
    """Parses a token stream into statements."""

    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._pos = 0

    # ------------------------------------------------------------------
    # token-stream helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _at_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _accept_keyword(self, *names: str) -> Token | None:
        if self._at_keyword(*names):
            return self._advance()
        return None

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise self._error(f"expected {name}")
        return self._advance()

    def _at_punct(self, value: str) -> bool:
        token = self._peek()
        return token.type is TokenType.PUNCT and token.value == value

    def _accept_punct(self, value: str) -> bool:
        if self._at_punct(value):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> Token:
        if not self._at_punct(value):
            raise self._error(f"expected {value!r}")
        return self._advance()

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return str(token.value)
        # Non-reserved use of type keywords as names is not needed for the
        # paper's schema, so identifiers must be plain.
        raise self._error(f"expected {what}")

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        found = "end of input" if token.type is TokenType.EOF else repr(token.value)
        return ParseError(f"{message}, found {found}", token.line, token.column)

    # ------------------------------------------------------------------
    # entry points

    def parse_statement(self) -> Statement:
        """Parse a single statement, requiring all input be consumed."""
        statement = self._statement()
        self._accept_punct(";")
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return statement

    def parse_script(self) -> list[Statement]:
        """Parse a ';'-separated sequence of statements."""
        statements: list[Statement] = []
        while self._peek().type is not TokenType.EOF:
            statements.append(self._statement())
            while self._accept_punct(";"):
                pass
        return statements

    def _statement(self) -> Statement:
        if self._at_keyword("CREATE"):
            return self._create_table()
        if self._at_keyword("INSERT"):
            return self._insert()
        if self._at_keyword("UPDATE"):
            return self._update()
        if self._at_keyword("DELETE"):
            return self._delete()
        if self._at_keyword("BEGIN", "COMMIT", "ROLLBACK"):
            return self._transaction_control()
        return self._query_expr()

    # ------------------------------------------------------------------
    # queries

    def _query_expr(self) -> Query:
        left = self._query_term()
        while self._at_keyword("UNION", "EXCEPT"):
            kind = SetOpKind(self._advance().value)
            all_rows = self._accept_keyword("ALL") is not None
            right = self._query_term()
            left = SetOperation(kind, all_rows, left, right)
        return left

    def _query_term(self) -> Query:
        left = self._query_primary()
        while self._at_keyword("INTERSECT"):
            self._advance()
            all_rows = self._accept_keyword("ALL") is not None
            right = self._query_primary()
            left = SetOperation(SetOpKind.INTERSECT, all_rows, left, right)
        return left

    def _query_primary(self) -> Query:
        if self._accept_punct("("):
            query = self._query_expr()
            self._expect_punct(")")
            return query
        return self._select_query()

    def _select_query(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        quantifier = Quantifier.ALL
        if self._accept_keyword("DISTINCT"):
            quantifier = Quantifier.DISTINCT
        else:
            self._accept_keyword("ALL")
        select_list = self._select_list()
        self._expect_keyword("FROM")
        tables = [self._table_ref()]
        while self._accept_punct(","):
            tables.append(self._table_ref())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._condition()
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        return SelectQuery(
            quantifier=quantifier,
            select_list=tuple(select_list),
            tables=tuple(tables),
            where=where,
            order_by=tuple(order_by),
        )

    def _select_list(self) -> list[SelectItem | Star]:
        items: list[SelectItem | Star] = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem | Star:
        if self._accept_punct("*"):
            return Star()
        token = self._peek()
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek(1).type is TokenType.PUNCT
            and self._peek(1).value == "."
            and self._peek(2).type is TokenType.PUNCT
            and self._peek(2).value == "*"
        ):
            qualifier = self._expect_identifier()
            self._expect_punct(".")
            self._expect_punct("*")
            return Star(qualifier)
        expr = self._column_ref()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier("alias")
        return SelectItem(expr, alias)

    def _order_item(self) -> OrderItem:
        expr = self._column_ref()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr, ascending)

    def _table_ref(self) -> TableRef:
        name = self._expect_identifier("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier("alias")
        return TableRef(name, alias)

    # ------------------------------------------------------------------
    # conditions

    def _condition(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        parts = [self._and_expr()]
        while self._accept_keyword("OR"):
            parts.append(self._and_expr())
        return disjoin(parts) if len(parts) > 1 else parts[0]

    def _and_expr(self) -> Expr:
        parts = [self._not_expr()]
        while self._accept_keyword("AND"):
            parts.append(self._not_expr())
        return conjoin(parts) if len(parts) > 1 else parts[0]

    def _not_expr(self) -> Expr:
        if self._accept_keyword("NOT"):
            return Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        if self._at_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            query = self._query_expr()
            self._expect_punct(")")
            return Exists(query)
        if self._at_punct("("):
            # In this subset a parenthesized item at predicate position is
            # always a Boolean group (there is no scalar arithmetic).
            self._advance()
            inner = self._condition()
            self._expect_punct(")")
            return inner
        operand = self._operand()
        return self._predicate_tail(operand)

    def _predicate_tail(self, operand: Expr) -> Expr:
        token = self._peek()
        if token.type is TokenType.OPERATOR:
            op = str(self._advance().value)
            right = self._operand()
            return Comparison(op, operand, right)
        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return IsNull(operand, negated)
        negated = self._accept_keyword("NOT") is not None
        if self._accept_keyword("BETWEEN"):
            low = self._operand()
            self._expect_keyword("AND")
            high = self._operand()
            return Between(operand, low, high, negated)
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            if self._at_keyword("SELECT"):
                query = self._query_expr()
                self._expect_punct(")")
                return InSubquery(operand, query, negated)
            items = [self._operand()]
            while self._accept_punct(","):
                items.append(self._operand())
            self._expect_punct(")")
            return InList(operand, tuple(items), negated)
        if negated:
            raise self._error("expected BETWEEN or IN after NOT")
        raise self._error("expected a comparison, IS NULL, BETWEEN or IN")

    def _operand(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.HOST_VAR:
            self._advance()
            return HostVar(str(token.value))
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(NULL)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.type is TokenType.IDENTIFIER:
            return self._column_ref()
        raise self._error("expected a value or column reference")

    def _column_ref(self) -> ColumnRef:
        first = self._expect_identifier("column reference")
        if self._at_punct(".") and self._peek(1).type is TokenType.IDENTIFIER:
            self._advance()
            column = self._expect_identifier("column name")
            return ColumnRef(first, column)
        return ColumnRef(None, first)

    # ------------------------------------------------------------------
    # DDL

    def _create_table(self) -> CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_identifier("table name")
        self._expect_punct("(")
        columns: list[ColumnDef] = []
        constraints: list = []
        while True:
            if self._at_keyword("PRIMARY"):
                constraints.append(self._primary_key_clause())
            elif self._at_keyword("UNIQUE"):
                constraints.append(self._unique_clause())
            elif self._at_keyword("CHECK"):
                constraints.append(self._check_clause())
            elif self._at_keyword("FOREIGN"):
                constraints.append(self._foreign_key_clause())
            else:
                column, extra = self._column_def()
                columns.append(column)
                constraints.extend(extra)
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return CreateTable(name, tuple(columns), tuple(constraints))

    def _column_def(self) -> tuple[ColumnDef, list]:
        name = self._expect_identifier("column name")
        type_name, length = self._type_spec()
        not_null = False
        check: Expr | None = None
        extra: list = []
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
            elif self._at_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                extra.append(PrimaryKeyClause((name,)))
                not_null = True
            elif self._accept_keyword("UNIQUE"):
                extra.append(UniqueClause((name,)))
            elif self._at_keyword("CHECK"):
                self._advance()
                self._expect_punct("(")
                check = self._condition()
                self._expect_punct(")")
            elif self._accept_keyword("REFERENCES"):
                ref_table = self._expect_identifier("referenced table")
                ref_columns: tuple[str, ...] = ()
                if self._accept_punct("("):
                    ref_columns = self._column_name_list()
                extra.append(ForeignKeyClause((name,), ref_table, ref_columns))
            else:
                break
        return ColumnDef(name, type_name, length, not_null, check), extra

    def _type_spec(self) -> tuple[str, int | None]:
        token = self._peek()
        if token.is_keyword("INT", "INTEGER"):
            self._advance()
            return "INT", None
        if token.is_keyword("CHAR", "VARCHAR"):
            self._advance()
            length = None
            if self._accept_punct("("):
                size = self._peek()
                if size.type is not TokenType.NUMBER:
                    raise self._error("expected a length")
                self._advance()
                length = int(size.value)
                self._expect_punct(")")
            return str(token.value), length
        if token.type is TokenType.IDENTIFIER:
            # Permit user-defined / unrecognized type names (e.g. DECIMAL).
            self._advance()
            length = None
            if self._accept_punct("("):
                size = self._peek()
                if size.type is not TokenType.NUMBER:
                    raise self._error("expected a length")
                self._advance()
                length = int(size.value)
                self._expect_punct(")")
            return str(token.value), length
        raise self._error("expected a column type")

    def _column_name_list(self) -> tuple[str, ...]:
        names = [self._expect_identifier("column name")]
        while self._accept_punct(","):
            names.append(self._expect_identifier("column name"))
        self._expect_punct(")")
        return tuple(names)

    def _primary_key_clause(self) -> PrimaryKeyClause:
        self._expect_keyword("PRIMARY")
        self._expect_keyword("KEY")
        self._expect_punct("(")
        return PrimaryKeyClause(self._column_name_list())

    def _unique_clause(self) -> UniqueClause:
        self._expect_keyword("UNIQUE")
        self._expect_punct("(")
        return UniqueClause(self._column_name_list())

    def _check_clause(self) -> CheckClause:
        self._expect_keyword("CHECK")
        self._expect_punct("(")
        condition = self._condition()
        self._expect_punct(")")
        return CheckClause(condition)

    def _foreign_key_clause(self) -> ForeignKeyClause:
        self._expect_keyword("FOREIGN")
        self._expect_keyword("KEY")
        self._expect_punct("(")
        columns = self._column_name_list()
        self._expect_keyword("REFERENCES")
        ref_table = self._expect_identifier("referenced table")
        ref_columns: tuple[str, ...] = ()
        if self._accept_punct("("):
            ref_columns = self._column_name_list()
        return ForeignKeyClause(columns, ref_table, ref_columns)

    # ------------------------------------------------------------------
    # DML

    def _insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier("table name")
        columns: tuple[str, ...] | None = None
        if self._accept_punct("("):
            columns = self._column_name_list()
        self._expect_keyword("VALUES")
        rows = [self._values_row()]
        while self._accept_punct(","):
            rows.append(self._values_row())
        return Insert(table, columns, tuple(rows))

    def _update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier("table name")
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._condition()
        return Update(table, tuple(assignments), where)

    def _assignment(self) -> Assignment:
        column = self._expect_identifier("column name")
        token = self._peek()
        if token.type is not TokenType.OPERATOR or token.value != "=":
            raise self._error("expected '=' in SET assignment")
        self._advance()
        return Assignment(column, self._operand())

    def _delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier("table name")
        where = None
        if self._accept_keyword("WHERE"):
            where = self._condition()
        return Delete(table, where)

    def _transaction_control(self):
        token = self._advance()
        # Optional noise words SQL spells after the verb.
        self._accept_keyword("TRANSACTION") or self._accept_keyword("WORK")
        if token.is_keyword("BEGIN"):
            return BeginTransaction()
        if token.is_keyword("COMMIT"):
            return CommitTransaction()
        return RollbackTransaction()

    def _values_row(self) -> tuple:
        self._expect_punct("(")
        values = [self._literal_value()]
        while self._accept_punct(","):
            values.append(self._literal_value())
        self._expect_punct(")")
        return tuple(values)

    def _literal_value(self):
        token = self._peek()
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            self._advance()
            return token.value
        if token.type is TokenType.HOST_VAR:
            # Host variables in VALUES make INSERT parameterizable
            # (``executemany`` batches); the DML executor resolves them
            # against the statement's bindings.
            self._advance()
            return HostVar(str(token.value))
        if token.is_keyword("NULL"):
            self._advance()
            return NULL
        if token.is_keyword("TRUE"):
            self._advance()
            return True
        if token.is_keyword("FALSE"):
            self._advance()
            return False
        raise self._error("expected a literal value")


def parse(text: str) -> Statement:
    """Parse a single SQL statement."""
    return Parser(text).parse_statement()


def parse_query(text: str) -> Query:
    """Parse a statement and require it to be a query."""
    statement = parse(text)
    if not isinstance(statement, (SelectQuery, SetOperation)):
        raise ParseError("expected a query")
    return statement


def parse_script(text: str) -> list[Statement]:
    """Parse a ';'-separated script of statements."""
    return Parser(text).parse_script()


def parse_condition(text: str) -> Expr:
    """Parse a bare search condition (used by tests and the analyzer)."""
    parser = Parser(text)
    condition = parser._condition()
    if parser._peek().type is not TokenType.EOF:
        raise parser._error("unexpected trailing input")
    return condition
