"""Predicate and scalar expression AST.

Expressions are immutable dataclasses.  ``And``/``Or`` are *n*-ary (their
operands are tuples), which keeps CNF/DNF manipulation in
``repro.analysis.normal_forms`` simple.  Every node supports:

* ``children()`` — direct sub-expressions,
* ``replace(mapping)`` — structural substitution (used by rewrite rules
  to re-qualify column references when flattening subqueries),
* structural equality and hashing (used for dedup during normalization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from ..types.values import SqlValue, format_value

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

_NEGATED_OP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_FLIPPED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class Expr:
    """Base class for all expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions of this node."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of this expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def replace(self, mapping: "dict[Expr, Expr]") -> "Expr":
        """Return a copy with every node found in *mapping* substituted.

        Substitution happens top-down: if this node itself is a key in
        *mapping* the replacement is returned without descending.
        """
        if self in mapping:
            return mapping[self]
        return self._rebuild(lambda child: child.replace(mapping))

    def transform(self, fn: "Callable[[Expr], Expr | None]") -> "Expr":
        """Bottom-up rewrite: *fn* may return a replacement or ``None``."""
        rebuilt = self._rebuild(lambda child: child.transform(fn))
        result = fn(rebuilt)
        return rebuilt if result is None else result

    def _rebuild(self, fn: "Callable[[Expr], Expr]") -> "Expr":
        """Rebuild this node with children mapped through *fn*."""
        return self

    # Convenience constructors -----------------------------------------

    def and_(self, other: "Expr") -> "Expr":
        """``self AND other`` (flattened)."""
        return conjoin([self, other])

    def or_(self, other: "Expr") -> "Expr":
        """``self OR other`` (flattened)."""
        return disjoin([self, other])

    def negate(self) -> "Expr":
        """Logical negation, pushed onto the node when exact."""
        return Not(self)


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (number, string, boolean, or NULL)."""

    value: SqlValue

    def __repr__(self) -> str:
        return f"Literal({format_value(self.value)})"


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to a column, optionally qualified by a table alias."""

    qualifier: str | None
    column: str

    @property
    def key(self) -> tuple[str | None, str]:
        """``(qualifier, column)`` identity pair."""
        return (self.qualifier, self.column)

    def __repr__(self) -> str:
        if self.qualifier:
            return f"Col({self.qualifier}.{self.column})"
        return f"Col({self.column})"


@dataclass(frozen=True)
class HostVar(Expr):
    """A host (program) variable, written ``:NAME`` in SQL text.

    Its value is a constant supplied at execution time; the paper's
    analysis treats equality with a host variable exactly like equality
    with a literal constant (a "Type 1" condition).
    """

    name: str

    def __repr__(self) -> str:
        return f"HostVar(:{self.name})"


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator: {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def _rebuild(self, fn: Callable[[Expr], Expr]) -> Expr:
        return Comparison(self.op, fn(self.left), fn(self.right))

    def negate(self) -> Expr:
        """Negate by flipping the operator (exact under 2VL; under 3VL the
        engine never relies on this for NULL-sensitive reasoning)."""
        return Comparison(_NEGATED_OP[self.op], self.left, self.right)

    def flipped(self) -> "Comparison":
        """The same comparison with operands swapped (``a < b`` → ``b > a``)."""
        return Comparison(_FLIPPED_OP[self.op], self.right, self.left)


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction."""

    operands: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def _rebuild(self, fn: Callable[[Expr], Expr]) -> Expr:
        return And(tuple(fn(op) for op in self.operands))


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction."""

    operands: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.operands

    def _rebuild(self, fn: Callable[[Expr], Expr]) -> Expr:
        return Or(tuple(fn(op) for op in self.operands))


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def _rebuild(self, fn: Callable[[Expr], Expr]) -> Expr:
        return Not(fn(self.operand))

    def negate(self) -> Expr:
        return self.operand


@dataclass(frozen=True)
class IsNull(Expr):
    """``operand IS [NOT] NULL`` — never evaluates to UNKNOWN."""

    operand: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def _rebuild(self, fn: Callable[[Expr], Expr]) -> Expr:
        return IsNull(fn(self.operand), self.negated)

    def negate(self) -> Expr:
        return IsNull(self.operand, not self.negated)


@dataclass(frozen=True)
class Between(Expr):
    """``operand [NOT] BETWEEN low AND high`` (inclusive bounds)."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, self.low, self.high)

    def _rebuild(self, fn: Callable[[Expr], Expr]) -> Expr:
        return Between(fn(self.operand), fn(self.low), fn(self.high), self.negated)

    def expand(self) -> Expr:
        """The equivalent conjunction ``operand >= low AND operand <= high``."""
        base = And(
            (
                Comparison(">=", self.operand, self.low),
                Comparison("<=", self.operand, self.high),
            )
        )
        return Not(base) if self.negated else base


@dataclass(frozen=True)
class InList(Expr):
    """``operand [NOT] IN (v1, v2, ...)`` with expression items."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, *self.items)

    def _rebuild(self, fn: Callable[[Expr], Expr]) -> Expr:
        return InList(fn(self.operand), tuple(fn(i) for i in self.items), self.negated)

    def expand(self) -> Expr:
        """The equivalent disjunction of equalities."""
        base = disjoin([Comparison("=", self.operand, item) for item in self.items])
        return Not(base) if self.negated else base


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (subquery)``.

    The subquery is a ``repro.sql.ast.SelectQuery``; typed loosely here to
    avoid a circular import.  Exists never evaluates to UNKNOWN.
    """

    query: object
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return ()

    def negate(self) -> Expr:
        return Exists(self.query, not self.negated)

    def __hash__(self) -> int:
        return hash((id(self.query), self.negated))


@dataclass(frozen=True)
class InSubquery(Expr):
    """``operand [NOT] IN (subquery)``."""

    operand: Expr
    query: object
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def _rebuild(self, fn: Callable[[Expr], Expr]) -> Expr:
        return InSubquery(fn(self.operand), self.query, self.negated)

    def __hash__(self) -> int:
        return hash((self.operand, id(self.query), self.negated))


TRUE_LITERAL = Literal(True)
FALSE_LITERAL = Literal(False)


def conjoin(parts: Sequence[Expr]) -> Expr:
    """Build a flattened conjunction, dropping TRUE literals.

    Returns ``TRUE_LITERAL`` for an empty conjunction and unwraps a
    singleton, so callers can combine predicates without special cases.
    """
    flat: list[Expr] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.operands)
        elif part == TRUE_LITERAL:
            continue
        else:
            flat.append(part)
    if not flat:
        return TRUE_LITERAL
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjoin(parts: Sequence[Expr]) -> Expr:
    """Build a flattened disjunction (dual of :func:`conjoin`)."""
    flat: list[Expr] = []
    for part in parts:
        if isinstance(part, Or):
            flat.extend(part.operands)
        elif part == FALSE_LITERAL:
            continue
        else:
            flat.append(part)
    if not flat:
        return FALSE_LITERAL
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Top-level AND-components of *expr* (empty for None/TRUE)."""
    if expr is None or expr == TRUE_LITERAL:
        return []
    if isinstance(expr, And):
        result: list[Expr] = []
        for operand in expr.operands:
            result.extend(conjuncts(operand))
        return result
    return [expr]


def disjuncts(expr: Expr | None) -> list[Expr]:
    """Top-level OR-components of *expr* (empty for None/FALSE)."""
    if expr is None or expr == FALSE_LITERAL:
        return []
    if isinstance(expr, Or):
        result: list[Expr] = []
        for operand in expr.operands:
            result.extend(disjuncts(operand))
        return result
    return [expr]


def column_refs(expr: Expr | None) -> list[ColumnRef]:
    """All column references in *expr*, in traversal order."""
    if expr is None:
        return []
    return [node for node in expr.walk() if isinstance(node, ColumnRef)]


def host_vars(expr: Expr | None) -> list[HostVar]:
    """All host variables in *expr*, in traversal order."""
    if expr is None:
        return []
    return [node for node in expr.walk() if isinstance(node, HostVar)]


def contains_subquery(expr: Expr | None) -> bool:
    """Whether *expr* contains an EXISTS or IN-subquery node."""
    if expr is None:
        return False
    return any(isinstance(node, (Exists, InSubquery)) for node in expr.walk())
