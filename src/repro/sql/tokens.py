"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.sql.lexer.Lexer`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    HOST_VAR = "host_var"  # :NAME — a host (program) variable
    OPERATOR = "operator"  # = <> < <= > >=
    PUNCT = "punct"  # ( ) , . * ;
    EOF = "eof"


#: Reserved words recognized by the parser.  Matching is case-insensitive;
#: keywords are normalized to upper case.
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "AS",
        "BEGIN",
        "ASC",
        "BETWEEN",
        "BY",
        "CHAR",
        "CHECK",
        "COMMIT",
        "CREATE",
        "DELETE",
        "DESC",
        "DISTINCT",
        "EXCEPT",
        "EXISTS",
        "FALSE",
        "FOREIGN",
        "FROM",
        "IN",
        "INSERT",
        "INT",
        "INTEGER",
        "INTERSECT",
        "INTO",
        "IS",
        "KEY",
        "NOT",
        "NULL",
        "ON",
        "OR",
        "ORDER",
        "ROLLBACK",
        "PRIMARY",
        "REFERENCES",
        "SELECT",
        "SET",
        "TABLE",
        "TRANSACTION",
        "TRUE",
        "UNION",
        "UNIQUE",
        "UPDATE",
        "VALUES",
        "VARCHAR",
        "WHERE",
        "WORK",
    }
)

#: Multi-character operators, checked before single-character ones.
TWO_CHAR_OPERATORS = ("<>", "<=", ">=", "!=")
ONE_CHAR_OPERATORS = ("=", "<", ">")
PUNCTUATION = "(),.*;"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: the lexical category.
        value: normalized token text (keywords upper-cased, strings
            unquoted, numbers converted to int/float).
        line / column: one-based source position, for error messages.
    """

    type: TokenType
    value: Any
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        """True when this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.value!r}, {self.line}:{self.column})"
