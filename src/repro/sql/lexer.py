"""Hand-written lexer for the SQL2 subset used by the paper.

The lexer converts SQL text into a list of :class:`~repro.sql.tokens.Token`
objects.  It supports:

* case-insensitive keywords and identifiers (identifiers may contain
  ``_``, ``-`` and ``#`` after the first character, matching the paper's
  column names such as ``OEM-PNO``),
* double-quoted delimited identifiers,
* single-quoted string literals with ``''`` escaping,
* integer and decimal numeric literals,
* host variables written ``:NAME`` (e.g. ``:SUPPLIER-NO``),
* operators ``= <> != < <= > >=`` and punctuation ``( ) , . * ;``,
* ``--`` line comments and ``/* ... */`` block comments.
"""

from __future__ import annotations

from ..errors import LexerError
from .tokens import (
    KEYWORDS,
    ONE_CHAR_OPERATORS,
    PUNCTUATION,
    TWO_CHAR_OPERATORS,
    Token,
    TokenType,
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789-#$")
_DIGITS = frozenset("0123456789")


class Lexer:
    """Tokenizes a SQL string.

    Use :func:`tokenize` for the common one-shot case.
    """

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Scan the full input, returning tokens ending with an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._text):
                tokens.append(Token(TokenType.EOF, None, self._line, self._column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    # scanning helpers

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self._text[self._pos : self._pos + count]
        for ch in chunk:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return chunk

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self._pos, self._line, self._column)

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            ch = self._peek()
            if ch.isspace():
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    # ------------------------------------------------------------------
    # token producers

    def _next_token(self) -> Token:
        line, column = self._line, self._column
        ch = self._peek()

        if ch in _IDENT_START:
            return self._lex_word(line, column)
        if ch in _DIGITS:
            return self._lex_number(line, column)
        if ch == "'":
            return self._lex_string(line, column)
        if ch == '"':
            return self._lex_delimited_identifier(line, column)
        if ch == ":":
            return self._lex_host_variable(line, column)

        two = self._text[self._pos : self._pos + 2]
        if two in TWO_CHAR_OPERATORS:
            self._advance(2)
            value = "<>" if two == "!=" else two
            return Token(TokenType.OPERATOR, value, line, column)
        if ch in ONE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenType.OPERATOR, ch, line, column)
        if ch in PUNCTUATION:
            self._advance()
            return Token(TokenType.PUNCT, ch, line, column)

        raise self._error(f"unexpected character {ch!r}")

    def _lex_word(self, line: int, column: int) -> Token:
        start = self._pos
        self._advance()
        while self._peek() in _IDENT_CONT:
            # A '-' is part of an identifier only when followed by another
            # identifier character; otherwise it would swallow subtraction
            # or '--' comments.  The paper's schema uses names like OEM-PNO.
            if self._peek() == "-" and self._peek(1) not in _IDENT_CONT:
                break
            if self._peek() == "-" and self._peek(1) == "-":
                break
            self._advance()
        word = self._text[start : self._pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, line, column)
        return Token(TokenType.IDENTIFIER, upper, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek() in _DIGITS:
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1) in _DIGITS:
            is_float = True
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        text = self._text[start : self._pos]
        value: int | float = float(text) if is_float else int(text)
        return Token(TokenType.NUMBER, value, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        pieces: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":
                    pieces.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            pieces.append(ch)
            self._advance()
        return Token(TokenType.STRING, "".join(pieces), line, column)

    def _lex_delimited_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        start = self._pos
        while self._pos < len(self._text) and self._peek() != '"':
            self._advance()
        if self._pos >= len(self._text):
            raise self._error("unterminated delimited identifier")
        name = self._text[start : self._pos]
        self._advance()  # closing quote
        return Token(TokenType.IDENTIFIER, name.upper(), line, column)

    def _lex_host_variable(self, line: int, column: int) -> Token:
        self._advance()  # the colon
        if self._peek() not in _IDENT_START:
            raise self._error("expected identifier after ':'")
        start = self._pos
        self._advance()
        while self._peek() in _IDENT_CONT:
            if self._peek() == "-" and self._peek(1) not in _IDENT_CONT:
                break
            self._advance()
        name = self._text[start : self._pos].upper()
        return Token(TokenType.HOST_VAR, name, line, column)


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, returning a token list terminated by EOF."""
    return Lexer(text).tokenize()
