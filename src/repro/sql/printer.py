"""Render ASTs back to SQL text.

The printer produces canonical, re-parseable SQL.  Rewrite rules return
ASTs; :func:`to_sql` is how examples and benchmarks display the rewritten
query, and the round-trip property (`parse(to_sql(q)) == q` up to
normalization) is enforced by the test suite.
"""

from __future__ import annotations

from ..types.values import format_value
from .ast import (
    CheckClause,
    ColumnDef,
    CreateTable,
    ForeignKeyClause,
    Insert,
    OrderItem,
    PrimaryKeyClause,
    Quantifier,
    Query,
    SelectItem,
    SelectQuery,
    SetOperation,
    Star,
    Statement,
    TableRef,
    UniqueClause,
)
from .expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    HostVar,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
)

# Precedence levels used to decide where parentheses are required.
_PREC_OR = 1
_PREC_AND = 2
_PREC_NOT = 3
_PREC_ATOM = 4


def to_sql(node: Statement | Expr) -> str:
    """Render a statement or expression as SQL text."""
    if isinstance(node, SelectQuery):
        return _select_sql(node)
    if isinstance(node, SetOperation):
        return _setop_sql(node)
    if isinstance(node, CreateTable):
        return _create_table_sql(node)
    if isinstance(node, Insert):
        return _insert_sql(node)
    if isinstance(node, Expr):
        return _expr_sql(node, _PREC_OR)
    raise TypeError(f"cannot print {type(node).__name__}")


def _select_sql(query: SelectQuery) -> str:
    items = ", ".join(_select_item_sql(item) for item in query.select_list)
    quantifier = "DISTINCT " if query.quantifier is Quantifier.DISTINCT else ""
    tables = ", ".join(_table_ref_sql(table) for table in query.tables)
    sql = f"SELECT {quantifier}{items} FROM {tables}"
    if query.where is not None:
        sql += f" WHERE {_expr_sql(query.where, _PREC_OR)}"
    if query.order_by:
        order = ", ".join(_order_item_sql(item) for item in query.order_by)
        sql += f" ORDER BY {order}"
    return sql


def _setop_sql(operation: SetOperation) -> str:
    keyword = operation.kind.value + (" ALL" if operation.all else "")
    left = _setop_operand_sql(operation.left)
    right = _setop_operand_sql(operation.right)
    return f"{left} {keyword} {right}"


def _setop_operand_sql(query: Query) -> str:
    if isinstance(query, SetOperation):
        return f"({_setop_sql(query)})"
    return _select_sql(query)


def _select_item_sql(item: SelectItem | Star) -> str:
    if isinstance(item, Star):
        return f"{item.qualifier}.*" if item.qualifier else "*"
    text = _expr_sql(item.expr, _PREC_ATOM)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _table_ref_sql(table: TableRef) -> str:
    if table.alias:
        return f"{table.name} {table.alias}"
    return table.name


def _order_item_sql(item: OrderItem) -> str:
    text = _expr_sql(item.expr, _PREC_ATOM)
    return text if item.ascending else f"{text} DESC"


def _expr_sql(expr: Expr, parent_prec: int) -> str:
    text, prec = _expr_sql_prec(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr_sql_prec(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, Literal):
        return format_value(expr.value), _PREC_ATOM
    if isinstance(expr, ColumnRef):
        if expr.qualifier:
            return f"{expr.qualifier}.{expr.column}", _PREC_ATOM
        return expr.column, _PREC_ATOM
    if isinstance(expr, HostVar):
        return f":{expr.name}", _PREC_ATOM
    if isinstance(expr, Comparison):
        left = _expr_sql(expr.left, _PREC_ATOM)
        right = _expr_sql(expr.right, _PREC_ATOM)
        return f"{left} {expr.op} {right}", _PREC_ATOM
    if isinstance(expr, And):
        parts = [_expr_sql(op, _PREC_AND) for op in expr.operands]
        return " AND ".join(parts), _PREC_AND
    if isinstance(expr, Or):
        parts = [_expr_sql(op, _PREC_OR + 1) for op in expr.operands]
        return " OR ".join(parts), _PREC_OR
    if isinstance(expr, Not):
        return f"NOT {_expr_sql(expr.operand, _PREC_NOT)}", _PREC_NOT
    if isinstance(expr, IsNull):
        operand = _expr_sql(expr.operand, _PREC_ATOM)
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{operand} {middle}", _PREC_ATOM
    if isinstance(expr, Between):
        operand = _expr_sql(expr.operand, _PREC_ATOM)
        low = _expr_sql(expr.low, _PREC_ATOM)
        high = _expr_sql(expr.high, _PREC_ATOM)
        negation = "NOT " if expr.negated else ""
        return f"{operand} {negation}BETWEEN {low} AND {high}", _PREC_ATOM
    if isinstance(expr, InList):
        operand = _expr_sql(expr.operand, _PREC_ATOM)
        items = ", ".join(_expr_sql(item, _PREC_ATOM) for item in expr.items)
        negation = "NOT " if expr.negated else ""
        return f"{operand} {negation}IN ({items})", _PREC_ATOM
    if isinstance(expr, Exists):
        negation = "NOT " if expr.negated else ""
        return f"{negation}EXISTS ({to_sql(expr.query)})", _PREC_ATOM
    if isinstance(expr, InSubquery):
        operand = _expr_sql(expr.operand, _PREC_ATOM)
        negation = "NOT " if expr.negated else ""
        return f"{operand} {negation}IN ({to_sql(expr.query)})", _PREC_ATOM
    raise TypeError(f"cannot print expression {type(expr).__name__}")


def _create_table_sql(statement: CreateTable) -> str:
    elements = [_column_def_sql(column) for column in statement.columns]
    for constraint in statement.constraints:
        elements.append(_table_constraint_sql(constraint))
    body = ", ".join(elements)
    return f"CREATE TABLE {statement.name} ({body})"


def _column_def_sql(column: ColumnDef) -> str:
    type_text = column.type_name
    if column.length is not None:
        type_text += f"({column.length})"
    text = f"{column.name} {type_text}"
    if column.not_null:
        text += " NOT NULL"
    if column.check is not None:
        text += f" CHECK ({_expr_sql(column.check, _PREC_OR)})"
    return text


def _table_constraint_sql(constraint) -> str:
    if isinstance(constraint, PrimaryKeyClause):
        return f"PRIMARY KEY ({', '.join(constraint.columns)})"
    if isinstance(constraint, UniqueClause):
        return f"UNIQUE ({', '.join(constraint.columns)})"
    if isinstance(constraint, CheckClause):
        return f"CHECK ({_expr_sql(constraint.condition, _PREC_OR)})"
    if isinstance(constraint, ForeignKeyClause):
        text = f"FOREIGN KEY ({', '.join(constraint.columns)}) REFERENCES {constraint.ref_table}"
        if constraint.ref_columns:
            text += f" ({', '.join(constraint.ref_columns)})"
        return text
    raise TypeError(f"cannot print constraint {type(constraint).__name__}")


def _insert_sql(statement: Insert) -> str:
    columns = ""
    if statement.columns is not None:
        columns = f" ({', '.join(statement.columns)})"
    rows = ", ".join(
        "(" + ", ".join(format_value(value) for value in row) + ")"
        for row in statement.rows
    )
    return f"INSERT INTO {statement.table}{columns} VALUES {rows}"
