"""Statement-level AST: queries, set operations, DDL, and INSERT.

The query model follows the paper's Section 2 exactly:

* a **query specification** (:class:`SelectQuery`) is
  ``SELECT [ALL|DISTINCT] A FROM R, S, ... WHERE C`` — selection,
  projection and extended Cartesian product only;
* a **query expression** (:class:`SetOperation`) combines two query
  specifications with ``INTERSECT [ALL]``, ``EXCEPT [ALL]`` or
  ``UNION [ALL]``.

Subqueries (EXISTS / IN) appear inside WHERE predicates via the
expression nodes in :mod:`repro.sql.expressions`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from .expressions import ColumnRef, Expr


@dataclass(frozen=True)
class TableRef:
    """A table in a FROM clause, with an optional correlation name.

    ``effective_name`` is how the rest of the query refers to the table:
    the alias when present, otherwise the table name itself.
    """

    name: str
    alias: str | None = None

    @property
    def effective_name(self) -> str:
        """The correlation name the query uses for this table."""
        return self.alias or self.name

    def __repr__(self) -> str:
        if self.alias:
            return f"TableRef({self.name} {self.alias})"
        return f"TableRef({self.name})"


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: a column reference or ``*``.

    A ``None`` expression stands for a bare ``*``; a qualifier-only item
    (``S.*``) is a :class:`Star`.
    """

    expr: Expr
    alias: str | None = None

    def output_name(self) -> str:
        """The result-column name this item produces."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.column
        return "?column?"


@dataclass(frozen=True)
class Star:
    """``*`` or ``qualifier.*`` in a select list."""

    qualifier: str | None = None


class Quantifier(enum.Enum):
    """Projection duplicate-handling: the paper's ``All`` vs ``Dist``."""

    ALL = "ALL"
    DISTINCT = "DISTINCT"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY element."""

    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class SelectQuery:
    """A query specification (SELECT-FROM-WHERE block).

    Attributes:
        quantifier: ALL (keep duplicates) or DISTINCT (the paper's focus).
        select_list: projection entries; ``Star`` entries expand against a
            catalog during binding.
        tables: FROM-clause tables; multiple entries form an extended
            Cartesian product, per the paper's algebra.
        where: selection predicate or None.
        order_by: optional ordering (outside the paper's algebra but
            supported by the engine for deterministic output).
    """

    quantifier: Quantifier
    select_list: tuple[SelectItem | Star, ...]
    tables: tuple[TableRef, ...]
    where: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()

    @property
    def distinct(self) -> bool:
        """Whether this block eliminates duplicates."""
        return self.quantifier is Quantifier.DISTINCT

    def with_quantifier(self, quantifier: Quantifier) -> "SelectQuery":
        """A copy of this query with a different ALL/DISTINCT setting."""
        return replace(self, quantifier=quantifier)

    def with_where(self, where: Expr | None) -> "SelectQuery":
        """A copy of this query with a different WHERE predicate."""
        return replace(self, where=where)

    def with_tables(self, tables: Sequence[TableRef]) -> "SelectQuery":
        """A copy of this query with a different FROM clause."""
        return replace(self, tables=tuple(tables))

    def with_select_list(
        self, select_list: Sequence[SelectItem | Star]
    ) -> "SelectQuery":
        """A copy of this query with a different projection list."""
        return replace(self, select_list=tuple(select_list))

    def table_names(self) -> list[str]:
        """Effective (alias-resolved) names of the FROM-clause tables."""
        return [table.effective_name for table in self.tables]


class SetOpKind(enum.Enum):
    """The set operator of a query expression."""

    INTERSECT = "INTERSECT"
    EXCEPT = "EXCEPT"
    UNION = "UNION"


@dataclass(frozen=True)
class SetOperation:
    """A query expression: two operands joined by a set operator.

    ``all`` selects the multiset (``... ALL``) semantics: INTERSECT ALL
    keeps ``min(j, k)`` copies of a row and EXCEPT ALL ``max(j - k, 0)``,
    exactly as Section 2.2 of the paper defines.
    """

    kind: SetOpKind
    all: bool
    left: "Query"
    right: "Query"

    @property
    def distinct(self) -> bool:
        """Whether this set operation eliminates duplicates."""
        return not self.all


Query = SelectQuery | SetOperation


def iter_select_blocks(query: Query) -> Iterator[SelectQuery]:
    """Yield every SELECT block in *query*, left to right."""
    if isinstance(query, SelectQuery):
        yield query
    else:
        yield from iter_select_blocks(query.left)
        yield from iter_select_blocks(query.right)


# ----------------------------------------------------------------------
# DDL and DML statements


@dataclass(frozen=True)
class ColumnDef:
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str
    length: int | None = None
    not_null: bool = False
    check: Expr | None = None


@dataclass(frozen=True)
class PrimaryKeyClause:
    """``PRIMARY KEY (c1, ...)`` — implies NOT NULL on every column."""

    columns: tuple[str, ...]


@dataclass(frozen=True)
class UniqueClause:
    """``UNIQUE (c1, ...)`` — a candidate key; columns may be NULL.

    Following SQL2 (and the paper), NULL is treated as a single special
    value: at most one row may have NULL in the key.
    """

    columns: tuple[str, ...]


@dataclass(frozen=True)
class CheckClause:
    """``CHECK (condition)`` — must never be false for any stored row."""

    condition: Expr


@dataclass(frozen=True)
class ForeignKeyClause:
    """``FOREIGN KEY (c1, ...) REFERENCES t (d1, ...)``."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]


TableConstraint = PrimaryKeyClause | UniqueClause | CheckClause | ForeignKeyClause


@dataclass(frozen=True)
class CreateTable:
    """A parsed CREATE TABLE statement."""

    name: str
    columns: tuple[ColumnDef, ...]
    constraints: tuple[TableConstraint, ...] = ()


@dataclass(frozen=True)
class Insert:
    """A parsed INSERT statement with literal VALUES rows."""

    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple, ...]


@dataclass(frozen=True)
class Assignment:
    """One ``column = expr`` pair in an UPDATE SET list.

    The value may be any scalar operand — a literal, a host variable,
    or a column reference resolved against the row being updated.
    """

    column: str
    value: Expr


@dataclass(frozen=True)
class Update:
    """A parsed ``UPDATE table SET ... [WHERE ...]`` statement."""

    table: str
    assignments: tuple[Assignment, ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Delete:
    """A parsed ``DELETE FROM table [WHERE ...]`` statement."""

    table: str
    where: Expr | None = None


@dataclass(frozen=True)
class BeginTransaction:
    """``BEGIN [TRANSACTION | WORK]`` — open an explicit transaction."""


@dataclass(frozen=True)
class CommitTransaction:
    """``COMMIT [TRANSACTION | WORK]`` — publish and close."""


@dataclass(frozen=True)
class RollbackTransaction:
    """``ROLLBACK [TRANSACTION | WORK]`` — discard and close."""


Dml = Insert | Update | Delete
TransactionControl = BeginTransaction | CommitTransaction | RollbackTransaction
Statement = Query | CreateTable | Dml | TransactionControl


def referenced_tables(statement: Statement) -> set[str]:
    """Upper-cased names of every base table *statement* touches,
    subqueries (EXISTS / IN, arbitrarily nested) included.

    This is what scopes fingerprint-keyed cache entries to the tables
    they actually depend on — the invalidation granularity a commit
    uses.  Aliases do not appear (they are correlation names, not
    tables).
    """
    names: set[str] = set()
    _collect_tables(statement, names)
    return names


def _collect_tables(node, names: set[str]) -> None:
    if node is None:
        return
    if isinstance(node, SelectQuery):
        for table in node.tables:
            names.add(table.name.upper())
        _collect_expr_tables(node.where, names)
    elif isinstance(node, SetOperation):
        _collect_tables(node.left, names)
        _collect_tables(node.right, names)
    elif isinstance(node, Insert):
        names.add(node.table.upper())
    elif isinstance(node, Update):
        names.add(node.table.upper())
        _collect_expr_tables(node.where, names)
    elif isinstance(node, Delete):
        names.add(node.table.upper())
        _collect_expr_tables(node.where, names)


def _collect_expr_tables(expr, names: set[str]) -> None:
    if expr is None:
        return
    query = getattr(expr, "query", None)
    if query is not None:
        _collect_tables(query, names)
    for attr in ("left", "right", "operand", "low", "high"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr):
            _collect_expr_tables(child, names)
    for attr in ("operands", "items"):
        children = getattr(expr, attr, None)
        if children:
            for child in children:
                _collect_expr_tables(child, names)
