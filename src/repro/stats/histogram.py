"""Equi-depth histograms over comparable column values.

An equi-depth (equi-height) histogram splits the sorted non-NULL
values of a column into buckets holding roughly the same number of
rows; each bucket remembers its upper boundary and row count.  Range
selectivities then read off as "rows in buckets at or below the
probe value", with linear interpolation inside the boundary bucket
for numeric domains (non-numeric domains assume half the bucket).

The histogram never sees NULLs — callers account for the NULL
fraction separately (see
:meth:`repro.stats.collect.ColumnStats.range_selectivity`).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

#: Default bucket count for collected histograms.
DEFAULT_BUCKETS = 32


@dataclass(frozen=True)
class Histogram:
    """Equi-depth bucket boundaries and per-bucket row counts.

    Attributes:
        lower: smallest value in the column (inclusive lower bound of
            the first bucket).
        uppers: inclusive upper boundary of each bucket, ascending.
        counts: rows in each bucket; ``len(counts) == len(uppers)``.
    """

    lower: object
    uppers: tuple
    counts: tuple

    def __post_init__(self) -> None:
        if len(self.uppers) != len(self.counts) or not self.uppers:
            raise ValueError("histogram needs matching, non-empty buckets")

    @property
    def total(self) -> int:
        """Non-NULL rows summarized by this histogram."""
        return sum(self.counts)

    @classmethod
    def build(cls, sorted_values: list, buckets: int = DEFAULT_BUCKETS):
        """Equi-depth histogram of *sorted_values* (non-NULL, ascending).

        Returns None for an empty input.  With fewer distinct values
        than buckets the histogram simply has fewer (or denser)
        buckets; duplicates never split across a boundary check because
        boundaries are actual values.
        """
        n = len(sorted_values)
        if n == 0:
            return None
        buckets = max(1, min(buckets, n))
        uppers: list = []
        counts: list[int] = []
        for j in range(buckets):
            lo = (j * n) // buckets
            hi = ((j + 1) * n) // buckets
            if hi <= lo:
                continue
            uppers.append(sorted_values[hi - 1])
            counts.append(hi - lo)
        return cls(sorted_values[0], tuple(uppers), tuple(counts))

    # ------------------------------------------------------------------

    def fraction_at_most(self, value) -> float:
        """Estimated fraction of rows with ``column <= value``."""
        if self._lt(value, self.lower):
            return 0.0
        if not self._lt(value, self.uppers[-1]):
            return 1.0
        total = self.total
        done = bisect_left(self.uppers, value)
        below = sum(self.counts[:done])
        # The bucket containing *value*: interpolate when numeric,
        # otherwise assume half the bucket qualifies.
        bucket_lower = self.uppers[done - 1] if done else self.lower
        bucket_upper = self.uppers[done]
        frac = self._interpolate(bucket_lower, bucket_upper, value)
        return min(1.0, (below + frac * self.counts[done]) / total)

    def fraction_less(self, value) -> float:
        """Estimated fraction of rows with ``column < value``.

        Approximated as ``fraction_at_most`` minus nothing — the
        per-value equality mass inside a bucket is unknown, and for
        selectivity purposes the difference is below histogram
        resolution anyway.
        """
        if not self._lt(self.lower, value):
            return 0.0
        return self.fraction_at_most(value)

    @staticmethod
    def _lt(a, b) -> bool:
        try:
            return a < b
        except TypeError:
            return False

    @staticmethod
    def _interpolate(lower, upper, value) -> float:
        if isinstance(lower, (int, float)) and isinstance(upper, (int, float)):
            width = float(upper) - float(lower)
            if width <= 0:
                return 1.0
            try:
                return min(1.0, max(0.0, (float(value) - float(lower)) / width))
            except (TypeError, ValueError):
                return 0.5
        return 0.5
