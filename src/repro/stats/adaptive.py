"""The adaptive loop: fold observed cardinalities back into estimates.

EXPLAIN ANALYZE (PR 3) computes a per-node q-error — ``max(est/actual,
actual/est)`` — that nothing consumed until now.  After any analyzed
run, :func:`fold_analysis` walks the instrumented plan and records
each node's *observed* output cardinality in a process-wide
:class:`CorrectionStore`, keyed by ``(scoped database fingerprint,
plan-node fingerprint)``.  The database side of the key covers only
the data versions of the tables the subtree actually reads
(:func:`scoped_db_fingerprint`), so a committed write to one table
orphans only the corrections that depended on it — every other
table's hard-won observations keep hitting.  The
statistics estimator consults the store before trusting its model, so
a misestimated node is corrected on the very next planning of the
same shape and repeated queries converge on the right plan.

The store lives alongside the plan cache: its entries sit in a
registered :class:`~repro.cache.LRUCache` (so ``clear_all_caches``
and the global cache switch govern it too) and its monotonic
``version`` enters the plan-cache key for adaptive queries, which is
what forces a replan once new observations arrive.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from ..cache import LRUCache, MISSING

#: Weight of the newest observation when blending with prior ones.
EWMA_ALPHA = 0.5

#: Relative movement below which a fold does not bump the store
#: version — converged queries keep hitting the plan cache.
_SETTLED = 0.01


def plan_fingerprint(node: Any) -> tuple:
    """A structural fingerprint of a plan subtree.

    Built from operator labels (which embed table names, join keys,
    and predicate text), so two plans share a fingerprint exactly when
    they would execute the same physical subtree.  Hashable and
    deterministic across processes.
    """
    return (
        node.label(),
        tuple(plan_fingerprint(child) for child in node.children()),
    )


def plan_tables(node: Any) -> set[str]:
    """The base-table names a plan subtree reads (its scan leaves)."""
    tables: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        name = getattr(current, "table_name", None)
        if name is not None:
            tables.add(name)
        stack.extend(current.children())
    return tables


def scoped_db_fingerprint(database: Any, tables: set[str]) -> Any:
    """The database-side correction key for a subtree over *tables*.

    Scoped to the schema fingerprint plus the data versions of exactly
    the tables the subtree reads — a commit to any *other* table moves
    neither component, so corrections (like plans and statistics)
    survive unrelated writes.  Falls back to the whole-database
    fingerprint when per-table versions are unavailable, and to None
    (no correction traffic) when even that fails.
    """
    if tables:
        try:
            return (
                "tables",
                database.catalog.fingerprint(),
                database.table_versions(tables),
            )
        except Exception:
            pass
    try:
        return database.fingerprint()
    except Exception:
        return None


@dataclass(frozen=True)
class Correction:
    """One node's blended observed cardinality."""

    rows: float
    samples: int


class CorrectionStore:
    """Thread-safe observed-cardinality corrections, EWMA-blended.

    ``lookup`` is lock-free beyond the backing cache's own lock;
    ``fold`` serializes its read-modify-write on a store lock so
    concurrent analyzed runs never lose an observation.
    """

    def __init__(self, maxsize: int = 4096, alpha: float = EWMA_ALPHA) -> None:
        self._cache = LRUCache("corrections", maxsize=maxsize)
        self._alpha = alpha
        self._lock = threading.Lock()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter of material correction changes."""
        return self._version

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, db_fingerprint: Any, node_fingerprint: tuple) -> float | None:
        """The blended observed row count for a node, or None."""
        correction = self._cache.get((db_fingerprint, node_fingerprint))
        return None if correction is MISSING else correction.rows

    def fold(
        self,
        db_fingerprint: Any,
        node_fingerprint: tuple,
        actual_rows: float,
    ) -> bool:
        """Blend one observation in; True when the entry materially moved."""
        key = (db_fingerprint, node_fingerprint)
        with self._lock:
            prior = self._cache.get(key)
            if prior is MISSING:
                prior = None
            if prior is None:
                blended = Correction(float(actual_rows), 1)
            else:
                rows = (1.0 - self._alpha) * prior.rows + self._alpha * actual_rows
                blended = Correction(rows, prior.samples + 1)
            self._cache.put(key, blended)
            moved = (
                prior is None
                or abs(blended.rows - prior.rows) / max(prior.rows, 1.0) >= _SETTLED
            )
            if moved:
                self._version += 1
            return moved

    def clear(self) -> None:
        self._cache.clear()


#: Process-wide correction store, shared by every adaptive execution —
#: the adaptive sibling of ``GLOBAL_PLAN_CACHE``.
GLOBAL_CORRECTIONS = CorrectionStore()


def fold_analysis(
    database: Any,
    plan: Any,
    analysis: Any,
    corrections: CorrectionStore | None = None,
    stats: Any | None = None,
) -> int:
    """Record every executed node's actual rows; return nodes folded.

    *analysis* is the :class:`~repro.observe.analyze.PlanAnalysis` of
    an instrumented execution of exactly *plan*.  Nodes that never ran
    (``loops == 0``) are skipped — an unexecuted estimate is not
    evidence.  Fail-soft: a database whose fingerprint cannot be
    computed folds nothing.
    """
    store = corrections if corrections is not None else GLOBAL_CORRECTIONS
    folded = 0
    for node, fingerprint, tables in _walk_fingerprints(plan):
        node_stats = analysis.for_node(node)
        if node_stats is None or node_stats.loops == 0:
            continue
        db_fingerprint = scoped_db_fingerprint(database, tables)
        if db_fingerprint is None:
            continue
        actual = node_stats.rows / node_stats.loops
        if store.fold(db_fingerprint, fingerprint, actual):
            folded += 1
    if stats is not None and folded:
        stats.adaptive_corrections += folded
    return folded


def _walk_fingerprints(node: Any):
    """Yield ``(node, fingerprint, tables)`` triples, sharing child work."""
    child_pairs = [list(_walk_fingerprints(child)) for child in node.children()]
    fingerprint = (
        node.label(),
        tuple(pairs[0][1] for pairs in child_pairs),
    )
    tables: set[str] = set()
    for pairs in child_pairs:
        tables |= pairs[0][2]
    name = getattr(node, "table_name", None)
    if name is not None:
        tables = tables | {name}
    yield node, fingerprint, tables
    for pairs in child_pairs:
        yield from pairs
