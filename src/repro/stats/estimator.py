"""Statistics-driven cardinality estimation under the key machinery.

:class:`StatisticsCostModel` extends the heuristic
:class:`~repro.engine.cost.CostModel` with three layers, consulted in
order of confidence:

1. **Key bounds (exact).**  The paper's uniqueness machinery gives a
   bound no generic estimator has: when the join keys of one input
   cover a candidate key of that input's base table, every row of the
   other input matches at most one row — the join output is *bounded
   exactly* by the other input's cardinality (the intermediate-
   relation-size bound of the SPJU paper in PAPERS.md).  Likewise an
   index probe on a full candidate key returns at most one row.
2. **Collected statistics.**  Row counts, NULL fractions, distinct
   counts, and equi-depth histograms from the ANALYZE pass
   (:mod:`repro.stats.collect`) replace the fixed 0.1/0.3/0.5
   selectivity constants, and equi-joins divide by the larger join-key
   distinct count instead of ``max(|L|, |R|)``.
3. **Adaptive corrections.**  Observed cardinalities folded back by
   :mod:`repro.stats.adaptive` override both layers for plan shapes
   that have actually been executed — the estimator believes what it
   has seen over what it has modeled.

Every layer is fail-soft: any estimation error falls back to the
heuristic model (``estimator_fallbacks`` counts these, and the
degradation ladder demotes a misbehaving estimator to heuristic costs
entirely).
"""

from __future__ import annotations

from typing import Any

from ..engine.cost import (
    CostModel,
    PlanEstimate,
    _equi_join_rows,
    _sort_cost,
)
from ..engine.operators import (
    Filter,
    HashDistinct,
    HashJoin,
    IndexScan,
    PlanNode,
    Project,
    SeqScan,
    SortDistinct,
    SortMergeJoin,
)
from ..sql.expressions import (
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
)
from .adaptive import (
    CorrectionStore,
    plan_fingerprint,
    plan_tables,
    scoped_db_fingerprint,
)
from .collect import ColumnStats, StatisticsCatalog


class StatisticsCostModel(CostModel):
    """Cost model over collected statistics, key bounds, and corrections."""

    def __init__(
        self,
        database: Any,
        catalog: StatisticsCatalog,
        corrections: CorrectionStore | None = None,
        stats: Any | None = None,
    ) -> None:
        super().__init__(database)
        self.catalog = catalog
        self.corrections = corrections
        self.stats = stats
        self._aliases: dict[str, str] = {}
        self._in_estimate = False

    # ------------------------------------------------------------------

    def estimate(self, plan: PlanNode) -> PlanEstimate:
        """Recursively estimate *plan*; never raises.

        The top-level call maps correlation names to base tables for
        the whole tree and counts one ``stats_estimates``; recursive
        calls reuse both.  Estimation errors at any node fall back to
        the heuristic model for that subtree and count one
        ``estimator_fallbacks``.
        """
        top_level = not self._in_estimate
        if top_level:
            self._in_estimate = True
            self._aliases = _alias_tables(plan)
            if self.stats is not None:
                self.stats.stats_estimates += 1
        try:
            try:
                estimate = self._dispatch(plan)
            except Exception:
                if self.stats is not None:
                    self.stats.estimator_fallbacks += 1
                estimate = CostModel.estimate(self, plan)
            return self._corrected(plan, estimate)
        finally:
            if top_level:
                self._in_estimate = False

    def _dispatch(self, plan: PlanNode) -> PlanEstimate:
        if isinstance(plan, SeqScan):
            rows = float(self._table_rows(plan.table_name))
            return PlanEstimate(rows, rows)
        if isinstance(plan, IndexScan):
            return self._index_scan(plan)
        if isinstance(plan, (HashJoin, SortMergeJoin)):
            return self._equi_join(plan)
        if isinstance(plan, (SortDistinct, HashDistinct)):
            return self._distinct(plan)
        # Filter/Project/Sort/NestedLoop/semi-joins/set ops: the base
        # recipe already routes selectivities through our overridden
        # ``_atom_selectivity``, so the heuristic structure is reused
        # with statistics-backed numbers.
        return super().estimate(plan)

    # -- scans ----------------------------------------------------------

    def _table_rows(self, table_name: str) -> int:
        table = self.catalog.table(table_name)
        if table is not None:
            return table.row_count
        return len(self.database.table(table_name))

    def _index_scan(self, plan: IndexScan) -> PlanEstimate:
        schema = self.database.catalog.table(plan.table_name)
        probed = set(plan.key_columns)
        if any(set(key.columns) <= probed for key in schema.candidate_keys):
            rows = 1.0  # a full candidate-key probe returns at most one row
        else:
            rows = float(self._table_rows(plan.table_name))
            for column, expr in zip(plan.key_columns, plan.key_exprs):
                stats = self.catalog.column(plan.table_name, column)
                if stats is None:
                    rows *= 0.1
                elif isinstance(expr, Literal):
                    rows *= stats.eq_selectivity(expr.value)
                elif stats.n_distinct:
                    rows *= stats.non_null_fraction / stats.n_distinct
                else:
                    rows *= 0.0
            rows = max(rows, 0.0)
        if plan.residual is not None:
            rows *= self.predicate_selectivity(plan.residual)
        return PlanEstimate(rows, rows + 1.0)

    # -- joins ----------------------------------------------------------

    def _equi_join(self, plan: HashJoin | SortMergeJoin) -> PlanEstimate:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        left_ndv = self._keys_ndv(plan.left, plan.left_keys)
        right_ndv = self._keys_ndv(plan.right, plan.right_keys)
        if left_ndv is None and right_ndv is None:
            rows = _equi_join_rows(left.rows, right.rows)
        else:
            denominator = max(left_ndv or 1.0, right_ndv or 1.0, 1.0)
            rows = left.rows * right.rows / denominator
        # Theorem 1's exact bound: join keys covering a candidate key
        # of one side cap the output at the other side's cardinality.
        if self._keys_cover_candidate_key(plan.right, plan.right_keys):
            rows = min(rows, left.rows)
        if self._keys_cover_candidate_key(plan.left, plan.left_keys):
            rows = min(rows, right.rows)
        if isinstance(plan, HashJoin):
            cost = left.cost + right.cost + left.rows + right.rows
        else:
            cost = (
                left.cost
                + right.cost
                + _sort_cost(left.rows)
                + _sort_cost(right.rows)
            )
        if plan.residual is not None:
            rows *= self.predicate_selectivity(plan.residual)
        return PlanEstimate(rows, cost + rows)

    def _keys_ndv(self, side: PlanNode, key_positions: list[int]) -> float | None:
        """Distinct combinations of the join-key columns, from statistics.

        The product of per-column distinct counts (capped at the base
        table's row count — a table cannot have more key combinations
        than rows), or None when any column lacks statistics.
        """
        ndv = 1.0
        cap = None
        for position in key_positions:
            info = side.schema.columns[position]
            stats = self._column_stats(info.qualifier, info.name)
            if stats is None or stats.n_distinct == 0:
                return None
            ndv *= stats.n_distinct
            cap = max(cap or 0, stats.row_count)
        if cap is not None:
            ndv = min(ndv, float(cap))
        return ndv

    def _keys_cover_candidate_key(
        self, side: PlanNode, key_positions: list[int]
    ) -> bool:
        """Whether *side*'s join keys cover a candidate key of its table.

        Only scan chains (Filter*/Project over one base-table scan)
        qualify — their rows inherit the base table's uniqueness, so a
        covered candidate key means at most one match per probe row.
        """
        base = _scan_chain_base(side)
        if base is None:
            return False
        key_names = {
            side.schema.columns[position].name
            for position in key_positions
            if side.schema.columns[position].qualifier == base.alias
        }
        if len(key_names) != len(key_positions):
            return False
        schema = self.database.catalog.table(base.table_name)
        return any(set(key.columns) <= key_names for key in schema.candidate_keys)

    # -- distinct -------------------------------------------------------

    def _distinct(self, plan: SortDistinct | HashDistinct) -> PlanEstimate:
        child = self.estimate(plan.child)
        rows = None
        inner = plan.child
        if isinstance(inner, Project):
            source = inner.child.schema.columns
            ndv = 1.0
            for index in inner.indices:
                info = source[index]
                stats = self._column_stats(info.qualifier, info.name)
                if stats is None or stats.n_distinct == 0:
                    ndv = None
                    break
                ndv *= stats.n_distinct
            if ndv is not None:
                rows = min(child.rows, ndv)
        if rows is None:
            rows = child.rows * 0.6  # heuristic DISTINCT_RETENTION
        if isinstance(plan, SortDistinct):
            cost = child.cost + _sort_cost(child.rows)
        else:
            cost = child.cost + child.rows
        return PlanEstimate(rows, cost)

    # -- selectivities --------------------------------------------------

    def _atom_selectivity(self, atom: Expr) -> float:
        """Statistics-backed selectivity of one conjunct.

        Falls back to the heuristic constants whenever the referenced
        column has no collected statistics.
        """
        if isinstance(atom, Comparison):
            sides = ((atom.left, atom.right), (atom.right, atom.left))
            for ref, other in sides:
                if not isinstance(ref, ColumnRef):
                    continue
                if isinstance(other, ColumnRef):
                    return self._column_pair_selectivity(atom, ref, other)
                if isinstance(other, Literal):
                    stats = self._ref_stats(ref)
                    if stats is None:
                        break
                    if atom.op == "=":
                        return stats.eq_selectivity(other.value)
                    return stats.range_selectivity(atom.op, other.value)
                break
        elif isinstance(atom, IsNull):
            if isinstance(atom.operand, ColumnRef):
                stats = self._ref_stats(atom.operand)
                if stats is not None:
                    fraction = stats.null_selectivity()
                    return 1.0 - fraction if atom.negated else fraction
        elif isinstance(atom, Between):
            selectivity = self._between_selectivity(atom)
            if selectivity is not None:
                return selectivity
        elif isinstance(atom, InList):
            selectivity = self._in_list_selectivity(atom)
            if selectivity is not None:
                return selectivity
        return super()._atom_selectivity(atom)

    def _column_pair_selectivity(
        self, atom: Comparison, left: ColumnRef, right: ColumnRef
    ) -> float:
        if atom.op != "=":
            return super()._atom_selectivity(atom)
        left_stats = self._ref_stats(left)
        right_stats = self._ref_stats(right)
        if left_stats is None or right_stats is None:
            return super()._atom_selectivity(atom)
        denominator = max(left_stats.n_distinct, right_stats.n_distinct, 1)
        return 1.0 / denominator

    def _between_selectivity(self, atom: Between) -> float | None:
        if not isinstance(atom.operand, ColumnRef):
            return None
        if not isinstance(atom.low, Literal) or not isinstance(atom.high, Literal):
            return None
        stats = self._ref_stats(atom.operand)
        if stats is None:
            return None
        below_high = stats.range_selectivity("<=", atom.high.value)
        below_low = stats.range_selectivity("<", atom.low.value)
        inside = max(0.0, below_high - below_low)
        return max(0.0, stats.non_null_fraction - inside) if atom.negated else inside

    def _in_list_selectivity(self, atom: InList) -> float | None:
        if not isinstance(atom.operand, ColumnRef):
            return None
        if not all(isinstance(item, Literal) for item in atom.items):
            return None
        stats = self._ref_stats(atom.operand)
        if stats is None:
            return None
        inside = min(
            1.0, sum(stats.eq_selectivity(item.value) for item in atom.items)
        )
        return max(0.0, stats.non_null_fraction - inside) if atom.negated else inside

    # -- plumbing -------------------------------------------------------

    def _column_stats(
        self, qualifier: str | None, column: str
    ) -> ColumnStats | None:
        if qualifier is not None:
            table = self._aliases.get(qualifier)
            return self.catalog.column(table, column) if table else None
        owners = [
            table
            for table in set(self._aliases.values())
            if self.catalog.column(table, column) is not None
        ]
        if len(owners) != 1:
            return None
        return self.catalog.column(owners[0], column)

    def _ref_stats(self, ref: ColumnRef) -> ColumnStats | None:
        return self._column_stats(ref.qualifier, ref.column)

    def _corrected(self, plan: PlanNode, estimate: PlanEstimate) -> PlanEstimate:
        if self.corrections is None:
            return estimate
        # The key's database side is scoped to the tables this subtree
        # reads, matching what fold_analysis recorded — so corrections
        # survive commits to unrelated tables.
        db_fingerprint = scoped_db_fingerprint(self.database, plan_tables(plan))
        if db_fingerprint is None:
            return estimate
        observed = self.corrections.lookup(
            db_fingerprint, plan_fingerprint(plan)
        )
        if observed is None:
            return estimate
        cost = max(estimate.cost + observed - estimate.rows, observed)
        return PlanEstimate(observed, cost)


def _alias_tables(plan: PlanNode) -> dict[str, str]:
    """Correlation name → base table, from the plan's scan leaves."""
    aliases: dict[str, str] = {}
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, (SeqScan, IndexScan)):
            aliases[node.alias] = node.table_name
        stack.extend(node.children())
    return aliases


def _scan_chain_base(node: PlanNode) -> SeqScan | IndexScan | None:
    """The base-table scan under a chain of row-preserving unary nodes."""
    while isinstance(node, (Filter, Project)):
        node = node.child
    if isinstance(node, (SeqScan, IndexScan)):
        return node
    return None


def estimator_for(
    database: Any,
    options: Any = None,
    stats: Any | None = None,
) -> CostModel:
    """The cost model an execution should estimate with.

    Statistics-driven when the planner options ask for it
    (``use_stats``/``adaptive``) and the database carries *fresh*
    collected statistics; the heuristic model otherwise.  A stale or
    missing catalog counts one ``estimator_fallbacks`` — the signal
    the degradation ladder watches.
    """
    from .adaptive import GLOBAL_CORRECTIONS

    use_stats = bool(
        options is not None
        and (getattr(options, "use_stats", False) or getattr(options, "adaptive", False))
    )
    if not use_stats:
        return CostModel(database)
    catalog = getattr(database, "statistics", None)
    if catalog is None or not catalog.fresh_for(database):
        if stats is not None:
            stats.estimator_fallbacks += 1
        return CostModel(database)
    corrections = GLOBAL_CORRECTIONS if getattr(options, "adaptive", False) else None
    return StatisticsCostModel(
        database, catalog, corrections=corrections, stats=stats
    )
