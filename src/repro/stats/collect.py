"""The ANALYZE pass: table and column statistics for cost estimation.

:func:`collect_statistics` makes one pass over every table and
produces a :class:`StatisticsCatalog` — per-table row counts and, for
every column, NULL counts, distinct-value counts (exact below a
threshold, HyperLogLog above it), min/max, and an equi-depth
:class:`~repro.stats.histogram.Histogram`.  The catalog is stamped
with the database fingerprint at collection time, so any subsequent
DDL or data mutation renders it visibly stale
(:meth:`StatisticsCatalog.fresh_for`) and the estimator falls back to
heuristics instead of trusting outdated numbers.

Collection is explicit (``Database.analyze()``, the ``analyze-stats``
CLI subcommand, or ``run --stats`` which analyzes on first use) — the
engine never pays for statistics it was not asked to collect.
"""

from __future__ import annotations

import itertools
import math
import threading
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Iterable, Mapping

from ..types.values import is_null
from .histogram import DEFAULT_BUCKETS, Histogram

#: Columns with at most this many distinct values are counted exactly;
#: beyond it the HyperLogLog estimate takes over.
DISTINCT_THRESHOLD = 2048

#: Heuristic range selectivity used when a histogram is unavailable
#: (mirrors :data:`repro.engine.cost.RANGE_SELECTIVITY`).
_FALLBACK_RANGE = 0.3

_COLLECTIONS = itertools.count(1)


def _hash64(value: Any) -> int:
    """A deterministic 64-bit hash of a column value.

    ``hash()`` is salted per process; statistics must be reproducible
    across runs (and across cluster workers), so hash the typed repr.
    """
    payload = f"{type(value).__name__}:{value!r}".encode()
    return int.from_bytes(blake2b(payload, digest_size=8).digest(), "big")


class HyperLogLog:
    """A small standard HyperLogLog (2^p registers) over 64-bit hashes."""

    def __init__(self, p: int = 10) -> None:
        self.p = p
        self.m = 1 << p
        self.registers = bytearray(self.m)
        self._alpha = 0.7213 / (1.0 + 1.079 / self.m)

    def add(self, hashed: int) -> None:
        index = hashed & (self.m - 1)
        rest = hashed >> self.p
        rank = (64 - self.p) - rest.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    def estimate(self) -> int:
        harmonic = sum(2.0 ** -register for register in self.registers)
        raw = self._alpha * self.m * self.m / harmonic
        if raw <= 2.5 * self.m:
            zeros = self.registers.count(0)
            if zeros:
                raw = self.m * math.log(self.m / zeros)
        return max(1, round(raw))


@dataclass(frozen=True)
class ColumnStats:
    """Collected statistics for one column of one table."""

    name: str
    row_count: int
    null_count: int
    n_distinct: int
    exact_distinct: bool
    min_value: Any = None
    max_value: Any = None
    histogram: Histogram | None = None

    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    @property
    def non_null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return (self.row_count - self.null_count) / self.row_count

    # ------------------------------------------------------------------

    def eq_selectivity(self, value: Any) -> float:
        """Selectivity of ``column = value`` (uniform over distincts).

        Empty tables, all-NULL columns, and probe values provably
        outside [min, max] all estimate zero; ``= NULL`` is never TRUE,
        so a NULL probe is zero too.
        """
        if self.row_count == 0 or self.n_distinct == 0 or is_null(value):
            return 0.0
        if self._outside_range(value):
            return 0.0
        return self.non_null_fraction / self.n_distinct

    def range_selectivity(self, op: str, value: Any) -> float:
        """Selectivity of ``column <op> value`` for ``< <= > >= <>``."""
        if self.row_count == 0 or is_null(value):
            return 0.0
        if op == "<>":
            return max(0.0, self.non_null_fraction - self.eq_selectivity(value))
        if self.histogram is None:
            return _FALLBACK_RANGE * self.non_null_fraction
        if op == "<":
            fraction = self.histogram.fraction_less(value)
        elif op == "<=":
            fraction = self.histogram.fraction_at_most(value)
        elif op == ">":
            fraction = 1.0 - self.histogram.fraction_at_most(value)
        elif op == ">=":
            fraction = 1.0 - self.histogram.fraction_less(value)
        else:
            fraction = _FALLBACK_RANGE
        return max(0.0, min(1.0, fraction)) * self.non_null_fraction

    def null_selectivity(self) -> float:
        """Selectivity of ``column IS NULL``."""
        return self.null_fraction

    def _outside_range(self, value: Any) -> bool:
        if self.min_value is None or self.max_value is None:
            return False
        try:
            return value < self.min_value or value > self.max_value
        except TypeError:
            return False

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "nulls": self.null_count,
            "distinct": self.n_distinct,
            "exact": self.exact_distinct,
        }
        if self.min_value is not None:
            payload["min"] = self.min_value
            payload["max"] = self.max_value
        if self.histogram is not None:
            payload["histogram_buckets"] = len(self.histogram.counts)
        return payload


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column statistics for one table."""

    name: str
    row_count: int
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rows": self.row_count,
            "columns": {
                name: stats.as_dict() for name, stats in self.columns.items()
            },
        }


class StatisticsCatalog:
    """Every collected :class:`TableStats`, stamped with a fingerprint.

    Immutable after construction (re-ANALYZE builds a new catalog), so
    concurrent readers need no locking; ``version`` is a process-wide
    monotonic collection counter that plan-cache keys embed so a
    re-ANALYZE invalidates plans picked under the old numbers.
    """

    def __init__(
        self,
        tables: Mapping[str, TableStats],
        fingerprint: Any,
        table_versions: Mapping[str, int] | None = None,
    ) -> None:
        self._tables = dict(tables)
        self.fingerprint = fingerprint
        #: Per-table data versions at collection time — the scoped
        #: freshness stamp: a commit bumps only the tables it touched,
        #: so every other table's statistics remain provably current.
        self.table_versions = (
            dict(table_versions) if table_versions is not None else None
        )
        self.version = next(_COLLECTIONS)

    def table(self, name: str) -> TableStats | None:
        return self._tables.get(name)

    def column(self, table: str, column: str) -> ColumnStats | None:
        stats = self._tables.get(table)
        return stats.column(column) if stats is not None else None

    def table_names(self) -> list[str]:
        return list(self._tables)

    def fresh_for(self, database: Any) -> bool:
        """Whether *database* is unchanged since collection."""
        try:
            return not self.stale_tables(database)
        except Exception:
            return False

    def stale_tables(self, database: Any) -> set[str]:
        """Table names whose data moved since collection.

        The whole-catalog sentinel ``{"*"}`` comes back when staleness
        cannot be scoped — schema changes, a pre-versioning catalog, or
        a database without per-table versions — and means everything
        must be re-collected.
        """
        if self.table_versions is None or not hasattr(database, "table"):
            try:
                fresh = database.fingerprint() == self.fingerprint
            except Exception:
                fresh = False
            return set() if fresh else {"*"}
        try:
            names = set(database.table_names())
            if names != set(self.table_versions):
                return {"*"}  # tables created or dropped: full pass
            if database.catalog.fingerprint() != self.fingerprint[0]:
                return {"*"}  # DDL moved the schema: full pass
            return {
                name
                for name, version in self.table_versions.items()
                if database.table(name).version != version
            }
        except Exception:
            return {"*"}

    def as_dict(self) -> dict[str, Any]:
        return {
            name: stats.as_dict() for name, stats in sorted(self._tables.items())
        }


def _collect_column(
    name: str,
    values: Iterable[Any],
    *,
    buckets: int,
    distinct_threshold: int,
) -> ColumnStats:
    non_null: list[Any] = []
    null_count = 0
    row_count = 0
    exact: set[Any] | None = set()
    hll = HyperLogLog()
    for value in values:
        row_count += 1
        if is_null(value):
            null_count += 1
            continue
        non_null.append(value)
        hll.add(_hash64(value))
        if exact is not None:
            exact.add(value)
            if len(exact) > distinct_threshold:
                exact = None  # spill to the HyperLogLog estimate
    if exact is not None:
        n_distinct, exact_distinct = len(exact), True
    else:
        n_distinct, exact_distinct = hll.estimate(), False
    try:
        non_null.sort()
    except TypeError:
        # Mixed uncomparable values: keep counts, skip ordered stats.
        return ColumnStats(name, row_count, null_count, n_distinct, exact_distinct)
    histogram = Histogram.build(non_null, buckets) if non_null else None
    return ColumnStats(
        name,
        row_count,
        null_count,
        n_distinct,
        exact_distinct,
        min_value=non_null[0] if non_null else None,
        max_value=non_null[-1] if non_null else None,
        histogram=histogram,
    )


def collect_statistics(
    database: Any,
    *,
    buckets: int = DEFAULT_BUCKETS,
    distinct_threshold: int = DISTINCT_THRESHOLD,
    reuse: StatisticsCatalog | None = None,
    only: set[str] | None = None,
) -> StatisticsCatalog:
    """ANALYZE *database*: one pass per stale table, a fresh catalog out.

    With *reuse* (the prior catalog) and *only* (the stale table
    names), tables outside *only* carry their collected
    :class:`TableStats` over unscanned — the incremental re-ANALYZE a
    write to one table triggers never re-reads the others.
    """
    fingerprint = database.fingerprint()
    tables: dict[str, TableStats] = {}
    versions: dict[str, int] | None = {}
    for table_name in database.table_names():
        data = database.table(table_name)
        version = getattr(data, "version", None)
        if version is None:
            versions = None  # unversioned storage: whole-db freshness
        elif versions is not None:
            versions[table_name] = version
        if (
            reuse is not None
            and only is not None
            and table_name not in only
        ):
            kept = reuse.table(table_name)
            if kept is not None:
                tables[table_name] = kept
                continue
        column_names = [column.name for column in data.schema.columns]
        rows = data.rows
        columns = {
            column: _collect_column(
                column,
                (row[index] for row in rows),
                buckets=buckets,
                distinct_threshold=distinct_threshold,
            )
            for index, column in enumerate(column_names)
        }
        tables[table_name] = TableStats(table_name, len(rows), columns)
    return StatisticsCatalog(tables, fingerprint, table_versions=versions)


_ANALYZE_LOCK = threading.Lock()


def ensure_statistics(database: Any, **kwargs: Any) -> StatisticsCatalog:
    """The database's fresh statistics, collecting them if needed.

    Single-flight per process: concurrent callers of a stale database
    serialize on one collection instead of all re-analyzing.  The
    re-collection is *incremental*: only the tables whose data version
    moved since the prior catalog are re-scanned; every other table's
    statistics carry over by reference, so a write to table A never
    costs a re-ANALYZE of table B.
    """
    catalog = getattr(database, "statistics", None)
    if catalog is not None and catalog.fresh_for(database):
        return catalog
    with _ANALYZE_LOCK:
        catalog = getattr(database, "statistics", None)
        if catalog is not None:
            stale = catalog.stale_tables(database)
            if not stale:
                return catalog
            if "*" not in stale:
                fresh = collect_statistics(
                    database, reuse=catalog, only=stale, **kwargs
                )
                database.statistics = fresh
                return fresh
        catalog = collect_statistics(database, **kwargs)
        database.statistics = catalog
        return catalog
