"""Table statistics, cardinality estimation, and the adaptive loop.

The ANALYZE pass (:mod:`repro.stats.collect`) gathers row counts,
NULL/distinct counts, and equi-depth histograms; the estimator
(:mod:`repro.stats.estimator`) layers them under the paper's key
machinery — key-bound joins estimate against *exact* bounds — and the
adaptive loop (:mod:`repro.stats.adaptive`) folds observed
cardinalities from analyzed runs back into future estimates.  The
full story, with a worked example, is in ``docs/cost_model.md``.
"""

from .adaptive import (
    GLOBAL_CORRECTIONS,
    Correction,
    CorrectionStore,
    fold_analysis,
    plan_fingerprint,
)
from .collect import (
    ColumnStats,
    StatisticsCatalog,
    TableStats,
    collect_statistics,
    ensure_statistics,
)
from .estimator import StatisticsCostModel, estimator_for
from .histogram import Histogram

__all__ = [
    "ColumnStats",
    "Correction",
    "CorrectionStore",
    "GLOBAL_CORRECTIONS",
    "Histogram",
    "StatisticsCatalog",
    "StatisticsCostModel",
    "TableStats",
    "collect_statistics",
    "ensure_statistics",
    "estimator_for",
    "fold_analysis",
    "plan_fingerprint",
]
