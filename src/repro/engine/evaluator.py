"""Three-valued expression evaluation.

The evaluator computes scalar values for operands and
:class:`~repro.types.tristate.Tristate` truth values for predicates,
honoring SQL's WHERE-clause semantics: comparisons with NULL are
UNKNOWN, and the executor keeps a row only when the whole predicate is
definitely TRUE (the false-interpretation ⌊P⌋).

Correlated subqueries (EXISTS / IN) are evaluated through a
``subquery_runner`` callback installed by the executor; each invocation
is counted in ``stats.subquery_executions``, making the cost of naive
nested-loop strategies visible to benchmarks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..errors import ExecutionError, MissingHostVariableError
from ..sql.expressions import (
    Between,
    ColumnRef,
    Comparison,
    Exists,
    Expr,
    HostVar,
    InList,
    InSubquery,
    IsNull,
    Literal,
    Not,
    Or,
    And,
)
from ..types.tristate import FALSE, TRUE, UNKNOWN, Tristate
from ..types.values import SqlValue, compare_where, is_null
from .schema import Scope
from .stats import Stats

SubqueryRunner = Callable[[object, Scope], Iterable[tuple]]


class Evaluator:
    """Evaluates expressions against a scope.

    Attributes:
        params: host-variable bindings (name -> value).
        stats: counter sink; shared with the executor.
        subquery_runner: callback that executes a subquery AST under an
            outer scope, yielding result rows.  Unset evaluators reject
            subqueries.
    """

    def __init__(
        self,
        params: dict[str, SqlValue] | None = None,
        stats: Stats | None = None,
        subquery_runner: SubqueryRunner | None = None,
    ) -> None:
        self.params = {
            key.upper(): value for key, value in (params or {}).items()
        }
        self.stats = stats or Stats()
        self.subquery_runner = subquery_runner

    # ------------------------------------------------------------------
    # scalar operands

    def value(self, expr: Expr, scope: Scope) -> SqlValue:
        """Evaluate a scalar operand to a SQL value."""
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            return scope.resolve(expr)
        if isinstance(expr, HostVar):
            if expr.name not in self.params:
                raise MissingHostVariableError(expr.name)
            return self.params[expr.name]
        raise ExecutionError(
            f"expression {type(expr).__name__} is not a scalar operand"
        )

    # ------------------------------------------------------------------
    # predicates

    def predicate(self, expr: Expr, scope: Scope) -> Tristate:
        """Evaluate a search condition to a three-valued truth value."""
        if isinstance(expr, Literal):
            if is_null(expr.value):
                return UNKNOWN
            if isinstance(expr.value, bool):
                return TRUE if expr.value else FALSE
            raise ExecutionError(
                f"literal {expr.value!r} used where a condition is required"
            )
        if isinstance(expr, Comparison):
            left = self.value(expr.left, scope)
            right = self.value(expr.right, scope)
            return compare_where(expr.op, left, right)
        if isinstance(expr, And):
            result = TRUE
            for operand in expr.operands:
                result = result & self.predicate(operand, scope)
                if result is FALSE:
                    return FALSE
            return result
        if isinstance(expr, Or):
            result = FALSE
            for operand in expr.operands:
                result = result | self.predicate(operand, scope)
                if result is TRUE:
                    return TRUE
            return result
        if isinstance(expr, Not):
            return ~self.predicate(expr.operand, scope)
        if isinstance(expr, IsNull):
            null = is_null(self.value(expr.operand, scope))
            outcome = null != expr.negated
            return TRUE if outcome else FALSE
        if isinstance(expr, Between):
            return self._between(expr, scope)
        if isinstance(expr, InList):
            return self._in_list(expr, scope)
        if isinstance(expr, Exists):
            return self._exists(expr, scope)
        if isinstance(expr, InSubquery):
            return self._in_subquery(expr, scope)
        raise ExecutionError(f"cannot evaluate {type(expr).__name__} as a condition")

    def qualifies(self, expr: Expr | None, scope: Scope) -> bool:
        """WHERE-clause row test: the false-interpretation of *expr*."""
        if expr is None:
            return True
        self.stats.predicate_evals += 1
        return self.predicate(expr, scope).false_interpreted()

    # ------------------------------------------------------------------
    # helpers

    def _between(self, expr: Between, scope: Scope) -> Tristate:
        operand = self.value(expr.operand, scope)
        low = self.value(expr.low, scope)
        high = self.value(expr.high, scope)
        result = compare_where(">=", operand, low) & compare_where(
            "<=", operand, high
        )
        return ~result if expr.negated else result

    def _in_list(self, expr: InList, scope: Scope) -> Tristate:
        operand = self.value(expr.operand, scope)
        result = FALSE
        for item in expr.items:
            result = result | compare_where("=", operand, self.value(item, scope))
            if result is TRUE:
                break
        return ~result if expr.negated else result

    def _run_subquery(self, query: object, scope: Scope) -> Iterable[tuple]:
        if self.subquery_runner is None:
            raise ExecutionError("this evaluator cannot execute subqueries")
        self.stats.subquery_executions += 1
        return self.subquery_runner(query, scope)

    def _exists(self, expr: Exists, scope: Scope) -> Tristate:
        found = False
        for _ in self._run_subquery(expr.query, scope):
            found = True
            break
        outcome = found != expr.negated
        return TRUE if outcome else FALSE

    def _in_subquery(self, expr: InSubquery, scope: Scope) -> Tristate:
        operand = self.value(expr.operand, scope)
        result = FALSE
        for row in self._run_subquery(expr.query, scope):
            if len(row) != 1:
                raise ExecutionError(
                    "IN subquery must produce exactly one column"
                )
            result = result | compare_where("=", operand, row[0])
            if result is TRUE:
                break
        return ~result if expr.negated else result
