"""Multiset execution engine with three-valued logic."""

from .cost import CostModel, PlanEstimate
from .database import Database
from .evaluator import Evaluator
from .executor import Executor, execute
from .planner import Planner, PlannerOptions, execute_plan, execute_planned
from .result import Result
from .schema import ColumnInfo, RelSchema, Scope
from .stats import Stats
from .table_data import TableData

__all__ = [
    "ColumnInfo",
    "CostModel",
    "PlanEstimate",
    "Database",
    "Evaluator",
    "Executor",
    "Planner",
    "PlannerOptions",
    "RelSchema",
    "Result",
    "Scope",
    "Stats",
    "TableData",
    "execute",
    "execute_plan",
    "execute_planned",
]
