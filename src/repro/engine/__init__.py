"""Multiset execution engine with three-valued logic."""

from .columnar import (
    DEFAULT_BATCH_ROWS,
    ENGINE_MODES,
    ColumnBatch,
    compile_batch_filter,
    compile_batch_predicate,
    default_engine_mode,
    resolve_engine_mode,
    set_default_engine_mode,
)
from .compile import compile_filter, compile_predicate, set_compilation_enabled
from .cost import CostModel, PlanEstimate
from .database import Database
from .evaluator import Evaluator
from .executor import Executor, execute
from .parallel import (
    MorselPool,
    ParallelExecution,
    ParallelOptions,
    parallel_execution,
    shared_pool,
)
from .plan_cache import GLOBAL_PLAN_CACHE, PlanCache
from .planner import Planner, PlannerOptions, execute_plan, execute_planned
from .result import Result
from .schema import ColumnInfo, RelSchema, Scope
from .stats import Stats
from .table_data import TableData

__all__ = [
    "ColumnBatch",
    "ColumnInfo",
    "CostModel",
    "DEFAULT_BATCH_ROWS",
    "ENGINE_MODES",
    "GLOBAL_PLAN_CACHE",
    "PlanCache",
    "PlanEstimate",
    "Database",
    "Evaluator",
    "Executor",
    "MorselPool",
    "ParallelExecution",
    "ParallelOptions",
    "Planner",
    "PlannerOptions",
    "RelSchema",
    "Result",
    "Scope",
    "Stats",
    "TableData",
    "compile_batch_filter",
    "compile_batch_predicate",
    "compile_filter",
    "compile_predicate",
    "default_engine_mode",
    "execute",
    "execute_plan",
    "execute_planned",
    "parallel_execution",
    "resolve_engine_mode",
    "set_compilation_enabled",
    "set_default_engine_mode",
    "shared_pool",
]
