"""Multiset execution engine with three-valued logic."""

from .compile import compile_filter, compile_predicate, set_compilation_enabled
from .cost import CostModel, PlanEstimate
from .database import Database
from .evaluator import Evaluator
from .executor import Executor, execute
from .parallel import (
    MorselPool,
    ParallelExecution,
    ParallelOptions,
    parallel_execution,
    shared_pool,
)
from .plan_cache import GLOBAL_PLAN_CACHE, PlanCache
from .planner import Planner, PlannerOptions, execute_plan, execute_planned
from .result import Result
from .schema import ColumnInfo, RelSchema, Scope
from .stats import Stats
from .table_data import TableData

__all__ = [
    "ColumnInfo",
    "CostModel",
    "GLOBAL_PLAN_CACHE",
    "PlanCache",
    "PlanEstimate",
    "Database",
    "Evaluator",
    "Executor",
    "MorselPool",
    "ParallelExecution",
    "ParallelOptions",
    "Planner",
    "PlannerOptions",
    "RelSchema",
    "Result",
    "Scope",
    "Stats",
    "TableData",
    "compile_filter",
    "compile_predicate",
    "execute",
    "execute_plan",
    "execute_planned",
    "parallel_execution",
    "set_compilation_enabled",
    "shared_pool",
]
