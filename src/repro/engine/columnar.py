"""Columnar execution: morsel-sized batches and vectorized kernels.

The tuple interpreter pays a Python-level dispatch per row — per
predicate, per projection, per join probe.  This module amortizes that
dispatch over *morsel-sized column batches*: a :class:`ColumnBatch`
holds one Python list per column plus a null bitmap, and operators work
on whole vectors with C-speed builtins (``zip``, ``map``,
``itertools.compress``, comprehensions) instead of row loops.

Masks
-----

Selection and three-valued truth vectors are **byte-lane integer
masks**: a mask is a Python int in which row *i* occupies byte *i*
(little-endian) holding ``0x00`` or ``0x01``.  For 0/1 lanes the plain
integer operators are lane-wise: ``&`` is AND, ``|`` is OR, and NOT is
XOR against the all-ones mask.  ``mask.bit_count()`` counts selected
rows (each lane contributes one bit), and
``mask.to_bytes(n, "little")`` is directly a selector for
:func:`itertools.compress` — one arbitrary-precision int op per batch
replaces a per-row Python loop.

Three-valued logic
------------------

A batch predicate returns a *pair* of masks ``(true, unknown)``; lanes
in neither are FALSE.  The Kleene connectives fold lane-wise exactly
like :mod:`repro.types.tristate`: for AND, ``t = t1 & t2`` and a lane
is false when false in either input; for OR, ``t = t1 | t2`` and a lane
is false only when false in both.  NULL lanes (from the per-column null
bitmaps) enter comparisons as UNKNOWN, reproducing
:func:`repro.types.values.compare_where` bit for bit.

Soundness
---------

Every comparison kernel has a *fast lane* (a native comprehension,
taken only when the batch's type census proves it agrees with
``compare_where``) and an *exact lane* (a per-row ``compare_where``
loop).  Anything the row compiler in :mod:`repro.engine.compile` cannot
compile — subqueries, outer references, unbound host variables — is
rejected here for the same reason, and the caller falls back to the
tuple interpreter, which remains the verified reference semantics.

Fault injection: batch compilation consults the ``compile`` site, and
armed ``vectorized_eval`` faults instrument every returned kernel (and,
via :func:`batch_fault_check`, each non-predicate vectorized operator),
so the chaos suite can force the vectorized→interpreter demotion ladder
mid-stream.
"""

from __future__ import annotations

import os
from itertools import compress, islice
from typing import Callable, Iterable, Iterator, Sequence

from ..resilience.faults import FAULTS, SITE_COMPILE, SITE_VECTORIZED_EVAL
from ..sql.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    HostVar,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from ..types.tristate import FALSE, TRUE, UNKNOWN, Tristate
from ..types.values import NULL as _NULL_SENTINEL
from ..types.values import SqlValue, compare_where, is_null
from .compile import CannotCompile, compilation_enabled
from .schema import RelSchema

#: Rows per batch — matches the default morsel size, so the parallel
#: pool can be fed whole batches without re-chunking.
DEFAULT_BATCH_ROWS = 2048

#: The engine_mode knob's legal values.
ENGINE_MODES = ("tuple", "vectorized", "auto")

#: Environment override for the process default (the CI vectorized leg
#: runs the ordinary test suite with ``REPRO_ENGINE_MODE=vectorized``).
ENV_ENGINE_MODE = "REPRO_ENGINE_MODE"

_default_mode: str | None = None


def default_engine_mode() -> str:
    """The process-wide default engine mode.

    Resolution order: :func:`set_default_engine_mode`, then the
    ``REPRO_ENGINE_MODE`` environment variable, then ``"tuple"`` — the
    verified interpreter stays the default unless somebody opts in.
    """
    if _default_mode is not None:
        return _default_mode
    mode = os.environ.get(ENV_ENGINE_MODE, "")
    return mode if mode in ENGINE_MODES else "tuple"


def set_default_engine_mode(mode: str | None) -> str | None:
    """Set (or with ``None`` reset) the process default engine mode;
    returns the previous override for restore-in-finally idiom."""
    global _default_mode
    if mode is not None and mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode {mode!r}")
    previous = _default_mode
    _default_mode = mode
    return previous


def resolve_engine_mode(mode: str | None) -> str:
    """Validate an explicit mode, or fall back to the process default."""
    if mode is None:
        return default_engine_mode()
    if mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode {mode!r}")
    return mode


def batch_fault_check() -> None:
    """One ``vectorized_eval`` trigger opportunity (non-predicate
    vectorized operators call this once per batch)."""
    if FAULTS.armed:
        FAULTS.check(SITE_VECTORIZED_EVAL)


# ----------------------------------------------------------------------
# the batch value type

class ColumnBatch:
    """An immutable morsel of rows in columnar layout.

    Attributes:
        columns: one list per output column, all of equal length.
        null_masks: per-column byte-lane masks marking NULL lanes.
        length: number of rows in the batch.

    Batches are shared freely (the per-table batch cache hands the same
    objects to every execution), so neither the column lists nor the
    masks may be mutated — operators derive new batches via
    :meth:`select` and :meth:`project`.
    """

    __slots__ = ("columns", "null_masks", "length", "_ones")

    def __init__(
        self,
        columns: list[list],
        null_masks: list[int],
        length: int,
    ) -> None:
        self.columns = columns
        self.null_masks = null_masks
        self.length = length
        self._ones: int | None = None

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], width: int) -> "ColumnBatch":
        """Transpose *rows* (each of *width* values) into a batch."""
        length = len(rows)
        if length == 0:
            return cls([[] for _ in range(width)], [0] * width, 0)
        columns = [list(column) for column in zip(*rows)]
        null_masks = [
            int.from_bytes(bytes(map(is_null, column)), "little")
            for column in columns
        ]
        return cls(columns, null_masks, length)

    @property
    def ones(self) -> int:
        """The all-true mask for this batch (``0x01`` in every lane)."""
        mask = self._ones
        if mask is None:
            mask = int.from_bytes(b"\x01" * self.length, "little")
            self._ones = mask
        return mask

    def to_rows(self) -> list[tuple]:
        """The batch as a list of row tuples (one ``zip`` transpose)."""
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    def iter_rows(self) -> Iterator[tuple]:
        """Iterate row tuples without materializing the whole list."""
        if not self.columns:
            return iter([()] * self.length)
        return zip(*self.columns)

    def select(self, mask: int) -> "ColumnBatch":
        """Rows whose lane is set in *mask*, in order (a new batch)."""
        length = mask.bit_count()
        if length == self.length:
            return self
        if length == 0:
            return ColumnBatch([[] for _ in self.columns],
                               [0] * len(self.columns), 0)
        selector = mask.to_bytes(self.length, "little")
        columns = [list(compress(col, selector)) for col in self.columns]
        null_masks = [
            int.from_bytes(
                bytes(compress(nulls.to_bytes(self.length, "little"),
                               selector)),
                "little",
            ) if nulls else 0
            for nulls in self.null_masks
        ]
        return ColumnBatch(columns, null_masks, length)

    def project(self, indices: Sequence[int]) -> "ColumnBatch":
        """Column slice: reorder/duplicate/drop columns, zero copying."""
        return ColumnBatch(
            [self.columns[i] for i in indices],
            [self.null_masks[i] for i in indices],
            self.length,
        )

    def sort_keys(self, indices: Sequence[int] | None = None) -> list[tuple]:
        """Canonical per-row sort keys (``row_sort_key`` vectorized).

        One comprehension per column computes the type-ranked
        :func:`~repro.types.values.sort_key` vector; ``zip`` transposes
        them into the per-row key tuples DISTINCT, set operations, and
        hash joins use for ≐ row identity.
        """
        from ..types.values import sort_key

        columns = (
            self.columns if indices is None
            else [self.columns[i] for i in indices]
        )
        if not columns:
            return [()] * self.length
        key_columns = [[sort_key(v) for v in column] for column in columns]
        return list(zip(*key_columns))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnBatch(rows={self.length}, "
            f"columns={len(self.columns)})"
        )


def batches_from_rows(
    rows: Iterable[tuple], width: int, batch_rows: int
) -> Iterator[ColumnBatch]:
    """Re-batch a row stream into morsel-sized :class:`ColumnBatch`\\ es.

    This is the tuple→columnar adapter: the default
    ``PlanNode.batches`` and every mid-stream demotion path use it, so
    vectorized parents can consume any child — including one that just
    fell back to the interpreter.
    """
    iterator = iter(rows)
    while True:
        chunk = list(islice(iterator, batch_rows))
        if not chunk:
            return
        yield ColumnBatch.from_rows(chunk, width)


# ----------------------------------------------------------------------
# batch predicate compilation

#: A compiled batch predicate: batch -> (true_mask, unknown_mask).
BatchPredicateFn = Callable[[ColumnBatch], tuple[int, int]]
#: A compiled batch filter: batch -> selection mask (⌊P⌋ lanes).
BatchFilterFn = Callable[[ColumnBatch], int]

#: Operand tags used by the kernel builders below.
_CONST = "const"
_COL = "col"


def compile_batch_predicate(
    expr: Expr,
    schema: RelSchema,
    params: dict[str, SqlValue] | None = None,
) -> BatchPredicateFn | None:
    """Compile a search condition into a mask-pair kernel.

    Mirrors :func:`repro.engine.compile.compile_predicate` node for
    node — same compilability frontier, same constant folding, same
    fault sites (``compile`` at build time, ``vectorized_eval`` per
    batch evaluation).  Returns ``None`` when the expression needs the
    interpreter; callers then run the tuple path re-batched.
    """
    if not compilation_enabled():
        return None
    if FAULTS.armed:
        FAULTS.check(SITE_COMPILE)
    try:
        kernel, const = _node(expr, schema, params or {})
    except CannotCompile:
        return None
    if const is not None:
        kernel = _const_kernel(const)
    if FAULTS.armed:
        kernel = FAULTS.wrap_callable(SITE_VECTORIZED_EVAL, kernel)
    return kernel


def compile_batch_filter(
    expr: Expr | None,
    schema: RelSchema,
    params: dict[str, SqlValue] | None = None,
) -> BatchFilterFn | None:
    """Compile a WHERE clause into a selection-mask kernel (⌊P⌋: keep
    only lanes that are definitely TRUE)."""
    if expr is None:
        return None
    predicate = compile_batch_predicate(expr, schema, params)
    if predicate is None:
        return None

    def kernel(batch: ColumnBatch) -> int:
        true_mask, _unknown = predicate(batch)
        return true_mask

    return kernel


def _const_masks(const: Tristate, ones: int) -> tuple[int, int]:
    if const is TRUE:
        return ones, 0
    if const is UNKNOWN:
        return 0, ones
    return 0, 0


def _const_kernel(const: Tristate) -> BatchPredicateFn:
    def kernel(batch: ColumnBatch) -> tuple[int, int]:
        return _const_masks(const, batch.ones)

    return kernel


def _slow_masks(op: str, pairs: Iterable[tuple], n: int) -> tuple[int, int]:
    """The exact lane: per-row ``compare_where``, reference semantics."""
    true_lanes = bytearray(n)
    unknown_lanes = bytearray(n)
    for i, (left, right) in enumerate(pairs):
        result = compare_where(op, left, right)
        if result is TRUE:
            true_lanes[i] = 1
        elif result is UNKNOWN:
            unknown_lanes[i] = 1
    return (
        int.from_bytes(bytes(true_lanes), "little"),
        int.from_bytes(bytes(unknown_lanes), "little"),
    )


def _ordering_safe(kinds: set, probe) -> bool:
    """Whether a native ``<``/``<=``/``>``/``>=`` comprehension agrees
    with ``compare_where`` for every (value, probe) pairing.

    ``compare_where`` calls types comparable only within their rank:
    bool with bool, int/float with int/float (bool excluded — it is an
    ``int`` subclass Python would happily order), str with str.  The
    census uses exact ``type`` objects, so ``bool`` never hides inside
    the numeric case.
    """
    if isinstance(probe, bool):
        return kinds <= {bool}
    if isinstance(probe, (int, float)):
        return kinds <= {int, float}
    if isinstance(probe, str):
        return kinds <= {str}
    return False


def _value_kinds(column: list) -> set:
    kinds = set(map(type, column))
    kinds.discard(type(_NULL_SENTINEL))
    return kinds


def _fast_flags_const(
    op: str, column: list, const, nulls: int
) -> bytes | None:
    """0/1 flag bytes via one native comprehension, or ``None`` when
    the fast lane cannot be proven equivalent to ``compare_where``."""
    try:
        if op == "=" or op == "<>":
            if nulls:
                flags = bytes(
                    0 if v is _NULL_SENTINEL else v == const for v in column
                )
            else:
                flags = bytes(v == const for v in column)
            if op == "<>":
                flags = bytes(b ^ 1 for b in flags)
            return flags
        if not _ordering_safe(_value_kinds(column), const):
            return None
        if nulls:
            if op == "<":
                return bytes(
                    0 if v is _NULL_SENTINEL else v < const for v in column
                )
            if op == "<=":
                return bytes(
                    0 if v is _NULL_SENTINEL else v <= const for v in column
                )
            if op == ">":
                return bytes(
                    0 if v is _NULL_SENTINEL else v > const for v in column
                )
            if op == ">=":
                return bytes(
                    0 if v is _NULL_SENTINEL else v >= const for v in column
                )
            return None
        if op == "<":
            return bytes(v < const for v in column)
        if op == "<=":
            return bytes(v <= const for v in column)
        if op == ">":
            return bytes(v > const for v in column)
        if op == ">=":
            return bytes(v >= const for v in column)
        return None
    except Exception:
        # Any surprise (exotic __eq__, a non-singleton null, a type the
        # census missed) routes the batch through the exact lane.
        return None


def _fast_flags_cols(
    op: str, left: list, right: list, nulls: int
) -> bytes | None:
    try:
        if op == "=" or op == "<>":
            if nulls:
                flags = bytes(
                    0
                    if (a is _NULL_SENTINEL or b is _NULL_SENTINEL)
                    else a == b
                    for a, b in zip(left, right)
                )
            else:
                flags = bytes(a == b for a, b in zip(left, right))
            if op == "<>":
                flags = bytes(b ^ 1 for b in flags)
            return flags
        kinds = _value_kinds(left) | _value_kinds(right)
        if kinds and not (
            kinds <= {bool} or kinds <= {int, float} or kinds <= {str}
        ):
            return None
        if nulls:
            if op == "<":
                return bytes(
                    0 if (a is _NULL_SENTINEL or b is _NULL_SENTINEL)
                    else a < b
                    for a, b in zip(left, right)
                )
            if op == "<=":
                return bytes(
                    0 if (a is _NULL_SENTINEL or b is _NULL_SENTINEL)
                    else a <= b
                    for a, b in zip(left, right)
                )
            if op == ">":
                return bytes(
                    0 if (a is _NULL_SENTINEL or b is _NULL_SENTINEL)
                    else a > b
                    for a, b in zip(left, right)
                )
            if op == ">=":
                return bytes(
                    0 if (a is _NULL_SENTINEL or b is _NULL_SENTINEL)
                    else a >= b
                    for a, b in zip(left, right)
                )
            return None
        if op == "<":
            return bytes(a < b for a, b in zip(left, right))
        if op == "<=":
            return bytes(a <= b for a, b in zip(left, right))
        if op == ">":
            return bytes(a > b for a, b in zip(left, right))
        if op == ">=":
            return bytes(a >= b for a, b in zip(left, right))
        return None
    except Exception:
        return None


def _cmp_col_const(
    op: str, index: int, const, reverse: bool
) -> BatchPredicateFn:
    """column ⋈ constant (or constant ⋈ column when *reverse*)."""
    null_const = is_null(const)
    # Normalize "const op col" to "col op' const" so the fast lanes only
    # ever see the column on the left.
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
    vec_op = flipped.get(op, op) if reverse else op

    def kernel(batch: ColumnBatch) -> tuple[int, int]:
        ones = batch.ones
        if null_const:
            return 0, ones
        column = batch.columns[index]
        nulls = batch.null_masks[index]
        flags = _fast_flags_const(vec_op, column, const, nulls)
        if flags is None:
            if reverse:
                return _slow_masks(
                    op, ((const, v) for v in column), batch.length
                )
            return _slow_masks(
                op, ((v, const) for v in column), batch.length
            )
        true_mask = int.from_bytes(flags, "little") & (ones ^ nulls)
        return true_mask, nulls

    return kernel


def _cmp_col_col(op: str, left: int, right: int) -> BatchPredicateFn:
    def kernel(batch: ColumnBatch) -> tuple[int, int]:
        ones = batch.ones
        lcol = batch.columns[left]
        rcol = batch.columns[right]
        nulls = batch.null_masks[left] | batch.null_masks[right]
        flags = _fast_flags_cols(op, lcol, rcol, nulls)
        if flags is None:
            return _slow_masks(op, zip(lcol, rcol), batch.length)
        true_mask = int.from_bytes(flags, "little") & (ones ^ nulls)
        return true_mask, nulls

    return kernel


def _operand(
    expr: Expr, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[str, object]:
    """Resolve a scalar operand to ``(_CONST, value)`` or
    ``(_COL, index)`` — the same frontier as ``compile._scalar``."""
    if isinstance(expr, Literal):
        return _CONST, expr.value
    if isinstance(expr, HostVar):
        if expr.name not in params:
            raise CannotCompile(f"unbound host variable :{expr.name}")
        return _CONST, params[expr.name]
    if isinstance(expr, ColumnRef):
        from ..errors import AmbiguousColumnError

        try:
            index = schema.try_index_of(expr.qualifier, expr.column)
        except AmbiguousColumnError as exc:
            raise CannotCompile(str(exc)) from None
        if index is None:
            raise CannotCompile(f"outer reference {expr!r}")
        return _COL, index
    raise CannotCompile(f"{type(expr).__name__} is not a scalar operand")


def _comparison_kernel(
    op: str, left: tuple[str, object], right: tuple[str, object]
) -> tuple[BatchPredicateFn | None, Tristate | None]:
    lkind, lval = left
    rkind, rval = right
    if lkind is _CONST and rkind is _CONST:
        return None, compare_where(op, lval, rval)
    if rkind is _CONST:
        return _cmp_col_const(op, lval, rval, reverse=False), None
    if lkind is _CONST:
        return _cmp_col_const(op, rval, lval, reverse=True), None
    return _cmp_col_col(op, lval, rval), None


def _kleene_not(t: int, u: int, ones: int) -> tuple[int, int]:
    return ones ^ (t | u), u


def _node(
    expr: Expr, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[BatchPredicateFn | None, Tristate | None]:
    """Compile a condition subtree; ``(None, const)`` when it folded."""
    if isinstance(expr, Literal):
        if is_null(expr.value):
            return None, UNKNOWN
        if isinstance(expr.value, bool):
            return None, (TRUE if expr.value else FALSE)
        raise CannotCompile(f"literal {expr.value!r} is not a condition")
    if isinstance(expr, Comparison):
        return _comparison_kernel(
            expr.op,
            _operand(expr.left, schema, params),
            _operand(expr.right, schema, params),
        )
    if isinstance(expr, And):
        return _connective(expr.operands, schema, params, conjunctive=True)
    if isinstance(expr, Or):
        return _connective(expr.operands, schema, params, conjunctive=False)
    if isinstance(expr, Not):
        kernel, const = _node(expr.operand, schema, params)
        if const is not None:
            return None, ~const

        def negated(batch: ColumnBatch) -> tuple[int, int]:
            t, u = kernel(batch)
            return _kleene_not(t, u, batch.ones)

        return negated, None
    if isinstance(expr, IsNull):
        return _is_null_kernel(expr, schema, params)
    if isinstance(expr, Between):
        return _between_kernel(expr, schema, params)
    if isinstance(expr, InList):
        return _in_list_kernel(expr, schema, params)
    # Exists / InSubquery / anything exotic: interpreter territory.
    raise CannotCompile(f"cannot compile {type(expr).__name__}")


def _connective(
    operands: Sequence[Expr],
    schema: RelSchema,
    params: dict[str, SqlValue],
    conjunctive: bool,
) -> tuple[BatchPredicateFn | None, Tristate | None]:
    """AND/OR with the row compiler's constant folding.

    The runtime kernel folds lane-wise: Kleene's connectives are
    associative, so evaluating every part over every lane (no per-row
    short circuit — that is the point of vectorization) produces the
    same tristate per lane as the interpreter's short-circuit walk.
    """
    absorbing = FALSE if conjunctive else TRUE
    identity = TRUE if conjunctive else FALSE
    folded = identity
    parts: list[BatchPredicateFn] = []
    for operand in operands:
        kernel, const = _node(operand, schema, params)
        if const is not None:
            folded = (folded & const) if conjunctive else (folded | const)
            if folded is absorbing:
                return None, absorbing
        else:
            parts.append(kernel)
    if not parts:
        return None, folded
    if len(parts) == 1 and folded is identity:
        return parts[0], None

    if conjunctive:
        def kernel(batch, _parts=tuple(parts), _seed=folded):
            ones = batch.ones
            seed_t, seed_u = _const_masks(_seed, ones)
            t = seed_t
            f = ones ^ (seed_t | seed_u)
            for part in _parts:
                pt, pu = part(batch)
                t &= pt
                f |= ones ^ (pt | pu)
            return t, ones ^ (t | f)
    else:
        def kernel(batch, _parts=tuple(parts), _seed=folded):
            ones = batch.ones
            seed_t, seed_u = _const_masks(_seed, ones)
            t = seed_t
            f = ones ^ (seed_t | seed_u)
            for part in _parts:
                pt, pu = part(batch)
                t |= pt
                f &= ones ^ (pt | pu)
            return t, ones ^ (t | f)

    return kernel, None


def _is_null_kernel(
    expr: IsNull, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[BatchPredicateFn | None, Tristate | None]:
    kind, value = _operand(expr.operand, schema, params)
    negated = expr.negated
    if kind is _CONST:
        outcome = is_null(value) != negated
        return None, (TRUE if outcome else FALSE)

    def kernel(batch: ColumnBatch) -> tuple[int, int]:
        nulls = batch.null_masks[value]
        return (batch.ones ^ nulls) if negated else nulls, 0

    return kernel, None


def _between_kernel(
    expr: Between, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[BatchPredicateFn | None, Tristate | None]:
    operand = _operand(expr.operand, schema, params)
    low = _operand(expr.low, schema, params)
    high = _operand(expr.high, schema, params)
    negated = expr.negated
    ge_kernel, ge_const = _comparison_kernel(">=", operand, low)
    le_kernel, le_const = _comparison_kernel("<=", operand, high)
    if ge_kernel is None and le_kernel is None:
        const = ge_const & le_const
        return None, (~const if negated else const)

    def kernel(batch: ColumnBatch) -> tuple[int, int]:
        ones = batch.ones
        gt, gu = (
            _const_masks(ge_const, ones) if ge_kernel is None
            else ge_kernel(batch)
        )
        lt, lu = (
            _const_masks(le_const, ones) if le_kernel is None
            else le_kernel(batch)
        )
        t = gt & lt
        f = (ones ^ (gt | gu)) | (ones ^ (lt | lu))
        u = ones ^ (t | f)
        return _kleene_not(t, u, ones) if negated else (t, u)

    return kernel, None


def _in_list_kernel(
    expr: InList, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[BatchPredicateFn | None, Tristate | None]:
    operand = _operand(expr.operand, schema, params)
    negated = expr.negated
    folded = FALSE
    parts: list[BatchPredicateFn] = []
    for item in expr.items:
        kernel, const = _comparison_kernel(
            "=", operand, _operand(item, schema, params)
        )
        if const is not None:
            folded = folded | const
            if folded is TRUE:
                break
        else:
            parts.append(kernel)
    if folded is TRUE or not parts:
        const = folded
        return None, (~const if negated else const)

    def kernel(batch, _parts=tuple(parts), _seed=folded):
        ones = batch.ones
        seed_t, seed_u = _const_masks(_seed, ones)
        t = seed_t
        f = ones ^ (seed_t | seed_u)
        for part in _parts:
            pt, pu = part(batch)
            t |= pt
            f &= ones ^ (pt | pu)
        u = ones ^ (t | f)
        return _kleene_not(t, u, ones) if negated else (t, u)

    return kernel, None
