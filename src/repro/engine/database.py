"""A database instance: a catalog plus stored rows for each table."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..catalog.schema import Catalog
from ..catalog.table import TableSchema
from ..errors import ConstraintViolation, UnknownTableError
from ..sql.ast import CreateTable, Insert
from ..sql.parser import parse_script
from ..types.values import NULL, SqlValue
from .table_data import TableData


class Database:
    """Catalog + data.  The unit the executor runs queries against."""

    def __init__(self, catalog: Catalog | None = None) -> None:
        self.catalog = catalog or Catalog()
        self._data: dict[str, TableData] = {}
        #: Collected table statistics (:class:`repro.stats.StatisticsCatalog`)
        #: from the most recent :meth:`analyze`, or None.  The estimator
        #: checks freshness against :meth:`fingerprint` before trusting it.
        self.statistics = None
        self._txn_manager = None
        for schema in self.catalog:
            self._data[schema.name] = TableData(schema)

    # ------------------------------------------------------------------
    # transactions

    @property
    def transactions(self):
        """The database's :class:`~repro.engine.txn.TransactionManager`
        (created on first use)."""
        if self._txn_manager is None:
            from .txn import TransactionManager  # deferred: txn imports engine

            self._txn_manager = TransactionManager(self)
        return self._txn_manager

    def begin(self):
        """Start an MVCC transaction pinned to a fresh snapshot."""
        return self.transactions.begin()

    # ------------------------------------------------------------------
    # schema management

    def create_table(self, schema: TableSchema) -> TableData:
        """Register *schema* and allocate empty storage for it."""
        self.catalog.register(schema)
        data = TableData(schema)
        self._data[schema.name] = data
        return data

    def table(self, name: str) -> TableData:
        """Row storage for one table."""
        try:
            return self._data[name.upper()]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        """Whether storage exists for this table name."""
        return name.upper() in self._data

    def table_names(self) -> list[str]:
        """All stored table names, sorted."""
        return sorted(self._data)

    # ------------------------------------------------------------------
    # loading

    def insert(
        self, table: str, values: Sequence[SqlValue] | dict[str, SqlValue]
    ) -> tuple:
        """Insert one row (positional sequence or column mapping).

        Enforces, beyond the table-local constraints, every declared
        FOREIGN KEY: a fully non-NULL referencing tuple must match an
        existing row of the referenced table (rows with any NULL
        component are exempt, per SQL's simple match rule).
        """
        data = self.table(table)
        if isinstance(values, dict):
            row = data.insert_mapping(
                {key.upper(): value for key, value in values.items()}
            )
        else:
            row = data.insert(values)
        try:
            self._check_foreign_keys(data.schema, row)
        except ConstraintViolation:
            data.remove_last()
            raise
        return row

    def load(self, table: str, rows: Iterable[Sequence[SqlValue]]) -> int:
        """Bulk insert; returns the number of rows loaded."""
        count = 0
        for row in rows:
            self.insert(table, row)
            count += 1
        return count

    def _check_foreign_keys(self, schema: TableSchema, row: tuple) -> None:
        from ..types.values import is_null, row_sort_key

        for fk in schema.foreign_keys:
            if not self.has_table(fk.ref_table):
                continue  # unresolvable reference: treat as unenforced
            values = tuple(
                row[schema.column_index(column)] for column in fk.columns
            )
            if any(is_null(value) for value in values):
                continue  # simple match: NULL components exempt the row
            parent = self.table(fk.ref_table)
            ref_columns = fk.ref_columns
            if not ref_columns:
                key = parent.schema.primary_key
                if key is None:
                    continue
                ref_columns = key.columns
            found = parent.has_key_value(tuple(ref_columns), values)
            if found is None:  # not a declared key: fall back to a scan
                indices = [
                    parent.schema.column_index(column)
                    for column in ref_columns
                ]
                wanted = row_sort_key(values)
                found = any(
                    row_sort_key(tuple(existing[i] for i in indices)) == wanted
                    for existing in parent.rows
                )
            if not found:
                raise ConstraintViolation(
                    schema.name,
                    f"{fk.describe()} has no matching row in {fk.ref_table}",
                )

    def execute_insert(self, statement: Insert) -> int:
        """Run a parsed INSERT ... VALUES statement."""
        count = 0
        for row in statement.rows:
            if statement.columns is None:
                self.insert(statement.table, row)
            else:
                mapping = {
                    name.upper(): value
                    for name, value in zip(statement.columns, row)
                }
                self.insert(statement.table, mapping)
            count += 1
        return count

    def run_script(self, script: str) -> None:
        """Execute a script of CREATE TABLE / INSERT statements."""
        for statement in parse_script(script):
            if isinstance(statement, CreateTable):
                schema = self.catalog.execute_ddl(statement)
                self._data[schema.name] = TableData(schema)
            elif isinstance(statement, Insert):
                self.execute_insert(statement)
            else:
                raise UnknownTableError(
                    "queries are not allowed in run_script; use execute()"
                )

    @classmethod
    def from_script(cls, script: str) -> "Database":
        """Build a populated database from a DDL+INSERT script."""
        database = cls()
        database.run_script(script)
        return database

    # ------------------------------------------------------------------

    def fingerprint(self) -> tuple[tuple[int, int], int]:
        """Hashable token covering schema *and* data versions.

        Cache keys built on this are invalidated by any DDL (the catalog
        fingerprint moves) and by any row mutation (per-table data
        versions only ever grow, so their sum is monotonic and cannot
        alias an earlier state).
        """
        return (
            self.catalog.fingerprint(),
            sum(data.version for data in self._data.values()),
        )

    def table_versions(self, names: Iterable[str]) -> tuple:
        """``(name, data version)`` pairs for *names*, sorted — the
        scoped cache key: a commit bumps only touched tables, so keys
        built on a query's referenced tables survive writes elsewhere.

        Raises:
            UnknownTableError: when any name is not stored.
        """
        return tuple(
            (name, self.table(name).version)
            for name in sorted({name.upper() for name in names})
        )

    def row_counts(self) -> dict[str, int]:
        """Stored row count per table."""
        return {name: len(self._data[name]) for name in sorted(self._data)}

    def analyze(self, **kwargs):
        """ANALYZE: collect table statistics and attach them.

        Returns the fresh :class:`repro.stats.StatisticsCatalog` (also
        stored on :attr:`statistics` for the estimator to find).
        Keyword arguments pass through to
        :func:`repro.stats.collect_statistics` (``buckets``,
        ``distinct_threshold``).
        """
        from ..stats import collect_statistics  # deferred: stats imports engine

        self.statistics = collect_statistics(self, **kwargs)
        return self.statistics
