"""Read-only row-range views of a database for scatter-gather shards.

A cluster worker holds a full replica; scatter-gather asks each worker
to execute the *same* SQL over a contiguous slice of one driving
table's rows.  :class:`SlicedDatabase` is the mechanism: it wraps a
:class:`~repro.engine.database.Database` and serves
:class:`_SlicedTable` views for the named tables, so the whole
planner/executor stack (sequential scans, lazy hash indexes, columnar
batches, key probes) runs unmodified against the slice.

The wrapper is strictly read-only — slices exist for the duration of
one query and never accept writes — and its fingerprint extends the
base database's with the slice ranges, so fingerprint-keyed caches
(plans, analyses, strategies) can never alias a sliced execution with a
full one or with a differently-sliced one.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from ..types.values import is_null, row_sort_key
from .columnar import ColumnBatch
from .database import Database
from .table_data import TableData


def _normalize_ranges(
    ranges: "Mapping[str, tuple[int, int]] | Iterable[tuple[str, int, int]]",
) -> dict[str, tuple[int, int]]:
    if isinstance(ranges, Mapping):
        items = [(name, start, stop) for name, (start, stop) in ranges.items()]
    else:
        items = [(name, start, stop) for name, start, stop in ranges]
    normalized: dict[str, tuple[int, int]] = {}
    for name, start, stop in items:
        key = name.upper()
        if key in normalized:
            raise ValueError(f"duplicate slice for table {key}")
        if start < 0 or stop < start:
            raise ValueError(f"invalid slice [{start}, {stop}) for table {key}")
        normalized[key] = (int(start), int(stop))
    return normalized


#: Cached views keyed (base id, ranges): a worker re-executes the same
#: slice for every scatter query it receives, so the view's lazy hash
#: indexes and columnar batches stay warm across queries.  The stored
#: fingerprint invalidates on any base mutation; entries hold a strong
#: reference to their view (and thereby the base), bounded by size.
_VIEW_CACHE_SIZE = 32
_view_cache: dict = {}
_cache_lock = threading.Lock()


class _SlicedTable:
    """Read-only view of ``base.rows[start:stop]``.

    Duck-types the :class:`TableData` read surface the executor uses
    (``rows``, hash indexes, columnar batches, key probes) while
    rejecting every mutation.  Indexes and columnar batches are built
    over the slice only — never borrowed from the base table, whose
    indexes cover rows outside the slice.
    """

    def __init__(self, base: TableData, start: int, stop: int) -> None:
        self.schema = base.schema
        self.rows: list[tuple] = base.rows[start:stop]
        self.slice_range = (start, stop)
        self.base_rows = len(base)
        self.version = base.version
        self.index_builds = 0
        self.single_flight_waits = 0
        self.columnar_builds = 0
        self._hash_indexes: dict[tuple[str, ...], dict[tuple, list[tuple]]] = {}
        self._columnar: dict[int, list[ColumnBatch]] = {}
        # Leaf lock: a slice is usually query-private, but the parallel
        # scan operators may probe it from several executor threads.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        # Deliberately the BASE table's cardinality, not the slice's.
        # ``len(database.table(name))`` feeds only the cost model, and
        # cost-driven choices (hash-join build side) must be
        # replica-deterministic: every shard — and the front end's
        # classifier — has to produce the identical physical plan, or
        # shard output orders diverge and the scatter merge breaks.
        # Execution never takes this path; it iterates ``.rows``.
        return self.base_rows

    # -- read paths ----------------------------------------------------

    def indexable_columns(self) -> set[str]:
        columns: set[str] = set()
        for key in self.schema.candidate_keys:
            columns.update(key.columns)
        for fk in self.schema.foreign_keys:
            columns.update(fk.columns)
        return columns

    def hash_index(self, columns: tuple[str, ...]) -> dict[tuple, list[tuple]]:
        with self._lock:
            index = self._hash_indexes.get(columns)
            if index is None:
                positions = [
                    self.schema.column_index(name) for name in columns
                ]
                index = {}
                for row in self.rows:
                    key = row_sort_key(tuple(row[p] for p in positions))
                    index.setdefault(key, []).append(row)
                self._hash_indexes[columns] = index
                self.index_builds += 1
            return index

    def index_lookup(
        self, columns: tuple[str, ...], values: tuple
    ) -> list[tuple]:
        if any(is_null(value) for value in values):
            return []
        return self.hash_index(columns).get(row_sort_key(values), [])

    def has_hash_index(self, columns: tuple[str, ...]) -> bool:
        with self._lock:
            return columns in self._hash_indexes

    def column_batches(self, batch_rows: int) -> list[ColumnBatch]:
        with self._lock:
            batches = self._columnar.get(batch_rows)
            if batches is None:
                width = len(self.schema.columns)
                batches = [
                    ColumnBatch.from_rows(
                        self.rows[start:start + batch_rows], width
                    )
                    for start in range(0, len(self.rows), batch_rows)
                ]
                self._columnar[batch_rows] = batches
                self.columnar_builds += 1
            return batches

    def has_key_value(
        self, columns: tuple[str, ...], values: tuple
    ) -> bool | None:
        # A candidate key of the full table is still unique within the
        # slice, but absence from the slice does not mean absence from
        # the table — which is the semantics a scatter shard wants: it
        # answers for its rows only.
        for key in self.schema.candidate_keys:
            if key.columns == tuple(columns):
                wanted = row_sort_key(values)
                positions = [
                    self.schema.column_index(name) for name in key.columns
                ]
                return any(
                    row_sort_key(tuple(row[p] for p in positions)) == wanted
                    for row in self.rows
                )
        return None

    # -- writes are refused --------------------------------------------

    def _read_only(self, *_args, **_kwargs):
        raise TypeError(
            f"sliced view of {self.schema.name} is read-only"
        )

    insert = _read_only
    insert_mapping = _read_only
    extend = _read_only
    clear = _read_only
    remove_last = _read_only


class SlicedDatabase:
    """A database whose named tables are row-range slices of the base.

    ``ranges`` maps upper-cased table names to ``(start, stop)`` row
    ranges; every other table passes through to the base unchanged (so
    joins and subqueries against non-driving tables see full data).
    """

    def __init__(
        self,
        base: Database,
        ranges: Mapping[str, tuple[int, int]] | Iterable[tuple[str, int, int]],
    ) -> None:
        self._base = base
        self.catalog = base.catalog
        self._ranges = _normalize_ranges(ranges)
        self._slices: dict[str, _SlicedTable] = {}
        self._lock = threading.Lock()
        for name in self._ranges:
            base.table(name)  # raise UnknownTableError eagerly

    @classmethod
    def wrap(
        cls,
        database: Database,
        ranges: Mapping[str, tuple[int, int]] | Iterable[tuple[str, int, int]],
    ) -> "Database | SlicedDatabase":
        """Wrap *database*, passing it through when *ranges* is empty.

        Views are cached per (database, ranges, fingerprint): a shard
        worker executes a stream of queries over the same slice, and
        reusing the view keeps its lazily-built hash indexes and
        columnar batches warm.  The fingerprint in the key drops the
        cached view the moment the base data moves.
        """
        if not ranges:
            return database
        if isinstance(database, SlicedDatabase):
            raise TypeError("cannot slice an already-sliced database")
        normalized = _normalize_ranges(ranges)
        key = (id(database), tuple(sorted(normalized.items())))
        stamp = database.fingerprint()
        with _cache_lock:
            cached = _view_cache.get(key)
            if cached is not None and cached[0] == stamp:
                return cached[1]
        view = cls(database, normalized)
        with _cache_lock:
            _view_cache[key] = (stamp, view)
            while len(_view_cache) > _VIEW_CACHE_SIZE:
                _view_cache.pop(next(iter(_view_cache)))
        return view

    @property
    def ranges(self) -> dict[str, tuple[int, int]]:
        return dict(self._ranges)

    # -- Database read surface -----------------------------------------

    def table(self, name: str) -> TableData | _SlicedTable:
        key = name.upper()
        window = self._ranges.get(key)
        if window is None:
            return self._base.table(name)
        with self._lock:
            view = self._slices.get(key)
            if view is None:
                view = _SlicedTable(self._base.table(key), *window)
                self._slices[key] = view
            return view

    def has_table(self, name: str) -> bool:
        return self._base.has_table(name)

    def table_names(self) -> list[str]:
        return self._base.table_names()

    def fingerprint(self) -> tuple:
        base = self._base.fingerprint()
        ranges = tuple(sorted(self._ranges.items()))
        return (base, ("sliced", ranges))

    def row_counts(self) -> dict[str, int]:
        """Actual stored counts — slice sizes for sliced tables (unlike
        ``len(table)``, which reports planning cardinality)."""
        counts = {}
        for name in self._base.table_names():
            view = self.table(name)
            counts[name] = len(view.rows) if name in self._ranges else len(view)
        return counts

    # -- writes are refused --------------------------------------------

    def _read_only(self, *_args, **_kwargs):
        raise TypeError("sliced database views are read-only")

    insert = _read_only
    load = _read_only
    create_table = _read_only
    execute_insert = _read_only
    run_script = _read_only

    def __getattr__(self, name: str):
        raise AttributeError(
            f"SlicedDatabase does not expose {name!r}; "
            "slices support the read-side Database surface only"
        )
