"""Keyed cache of physical plans.

Planning a query — parsing, conjunct classification, join-key matching,
access-path selection — costs more than executing it on small inputs,
and templated workloads (the batch audits, correlated probes, prepared
statements) plan the same text over and over.  The cache maps

    (database fingerprint, query text, planner options) -> PlanNode

Physical plans hold no per-execution state (operators allocate their
hash tables and sort buffers inside ``rows()``), so a cached plan can be
re-executed freely, including with different host-variable bindings —
``HostVar`` keys resolve at execution time.

Keying on the *database* fingerprint (not just the catalog's) means any
DDL **or row mutation** invalidates implicitly: plans embed data-derived
choices (hash-join build side) and stay honest this way, at worst
re-planning after a load.
"""

from __future__ import annotations

from ..cache import MISSING, LRUCache
from ..resilience.faults import FAULTS, SITE_PLAN_CACHE
from .operators import PlanNode


class PlanCache:
    """LRU cache of physical plans, shared by ``execute_planned``."""

    def __init__(self, maxsize: int = 256) -> None:
        self._cache = LRUCache("plans", maxsize=maxsize)

    def lookup(self, key: tuple) -> PlanNode | None:
        """The cached plan for *key*, or None (also when disabled).

        A ``plan_cache`` fault raises here; ``execute_planned`` treats
        any lookup failure as a miss and re-plans (verified fallback).
        """
        if FAULTS.armed:
            FAULTS.check(SITE_PLAN_CACHE)
        plan = self._cache.get(key)
        return None if plan is MISSING else plan

    def store(self, key: tuple, plan: PlanNode) -> None:
        self._cache.put(key, plan)

    def clear(self) -> None:
        self._cache.clear()

    def evict_sql(self, sql_text: str) -> int:
        """Drop every cached plan for *sql_text*, across fingerprints.

        Safe mode calls this when a cross-check implicates a query, so a
        plan built from a poisoned rewrite cannot be served again.
        """
        return self._cache.evict_where(
            lambda key: isinstance(key, tuple)
            and len(key) >= 2
            and key[1] == sql_text
        )

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses


#: Process-wide default used by ``execute_planned``.
GLOBAL_PLAN_CACHE = PlanCache()
