"""Physical planner.

Compiles a query AST into a tree of physical operators.  The planner is
rule-based and deliberately simple — its job is to make execution
*strategy* a measurable variable:

* single-table conjuncts are pushed down below joins,
* equality conjuncts between two tables become hash- or sort-merge-join
  keys (configurable; nested-loop is the fallback and can be forced),
* conjuncts containing subqueries stay in a final Filter, where the
  evaluator re-executes them per row — the naive nested-loop strategy,
* DISTINCT becomes a sort- or hash-based duplicate-elimination operator.

The semantic rewrites of the paper (distinct elimination, subquery
flattening, ...) happen *before* planning, in :mod:`repro.core.rewrite`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cache import safe_fingerprint
from ..catalog.schema import Catalog
from ..catalog.table import TableSchema
from ..errors import ExecutionError, ReproError, ResourceError
from ..observe.trace import NULL_SPAN, TRACER
from ..resilience.budgets import ExecutionGuard
from ..resilience.faults import FAULTS, SITE_FINGERPRINT
from ..sql.ast import Query, SelectQuery, SetOperation, referenced_tables
from ..sql.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expr,
    HostVar,
    IsNull,
    Literal,
    Or,
    column_refs,
    conjoin,
    conjuncts,
    contains_subquery,
)
from ..sql.parser import parse_query
from ..sql.printer import to_sql
from ..types.values import SqlValue
from .database import Database
from .operators import (
    ExecContext,
    Filter,
    HashDistinct,
    HashJoin,
    IndexScan,
    NestedLoopJoin,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    SortDistinct,
    SortMergeJoin,
    SortSetOp,
)
from .parallel import ParallelExecution, ParallelOptions, parallel_execution
from .plan_cache import GLOBAL_PLAN_CACHE, PlanCache
from .projection import resolve_projection
from .result import Result
from .stats import Stats


@dataclass(frozen=True)
class PlannerOptions:
    """Strategy knobs for physical planning.

    Attributes:
        join_method: 'hash', 'merge', or 'nested' for equi-joins.
        distinct_method: 'sort' (the paper's cost model) or 'hash'.
        index_scans: turn ``col = constant`` predicates on key/FK
            columns into hash-index probes instead of SeqScan+Filter.
        use_stats: enumerate join orders by cost over collected
            statistics (:mod:`repro.stats`) instead of taking the
            FROM-clause order; falls back to FROM order when the
            database carries no fresh statistics.
        adaptive: additionally consult the adaptive correction store
            (observed cardinalities from analyzed runs) during
            estimation; implies cost-based join ordering.
    """

    join_method: str = "hash"
    distinct_method: str = "sort"
    index_scans: bool = True
    use_stats: bool = False
    adaptive: bool = False

    def __post_init__(self) -> None:
        if self.join_method not in ("hash", "merge", "nested"):
            raise ValueError(f"unknown join method {self.join_method!r}")
        if self.distinct_method not in ("sort", "hash"):
            raise ValueError(f"unknown distinct method {self.distinct_method!r}")


class Planner:
    """Compiles query ASTs to physical plans against a catalog.

    When a :class:`Database` is supplied, the planner additionally uses
    live cardinalities to pick the hash-join build side; without one,
    planning is purely catalog-driven (build side defaults to the right
    input, matching direct operator construction).
    """

    def __init__(
        self,
        catalog: Catalog,
        options: PlannerOptions | None = None,
        database: Database | None = None,
        stats: Stats | None = None,
    ) -> None:
        self.catalog = catalog
        self.options = options or PlannerOptions()
        self.database = database
        self.stats = stats

    # ------------------------------------------------------------------

    def plan(self, query: Query | str) -> PlanNode:
        """Build the physical plan for *query*."""
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, SelectQuery):
            return self._plan_select(query)
        if isinstance(query, SetOperation):
            left = self.plan(query.left)
            right = self.plan(query.right)
            if len(left.schema) != len(right.schema):
                raise ExecutionError(
                    "set operation operands are not union-compatible"
                )
            return SortSetOp(query.kind, query.all, left, right)
        raise ExecutionError(f"cannot plan {type(query).__name__}")

    # ------------------------------------------------------------------

    def _plan_select(self, query: SelectQuery) -> PlanNode:
        scans = self._scans(query)
        qualifier_columns = self._qualifier_columns(scans)

        local: dict[str, list[Expr]] = {alias: [] for alias in scans}
        joinable: list[tuple[frozenset[str], Expr]] = []
        residual: list[Expr] = []

        for conjunct in conjuncts(query.where):
            tables = self._tables_of(conjunct, qualifier_columns)
            if tables is None:
                residual.append(conjunct)
            elif len(tables) == 0:
                residual.append(conjunct)  # e.g. :HV = 5 — constant test
            elif len(tables) == 1:
                local[next(iter(tables))].append(conjunct)
            else:
                joinable.append((frozenset(tables), conjunct))

        # Push single-table conjuncts below the joins; where they probe
        # an auto-indexed column with a constant, use the hash index.
        planned: dict[str, PlanNode] = {}
        for alias, scan in scans.items():
            node: PlanNode | None = self._index_access(scan, local[alias])
            if node is None:
                node = scan
                if local[alias]:
                    node = Filter(node, conjoin(local[alias]))
            planned[alias] = node

        # Left-deep join tree — FROM-clause order by default, cost-based
        # enumeration over collected statistics when the options ask.
        order = list(scans)
        if len(order) > 1 and self._cost_based():
            order = self._cost_order(order, planned, joinable, qualifier_columns)
        current, pending = self._join_tree(
            order, planned, joinable, qualifier_columns
        )

        # Multi-table conjuncts that never became join predicates (or that
        # span tables not adjacent in the join order) plus subquery
        # conjuncts run in a final filter over the full product schema.
        leftovers = [conjunct for _, conjunct in pending] + residual
        if leftovers:
            current = Filter(current, conjoin(leftovers))

        names, indices = resolve_projection(query.select_list, current.schema)
        current = Project(current, indices, names)

        if query.distinct:
            if self.options.distinct_method == "sort":
                current = SortDistinct(current)
            else:
                current = HashDistinct(current)

        if query.order_by:
            current = self._order(query, current, names, indices)
        return current

    def _join_tree(
        self,
        order: list[str],
        planned: dict[str, PlanNode],
        joinable: list[tuple[frozenset[str], Expr]],
        qualifier_columns: dict[str, set[str]],
    ) -> tuple[PlanNode, list[tuple[frozenset[str], Expr]]]:
        """The left-deep join tree over *order*, plus unconsumed conjuncts."""
        current = planned[order[0]]
        covered = {order[0]}
        pending = list(joinable)
        for alias in order[1:]:
            right = planned[alias]
            applicable: list[Expr] = []
            remaining: list[tuple[frozenset[str], Expr]] = []
            for tables, conjunct in pending:
                if tables <= covered | {alias} and alias in tables:
                    applicable.append(conjunct)
                else:
                    remaining.append((tables, conjunct))
            pending = remaining
            current = self._join(
                current, right, applicable, qualifier_columns, alias
            )
            covered.add(alias)
        return current, pending

    def _cost_based(self) -> bool:
        return self.database is not None and (
            self.options.use_stats or self.options.adaptive
        )

    #: FROM lists at most this long are enumerated exhaustively; longer
    #: ones fall back to a greedy cheapest-connected-next ordering.
    MAX_EXHAUSTIVE_JOINS = 5

    def _cost_order(
        self,
        order: list[str],
        planned: dict[str, PlanNode],
        joinable: list[tuple[frozenset[str], Expr]],
        qualifier_columns: dict[str, set[str]],
    ) -> list[str]:
        """The cheapest left-deep join order by estimated cost.

        Exhaustive for short FROM lists, greedy beyond
        :data:`MAX_EXHAUSTIVE_JOINS`.  Candidates are compared with a
        strict ``<``, and the FROM-clause order is evaluated first, so
        ties (and any estimation failure) deterministically keep the
        rule order — cost-based planning can only *replace* the rule
        plan when the estimates actually separate the candidates.
        """
        from itertools import permutations

        from ..stats.estimator import estimator_for

        model = estimator_for(self.database, self.options, stats=self.stats)
        if len(order) <= self.MAX_EXHAUSTIVE_JOINS:
            candidates = [list(candidate) for candidate in permutations(order)]
            candidates.sort(key=lambda candidate: candidate != order)
        else:
            candidates = [order, self._greedy_order(order, planned, joinable, model)]
        best, best_cost = order, None
        for candidate in candidates:
            try:
                plan, _ = self._join_tree(
                    candidate, planned, joinable, qualifier_columns
                )
                cost = model.estimate(plan).cost
            except ReproError:
                continue
            if best_cost is None or cost < best_cost:
                best, best_cost = candidate, cost
        return best

    def _greedy_order(
        self,
        order: list[str],
        planned: dict[str, PlanNode],
        joinable: list[tuple[frozenset[str], Expr]],
        model,
    ) -> list[str]:
        """Cheapest-first greedy order preferring connected joins."""

        def input_rows(alias: str) -> float:
            try:
                return model.estimate(planned[alias]).rows
            except ReproError:
                return float("inf")

        rows = {alias: input_rows(alias) for alias in order}
        position = {alias: index for index, alias in enumerate(order)}
        sequence = [min(order, key=lambda a: (rows[a], position[a]))]
        remaining = [alias for alias in order if alias != sequence[0]]
        while remaining:
            covered = set(sequence)
            connected = [
                alias
                for alias in remaining
                if any(
                    alias in tables and tables <= covered | {alias}
                    for tables, _ in joinable
                )
            ]
            pool = connected or remaining
            pick = min(pool, key=lambda a: (rows[a], position[a]))
            sequence.append(pick)
            remaining.remove(pick)
        return sequence

    def _scans(self, query: SelectQuery) -> dict[str, SeqScan]:
        scans: dict[str, SeqScan] = {}
        for table_ref in query.tables:
            alias = table_ref.effective_name
            if alias in scans:
                raise ExecutionError(
                    f"duplicate correlation name {alias!r} in FROM clause"
                )
            schema = self.catalog.table(table_ref.name)
            scans[alias] = SeqScan(
                schema.name, alias, schema.column_names
            )
        return scans

    def _index_access(
        self, scan: SeqScan, local: list[Expr]
    ) -> IndexScan | None:
        """An IndexScan replacing SeqScan+Filter, or None if ineligible.

        Eligible conjuncts have the shape ``column = constant`` (literal
        or host variable) on a key or FOREIGN KEY column.  Preference:
        a fully-covered candidate key (a composite probe returning at
        most one row), else a single indexable column.  Everything not
        consumed by the probe stays as the residual, so the plan filters
        exactly the conjuncts the Filter would have.
        """
        if not self.options.index_scans or not local:
            return None
        schema = self.catalog.table(scan.table_name)
        indexable: set[str] = set()
        for key in schema.candidate_keys:
            indexable.update(key.columns)
        for fk in schema.foreign_keys:
            indexable.update(fk.columns)
        if not indexable:
            return None

        probes: dict[str, tuple[Expr, Expr]] = {}  # column -> (conjunct, const)
        for conjunct in local:
            found = self._constant_equality(conjunct, scan, schema)
            if found is None:
                continue
            column, const = found
            if column in indexable and column not in probes:
                probes[column] = (conjunct, const)
        if not probes:
            return None

        key_columns: tuple[str, ...] | None = None
        for key in schema.candidate_keys:
            if all(column in probes for column in key.columns):
                key_columns = key.columns
                break
        if key_columns is None:
            for column in schema.column_names:  # deterministic pick
                if column in probes:
                    key_columns = (column,)
                    break
        assert key_columns is not None

        consumed = {id(probes[column][0]) for column in key_columns}
        key_exprs = tuple(probes[column][1] for column in key_columns)
        residual = [conjunct for conjunct in local if id(conjunct) not in consumed]
        return IndexScan(
            schema.name,
            scan.alias,
            schema.column_names,
            key_columns,
            key_exprs,
            conjoin(residual) if residual else None,
        )

    @staticmethod
    def _constant_equality(
        conjunct: Expr, scan: SeqScan, schema: TableSchema
    ) -> tuple[str, Expr] | None:
        """Match ``column = constant`` against *scan*'s table.

        Returns (column name, constant expression) or None.  NULL
        literals still match: the index probe returns no rows, exactly
        what evaluating ``column = NULL`` row-by-row would keep.
        """
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        for ref, const in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(ref, ColumnRef):
                continue
            if not isinstance(const, (Literal, HostVar)):
                continue
            if ref.qualifier is not None and ref.qualifier != scan.alias:
                continue
            if ref.column in schema.column_names:
                return ref.column, const
        return None

    def _qualifier_columns(
        self, scans: dict[str, SeqScan]
    ) -> dict[str, set[str]]:
        return {
            alias: {column.name for column in scan.schema.columns}
            for alias, scan in scans.items()
        }

    def _tables_of(
        self, conjunct: Expr, qualifier_columns: dict[str, set[str]]
    ) -> set[str] | None:
        """Qualifiers referenced by *conjunct*, or None if unplannable.

        Conjuncts containing subqueries are left for the final filter
        (their inner column references must not be mis-attributed).
        """
        if contains_subquery(conjunct):
            return None
        tables: set[str] = set()
        for ref in column_refs(conjunct):
            if ref.qualifier is not None:
                if ref.qualifier not in qualifier_columns:
                    return None  # correlated outer reference
                tables.add(ref.qualifier)
                continue
            owners = [
                alias
                for alias, columns in qualifier_columns.items()
                if ref.column in columns
            ]
            if len(owners) != 1:
                return None  # unknown or ambiguous: resolve at runtime
            tables.add(owners[0])
        return tables

    def _join(
        self,
        left: PlanNode,
        right: PlanNode,
        applicable: list[Expr],
        qualifier_columns: dict[str, set[str]],
        right_alias: str,
    ) -> PlanNode:
        if self.options.join_method == "nested" or not applicable:
            predicate = conjoin(applicable) if applicable else None
            return NestedLoopJoin(left, right, predicate)

        left_keys: list[int] = []
        right_keys: list[int] = []
        null_safe: list[bool] = []
        residual: list[Expr] = []
        for conjunct in applicable:
            keys = self._equi_keys(conjunct, left, right, right_alias)
            if keys is None:
                residual.append(conjunct)
            else:
                left_keys.append(keys[0])
                right_keys.append(keys[1])
                null_safe.append(keys[2])

        if not left_keys:
            return NestedLoopJoin(left, right, conjoin(applicable))

        residual_pred = conjoin(residual) if residual else None
        if self.options.join_method == "merge":
            return SortMergeJoin(
                left, right, left_keys, right_keys, residual_pred, null_safe
            )
        return HashJoin(
            left,
            right,
            left_keys,
            right_keys,
            residual_pred,
            null_safe,
            build_left=self._build_left(left, right),
        )

    def _build_left(self, left: PlanNode, right: PlanNode) -> bool:
        """Build the hash table on the left when it is estimated smaller.

        Requires a database (for cardinalities); without one — or when
        the cost model cannot estimate an input — keep the default
        build-on-right, which matches direct operator construction.
        """
        if self.database is None:
            return False
        if self._cost_based():
            from ..stats.estimator import estimator_for

            model = estimator_for(self.database, self.options, stats=self.stats)
        else:
            from .cost import CostModel  # deferred: cost imports operators

            model = CostModel(self.database)
        try:
            return model.estimate(left).rows < model.estimate(right).rows
        except ReproError:
            return False

    def _equi_keys(
        self,
        conjunct: Expr,
        left: PlanNode,
        right: PlanNode,
        right_alias: str,
    ) -> tuple[int, int, bool] | None:
        """Key indices plus a null-safe flag for a joinable conjunct.

        Recognizes plain equality ``a = b`` and the null-safe pattern
        the Theorem 3 rewrite generates::

            (a IS NULL AND b IS NULL) OR a = b

        which is SQL's IS NOT DISTINCT FROM — joinable with ≐ keys.
        """
        null_safe = False
        comparison = conjunct
        if isinstance(conjunct, Or):
            pair = self._null_safe_pattern(conjunct)
            if pair is None:
                return None
            comparison = pair
            null_safe = True
        if not isinstance(comparison, Comparison) or comparison.op != "=":
            return None
        a, b = comparison.left, comparison.right
        if not isinstance(a, ColumnRef) or not isinstance(b, ColumnRef):
            return None
        for first, second in ((a, b), (b, a)):
            if second.qualifier != right_alias:
                continue
            left_index = left.schema.try_index_of(first.qualifier, first.column)
            right_index = right.schema.try_index_of(
                second.qualifier, second.column
            )
            if left_index is not None and right_index is not None:
                return left_index, right_index, null_safe
        return None

    @staticmethod
    def _null_safe_pattern(disjunction: Or) -> Comparison | None:
        """Match ``(a IS NULL AND b IS NULL) OR a = b``; return the
        equality when the null tests cover exactly its two columns."""
        if len(disjunction.operands) != 2:
            return None
        null_part: And | None = None
        eq_part: Comparison | None = None
        for operand in disjunction.operands:
            if isinstance(operand, And):
                null_part = operand
            elif isinstance(operand, Comparison) and operand.op == "=":
                eq_part = operand
        if null_part is None or eq_part is None:
            return None
        if not isinstance(eq_part.left, ColumnRef) or not isinstance(
            eq_part.right, ColumnRef
        ):
            return None
        if len(null_part.operands) != 2:
            return None
        tested: set[ColumnRef] = set()
        for atom in null_part.operands:
            if not isinstance(atom, IsNull) or atom.negated:
                return None
            if not isinstance(atom.operand, ColumnRef):
                return None
            tested.add(atom.operand)
        if tested != {eq_part.left, eq_part.right}:
            return None
        return eq_part

    def _order(
        self,
        query: SelectQuery,
        current: PlanNode,
        names: list[str],
        indices: list[int],
    ) -> PlanNode:
        positions: list[int] = []
        ascending: list[bool] = []
        for item in query.order_by:
            expr = item.expr
            if not isinstance(expr, ColumnRef):
                raise ExecutionError("ORDER BY supports column references only")
            if expr.qualifier is None and expr.column in names:
                positions.append(names.index(expr.column))
            else:
                raise ExecutionError(
                    "ORDER BY column must appear in the select list"
                )
            ascending.append(item.ascending)
        return Sort(current, positions, ascending)


def execute_plan(
    plan: PlanNode,
    database: Database,
    params: dict[str, SqlValue] | None = None,
    stats: Stats | None = None,
    use_indexes: bool = True,
    guard: ExecutionGuard | None = None,
    parallel: "ParallelOptions | ParallelExecution | None" = None,
    engine_mode: str | None = None,
    batch_rows: int | None = None,
) -> Result:
    """Run a physical plan to completion.

    *use_indexes* governs the correlated-subquery index probes of the
    embedded reference interpreter (plan-level IndexScan choices were
    already fixed at planning time).  *guard* receives a cooperative
    tick per processed row; budget violations abort the execution with
    a :class:`~repro.errors.ResourceError` subclass.  *parallel* (a
    :class:`~repro.engine.parallel.ParallelOptions` or a live
    :class:`~repro.engine.parallel.ParallelExecution`) lets eligible
    operators split large inputs into morsels on the worker pool; it
    never changes the plan or the output sequence.

    *engine_mode* picks the execution style: ``"tuple"`` streams rows
    through the interpreter/compiled closures, ``"vectorized"`` drives
    the plan through the operators' columnar ``batches()`` protocol,
    and ``"auto"`` vectorizes exactly when faults are disarmed.  Like
    *parallel*, the mode is execution-time only — same plan, same
    output sequence.  *batch_rows* sizes the column batches.
    """
    ctx = ExecContext(
        database,
        params=params,
        stats=stats,
        use_indexes=use_indexes,
        guard=guard,
        parallel=parallel_execution(parallel),
        engine_mode=engine_mode,
        batch_rows=batch_rows,
    )
    # One attribute test when tracing is off — the hot path stays bare.
    span_cm = (
        TRACER.span("plan.execute", stats=ctx.stats, root=plan.label())
        if TRACER.enabled
        else NULL_SPAN
    )
    with span_cm as span:
        if ctx.use_batches:
            rows = []
            for batch in plan.batches(ctx):
                rows.extend(batch.to_rows())
        else:
            rows = list(plan.rows(ctx))
        ctx.stats.rows_output += len(rows)
        if span:
            span.attributes["rows"] = len(rows)
            span.attributes["engine_mode"] = ctx.engine_mode
            if guard is not None:
                span.attributes["guard_rows"] = guard.rows_processed
    return Result(plan.schema.output_names(), rows)


def plan_cache_fingerprint(query: "Query | str", database) -> tuple | None:
    """The fingerprint component of a plan-cache key, table-scoped.

    For a parsed query against a plain :class:`Database`, the
    fingerprint covers only the tables the query references — the
    catalog fingerprint plus each referenced table's data version.  A
    commit bumps exactly its touched tables, so plans (and anything
    else keyed this way) for *other* tables survive the write; this is
    the incremental-invalidation contract the
    ``invalidation_scoped_total`` counter measures.

    Wrapped databases (shard slices, transaction views), unparsable
    SQL, and any extraction failure fall back to the whole-database
    fingerprint via :func:`~repro.cache.safe_fingerprint` — fail-closed,
    never finer-grained than justified.  The scoped shape carries a
    ``"tables"`` discriminator so it can never alias the full
    ``(catalog, data-sum)`` fingerprint.  Raw SQL is parsed just for
    scoping; the text itself sits in the key beside the fingerprint,
    so two queries never share an entry through this parse.
    """
    if type(database) is Database:
        try:
            ast = parse_query(query) if isinstance(query, str) else query
            tables = referenced_tables(ast)
        except Exception:
            tables = None  # unparsable / malformed: fall back to full scope
        if tables:
            try:
                FAULTS.check(SITE_FINGERPRINT)
                return (
                    "tables",
                    database.catalog.fingerprint(),
                    database.table_versions(tables),
                )
            except ResourceError:
                raise
            except Exception:
                return None  # fail-closed: skip the cache entirely
    return safe_fingerprint(database)


def execute_planned(
    query: Query | str,
    database: Database,
    params: dict[str, SqlValue] | None = None,
    stats: Stats | None = None,
    options: PlannerOptions | None = None,
    use_indexes: bool = True,
    plan_cache: PlanCache | None = None,
    guard: ExecutionGuard | None = None,
    parallel: "ParallelOptions | ParallelExecution | None" = None,
    engine_mode: str | None = None,
    batch_rows: int | None = None,
) -> Result:
    """Plan and execute *query* with the physical engine.

    Plans are served from *plan_cache* (the process-wide cache by
    default) keyed on a fingerprint, the query text, and the planner
    options — DDL or a mutation of a *referenced* table moves the
    fingerprint, so a stale plan can never be reused, while commits to
    unrelated tables leave the entry alive
    (:func:`plan_cache_fingerprint`).  Host-variable bindings do not
    enter the key: cached plans resolve them at execution time.

    The cache is fail-closed: if the fingerprint cannot be computed, or
    the lookup itself fails, the query is planned from scratch and
    nothing is cached — a stale plan is never served in exchange for a
    broken fingerprint.

    *parallel* is execution-time only: it does not enter the cache key,
    because parallel morsel execution never changes the plan shape or
    the result sequence — only which threads evaluate which row ranges.
    *engine_mode* and *batch_rows* stay out of the key for the same
    reason: the vectorized engine runs the identical plan, just batched.
    """
    options = options or PlannerOptions()
    if not use_indexes and options.index_scans:
        options = replace(options, index_scans=False)
    stats = stats if stats is not None else Stats()
    cache = plan_cache if plan_cache is not None else GLOBAL_PLAN_CACHE
    sql_text = query if isinstance(query, str) else to_sql(query)
    traced = TRACER.enabled  # one test up front; hot path stays bare
    span_cm = (
        TRACER.span("query.execute_planned", stats=stats, sql=sql_text)
        if traced
        else NULL_SPAN
    )
    with span_cm as span:
        plan = None
        key = None
        fingerprint = plan_cache_fingerprint(query, database)
        if fingerprint is None:
            stats.cache_skips += 1
        else:
            key = (fingerprint, sql_text, options)
            if options.use_stats or options.adaptive:
                # Statistics and correction versions enter the key so a
                # re-ANALYZE or new adaptive observations force a replan
                # instead of serving a plan picked under stale numbers.
                from ..stats.adaptive import GLOBAL_CORRECTIONS

                statistics = getattr(database, "statistics", None)
                key = (
                    fingerprint,
                    sql_text,
                    options,
                    statistics.version if statistics is not None else 0,
                    GLOBAL_CORRECTIONS.version if options.adaptive else 0,
                )
            try:
                if traced:
                    with TRACER.span("plan_cache.lookup"):
                        plan = cache.lookup(key)
                else:
                    plan = cache.lookup(key)
            except ResourceError:
                raise
            except Exception:
                stats.cache_skips += 1
                key = None
        if plan is None:
            stats.plan_cache_misses += 1
            if span:
                span.attributes["plan_cache"] = "miss"
            planner = Planner(
                database.catalog, options, database=database, stats=stats
            )
            if traced:
                with TRACER.span("planner.plan"):
                    plan = planner.plan(query)
            else:
                plan = planner.plan(query)
            if key is not None:
                cache.store(key, plan)
        else:
            stats.plan_cache_hits += 1
            if span:
                span.attributes["plan_cache"] = "hit"
        return execute_plan(
            plan,
            database,
            params=params,
            stats=stats,
            use_indexes=use_indexes,
            guard=guard,
            parallel=parallel,
            engine_mode=engine_mode,
            batch_rows=batch_rows,
        )
