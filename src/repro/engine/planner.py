"""Physical planner.

Compiles a query AST into a tree of physical operators.  The planner is
rule-based and deliberately simple — its job is to make execution
*strategy* a measurable variable:

* single-table conjuncts are pushed down below joins,
* equality conjuncts between two tables become hash- or sort-merge-join
  keys (configurable; nested-loop is the fallback and can be forced),
* conjuncts containing subqueries stay in a final Filter, where the
  evaluator re-executes them per row — the naive nested-loop strategy,
* DISTINCT becomes a sort- or hash-based duplicate-elimination operator.

The semantic rewrites of the paper (distinct elimination, subquery
flattening, ...) happen *before* planning, in :mod:`repro.core.rewrite`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.schema import Catalog
from ..errors import ExecutionError
from ..sql.ast import Query, SelectQuery, SetOperation
from ..sql.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expr,
    IsNull,
    Or,
    column_refs,
    conjoin,
    conjuncts,
    contains_subquery,
)
from ..sql.parser import parse_query
from ..types.values import SqlValue
from .database import Database
from .operators import (
    ExecContext,
    Filter,
    HashDistinct,
    HashJoin,
    NestedLoopJoin,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    SortDistinct,
    SortMergeJoin,
    SortSetOp,
)
from .projection import resolve_projection
from .result import Result
from .stats import Stats


@dataclass(frozen=True)
class PlannerOptions:
    """Strategy knobs for physical planning.

    Attributes:
        join_method: 'hash', 'merge', or 'nested' for equi-joins.
        distinct_method: 'sort' (the paper's cost model) or 'hash'.
    """

    join_method: str = "hash"
    distinct_method: str = "sort"

    def __post_init__(self) -> None:
        if self.join_method not in ("hash", "merge", "nested"):
            raise ValueError(f"unknown join method {self.join_method!r}")
        if self.distinct_method not in ("sort", "hash"):
            raise ValueError(f"unknown distinct method {self.distinct_method!r}")


class Planner:
    """Compiles query ASTs to physical plans against a catalog."""

    def __init__(
        self, catalog: Catalog, options: PlannerOptions | None = None
    ) -> None:
        self.catalog = catalog
        self.options = options or PlannerOptions()

    # ------------------------------------------------------------------

    def plan(self, query: Query | str) -> PlanNode:
        """Build the physical plan for *query*."""
        if isinstance(query, str):
            query = parse_query(query)
        if isinstance(query, SelectQuery):
            return self._plan_select(query)
        if isinstance(query, SetOperation):
            left = self.plan(query.left)
            right = self.plan(query.right)
            if len(left.schema) != len(right.schema):
                raise ExecutionError(
                    "set operation operands are not union-compatible"
                )
            return SortSetOp(query.kind, query.all, left, right)
        raise ExecutionError(f"cannot plan {type(query).__name__}")

    # ------------------------------------------------------------------

    def _plan_select(self, query: SelectQuery) -> PlanNode:
        scans = self._scans(query)
        qualifier_columns = self._qualifier_columns(scans)

        local: dict[str, list[Expr]] = {alias: [] for alias in scans}
        joinable: list[tuple[frozenset[str], Expr]] = []
        residual: list[Expr] = []

        for conjunct in conjuncts(query.where):
            tables = self._tables_of(conjunct, qualifier_columns)
            if tables is None:
                residual.append(conjunct)
            elif len(tables) == 0:
                residual.append(conjunct)  # e.g. :HV = 5 — constant test
            elif len(tables) == 1:
                local[next(iter(tables))].append(conjunct)
            else:
                joinable.append((frozenset(tables), conjunct))

        # Push single-table conjuncts below the joins.
        planned: dict[str, PlanNode] = {}
        for alias, scan in scans.items():
            node: PlanNode = scan
            if local[alias]:
                node = Filter(node, conjoin(local[alias]))
            planned[alias] = node

        # Left-deep join tree in FROM-clause order.
        order = list(scans)
        current = planned[order[0]]
        covered = {order[0]}
        pending = list(joinable)
        for alias in order[1:]:
            right = planned[alias]
            applicable: list[Expr] = []
            remaining: list[tuple[frozenset[str], Expr]] = []
            for tables, conjunct in pending:
                if tables <= covered | {alias} and alias in tables:
                    applicable.append(conjunct)
                else:
                    remaining.append((tables, conjunct))
            pending = remaining
            current = self._join(
                current, right, applicable, qualifier_columns, alias
            )
            covered.add(alias)

        # Multi-table conjuncts that never became join predicates (or that
        # span tables not adjacent in the join order) plus subquery
        # conjuncts run in a final filter over the full product schema.
        leftovers = [conjunct for _, conjunct in pending] + residual
        if leftovers:
            current = Filter(current, conjoin(leftovers))

        names, indices = resolve_projection(query.select_list, current.schema)
        current = Project(current, indices, names)

        if query.distinct:
            if self.options.distinct_method == "sort":
                current = SortDistinct(current)
            else:
                current = HashDistinct(current)

        if query.order_by:
            current = self._order(query, current, names, indices)
        return current

    def _scans(self, query: SelectQuery) -> dict[str, SeqScan]:
        scans: dict[str, SeqScan] = {}
        for table_ref in query.tables:
            alias = table_ref.effective_name
            if alias in scans:
                raise ExecutionError(
                    f"duplicate correlation name {alias!r} in FROM clause"
                )
            schema = self.catalog.table(table_ref.name)
            scans[alias] = SeqScan(
                schema.name, alias, schema.column_names
            )
        return scans

    def _qualifier_columns(
        self, scans: dict[str, SeqScan]
    ) -> dict[str, set[str]]:
        return {
            alias: {column.name for column in scan.schema.columns}
            for alias, scan in scans.items()
        }

    def _tables_of(
        self, conjunct: Expr, qualifier_columns: dict[str, set[str]]
    ) -> set[str] | None:
        """Qualifiers referenced by *conjunct*, or None if unplannable.

        Conjuncts containing subqueries are left for the final filter
        (their inner column references must not be mis-attributed).
        """
        if contains_subquery(conjunct):
            return None
        tables: set[str] = set()
        for ref in column_refs(conjunct):
            if ref.qualifier is not None:
                if ref.qualifier not in qualifier_columns:
                    return None  # correlated outer reference
                tables.add(ref.qualifier)
                continue
            owners = [
                alias
                for alias, columns in qualifier_columns.items()
                if ref.column in columns
            ]
            if len(owners) != 1:
                return None  # unknown or ambiguous: resolve at runtime
            tables.add(owners[0])
        return tables

    def _join(
        self,
        left: PlanNode,
        right: PlanNode,
        applicable: list[Expr],
        qualifier_columns: dict[str, set[str]],
        right_alias: str,
    ) -> PlanNode:
        if self.options.join_method == "nested" or not applicable:
            predicate = conjoin(applicable) if applicable else None
            return NestedLoopJoin(left, right, predicate)

        left_keys: list[int] = []
        right_keys: list[int] = []
        null_safe: list[bool] = []
        residual: list[Expr] = []
        for conjunct in applicable:
            keys = self._equi_keys(conjunct, left, right, right_alias)
            if keys is None:
                residual.append(conjunct)
            else:
                left_keys.append(keys[0])
                right_keys.append(keys[1])
                null_safe.append(keys[2])

        if not left_keys:
            return NestedLoopJoin(left, right, conjoin(applicable))

        residual_pred = conjoin(residual) if residual else None
        if self.options.join_method == "merge":
            return SortMergeJoin(
                left, right, left_keys, right_keys, residual_pred, null_safe
            )
        return HashJoin(
            left, right, left_keys, right_keys, residual_pred, null_safe
        )

    def _equi_keys(
        self,
        conjunct: Expr,
        left: PlanNode,
        right: PlanNode,
        right_alias: str,
    ) -> tuple[int, int, bool] | None:
        """Key indices plus a null-safe flag for a joinable conjunct.

        Recognizes plain equality ``a = b`` and the null-safe pattern
        the Theorem 3 rewrite generates::

            (a IS NULL AND b IS NULL) OR a = b

        which is SQL's IS NOT DISTINCT FROM — joinable with ≐ keys.
        """
        null_safe = False
        comparison = conjunct
        if isinstance(conjunct, Or):
            pair = self._null_safe_pattern(conjunct)
            if pair is None:
                return None
            comparison = pair
            null_safe = True
        if not isinstance(comparison, Comparison) or comparison.op != "=":
            return None
        a, b = comparison.left, comparison.right
        if not isinstance(a, ColumnRef) or not isinstance(b, ColumnRef):
            return None
        for first, second in ((a, b), (b, a)):
            if second.qualifier != right_alias:
                continue
            left_index = left.schema.try_index_of(first.qualifier, first.column)
            right_index = right.schema.try_index_of(
                second.qualifier, second.column
            )
            if left_index is not None and right_index is not None:
                return left_index, right_index, null_safe
        return None

    @staticmethod
    def _null_safe_pattern(disjunction: Or) -> Comparison | None:
        """Match ``(a IS NULL AND b IS NULL) OR a = b``; return the
        equality when the null tests cover exactly its two columns."""
        if len(disjunction.operands) != 2:
            return None
        null_part: And | None = None
        eq_part: Comparison | None = None
        for operand in disjunction.operands:
            if isinstance(operand, And):
                null_part = operand
            elif isinstance(operand, Comparison) and operand.op == "=":
                eq_part = operand
        if null_part is None or eq_part is None:
            return None
        if not isinstance(eq_part.left, ColumnRef) or not isinstance(
            eq_part.right, ColumnRef
        ):
            return None
        if len(null_part.operands) != 2:
            return None
        tested: set[ColumnRef] = set()
        for atom in null_part.operands:
            if not isinstance(atom, IsNull) or atom.negated:
                return None
            if not isinstance(atom.operand, ColumnRef):
                return None
            tested.add(atom.operand)
        if tested != {eq_part.left, eq_part.right}:
            return None
        return eq_part

    def _order(
        self,
        query: SelectQuery,
        current: PlanNode,
        names: list[str],
        indices: list[int],
    ) -> PlanNode:
        positions: list[int] = []
        ascending: list[bool] = []
        for item in query.order_by:
            expr = item.expr
            if not isinstance(expr, ColumnRef):
                raise ExecutionError("ORDER BY supports column references only")
            if expr.qualifier is None and expr.column in names:
                positions.append(names.index(expr.column))
            else:
                raise ExecutionError(
                    "ORDER BY column must appear in the select list"
                )
            ascending.append(item.ascending)
        return Sort(current, positions, ascending)


def execute_plan(
    plan: PlanNode,
    database: Database,
    params: dict[str, SqlValue] | None = None,
    stats: Stats | None = None,
) -> Result:
    """Run a physical plan to completion."""
    ctx = ExecContext(database, params=params, stats=stats)
    rows = list(plan.rows(ctx))
    ctx.stats.rows_output += len(rows)
    return Result(plan.schema.output_names(), rows)


def execute_planned(
    query: Query | str,
    database: Database,
    params: dict[str, SqlValue] | None = None,
    stats: Stats | None = None,
    options: PlannerOptions | None = None,
) -> Result:
    """Plan and execute *query* with the physical engine."""
    planner = Planner(database.catalog, options)
    return execute_plan(planner.plan(query), database, params=params, stats=stats)
