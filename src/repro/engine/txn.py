"""MVCC transactions: snapshot isolation over versioned rows.

Every stored row carries a :class:`RowVersion` with ``(xmin, xmax)``
transaction stamps.  A :class:`TransactionManager` (one per
:class:`~repro.engine.database.Database`) issues monotonic transaction
ids and hands out :class:`Snapshot`\\ s — the high-water id plus the set
of transactions still active at begin.  A version is visible to a
snapshot when its inserter committed before the snapshot and its
deleter (if any) did not.

Writes never touch shared state until commit: each
:class:`Transaction` buffers inserted rows and to-be-deleted version
references per table, so rollback is simply dropping the buffers —
nothing to undo, nothing for a reader to ever glimpse.  Commit runs
under the manager's single commit lock:

1. the ``wal_commit`` fault site fires *first* (an injected failure
   aborts cleanly — shared state has not moved);
2. first-committer-wins: any delete target already stamped with an
   ``xmax`` means a concurrent transaction committed a conflicting
   change → :class:`~repro.errors.WriteConflictError`;
3. candidate keys are re-validated against the *latest committed*
   state (a key inserted by a transaction that committed after our
   snapshot was invisible to the statement-time check) →
   :class:`~repro.errors.UniquenessViolationError`;
4. the buffered writes apply atomically per table — versions stamped,
   the committed row list swapped copy-on-write, hash/key indexes
   maintained as one batch — and only the *touched* tables bump their
   data versions.

That last point is the incremental-invalidation contract: fingerprints
of untouched tables do not move, so plan-cache / uniqueness-memo /
statistics / correction entries scoped to them survive the commit.
The counters ``invalidation_scoped_total`` (table versions actually
bumped) and ``invalidation_total`` (what a whole-database invalidation
would have bumped) make the precision measurable.

Readers inside a transaction see the database through a
:class:`TransactionView` — the begin snapshot plus the transaction's
own buffered writes — and never block.  Statements outside any
transaction read the latest committed state directly (the commit swap
is atomic per table), and DML outside a transaction runs in an
implicit single-statement transaction.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import (
    TransactionError,
    UniquenessViolationError,
    WriteConflictError,
)
from ..observe.metrics import PROCESS_METRICS
from ..observe.trace import TRACER
from ..resilience.faults import FAULTS, SITE_WAL_COMMIT
from ..types.values import SqlValue, is_null, row_sort_key
from .columnar import batches_from_rows

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database
    from .table_data import TableData


class RowVersion:
    """One physical row version: the tuple plus its (xmin, xmax) stamps.

    ``xmin`` is the id of the committing inserter (0 for bootstrap
    loads), ``xmax`` the id of the committing deleter or None while the
    version is live.  Stamps are only ever written under the manager's
    commit lock, so any non-None stamp belongs to a *committed*
    transaction.
    """

    __slots__ = ("row", "xmin", "xmax")

    def __init__(self, row: tuple, xmin: int = 0, xmax: int | None = None) -> None:
        self.row = row
        self.xmin = xmin
        self.xmax = xmax

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowVersion({self.row!r}, xmin={self.xmin}, xmax={self.xmax})"


class Snapshot:
    """What one transaction is allowed to see: everything committed
    before it began.

    Attributes:
        high: the highest transaction id issued at begin time; versions
            stamped by a later id are invisible.
        active: ids active (begun, not yet finished) at begin time;
            their effects are invisible even if they commit later.
    """

    __slots__ = ("high", "active")

    def __init__(self, high: int, active: frozenset[int]) -> None:
        self.high = high
        self.active = active

    def sees(self, version: RowVersion) -> bool:
        """Visibility under snapshot isolation."""
        xmin = version.xmin
        if xmin and (xmin > self.high or xmin in self.active):
            return False  # inserter had not committed at our begin
        xmax = version.xmax
        if xmax is None:
            return True
        # Deleted — but the delete only hides the row if the deleter
        # committed before our snapshot.
        return xmax > self.high or xmax in self.active


class TransactionManager:
    """Issues transaction ids and serializes commits for one database."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._lock = threading.Lock()
        self._next_id = 1
        self._active: set[int] = set()
        #: Lifetime counters, exposed for observability and tests.
        self.begun = 0
        self.committed = 0
        self.rolled_back = 0
        self.conflicts = 0

    def begin(self) -> "Transaction":
        """Start a transaction pinned to a fresh snapshot."""
        with self._lock:
            xid = self._next_id
            self._next_id += 1
            snapshot = Snapshot(xid - 1, frozenset(self._active))
            self._active.add(xid)
            self.begun += 1
        return Transaction(self._database, self, xid, snapshot)

    def _finish(self, xid: int, committed: bool) -> None:
        with self._lock:
            self._active.discard(xid)
            if committed:
                self.committed += 1
            else:
                self.rolled_back += 1

    def snapshot(self) -> dict:
        """Introspection: counters plus currently active transactions."""
        with self._lock:
            return {
                "active": sorted(self._active),
                "begun": self.begun,
                "committed": self.committed,
                "rolled_back": self.rolled_back,
                "conflicts": self.conflicts,
            }


class Transaction:
    """One transaction: a snapshot plus buffered, uncommitted writes.

    Not thread-safe — a transaction belongs to one session.  Writes go
    through :meth:`insert_row` / :meth:`delete_version`; the DML
    executor drives them.  ``change_count`` bumps on every buffered
    write so the :class:`TransactionView` fingerprint (and thus every
    fingerprint-keyed cache) tracks the transaction-local state.
    """

    def __init__(
        self,
        database: "Database",
        manager: TransactionManager,
        xid: int,
        snapshot: Snapshot,
    ) -> None:
        self.database = database
        self.manager = manager
        self.xid = xid
        self.snapshot = snapshot
        self.status = "active"
        self.change_count = 0
        self._inserts: dict[str, list[tuple]] = {}
        self._deletes: dict[str, list[RowVersion]] = {}
        self._deleted_ids: dict[str, set[int]] = {}
        # Per-table candidate-key occupancy under this transaction's
        # view (snapshot + own writes), built lazily on first write to
        # a table and maintained incrementally — the online uniqueness
        # check is O(keys) per row, not O(table).
        self._key_sets: dict[str, list[dict[tuple, int]]] = {}
        self._view: TransactionView | None = None

    # ------------------------------------------------------------------
    # state

    @property
    def active(self) -> bool:
        return self.status == "active"

    def _require_active(self, action: str) -> None:
        if not self.active:
            raise TransactionError(
                f"cannot {action}: transaction {self.xid} is {self.status}"
            )

    def touched_tables(self) -> list[str]:
        """Tables with buffered writes, sorted."""
        return sorted(set(self._inserts) | set(self._deletes))

    def view(self) -> "TransactionView":
        """The database as this transaction sees it."""
        if self._view is None:
            self._view = TransactionView(self.database, self)
        return self._view

    # ------------------------------------------------------------------
    # buffered writes

    def visible_versions(self, table: str) -> Iterable[RowVersion]:
        """Shared versions visible to this transaction, own deletes
        excluded (own inserts are buffered, not versioned yet)."""
        data = self.database.table(table)
        deleted = self._deleted_ids.get(data.schema.name, ())
        sees = self.snapshot.sees
        for version in data.versions:
            if id(version) not in deleted and sees(version):
                yield version

    def pending_inserts(self, table: str) -> list[tuple]:
        return self._inserts.get(table.upper(), [])

    def insert_row(self, table: str, values: Sequence[SqlValue]) -> tuple:
        """Buffer one row, enforcing constraints against the view.

        Validates column count, NOT NULL and CHECK constraints (row
        local, so the stored validators apply unchanged), candidate-key
        uniqueness against the transactional view (typed
        :class:`UniquenessViolationError`), and FOREIGN KEYs against
        the view.  The shared table is untouched until commit.
        """
        self._require_active("insert")
        data = self.database.table(table)
        name = data.schema.name
        row = tuple(values)
        data.validate_row(row)
        self._check_unique(data, name, row)
        from .database import Database  # local import breaks the cycle

        Database._check_foreign_keys(self.view(), data.schema, row)
        self._inserts.setdefault(name, []).append(row)
        for key_set, key in zip(
            self._key_sets[name], data.schema.candidate_keys
        ):
            kt = data._key_tuple(key.columns, row)
            key_set[kt] = key_set.get(kt, 0) + 1
        self.change_count += 1
        self._invalidate_view(name)
        return row

    def delete_version(self, table: str, version: RowVersion) -> bool:
        """Buffer the delete of one visible version; False if already
        buffered (deleting a row twice in one transaction is a no-op)."""
        self._require_active("delete")
        data = self.database.table(table)
        name = data.schema.name
        deleted = self._deleted_ids.setdefault(name, set())
        if id(version) in deleted:
            return False
        self._ensure_key_sets(data, name)
        deleted.add(id(version))
        self._deletes.setdefault(name, []).append(version)
        for key_set, key in zip(
            self._key_sets[name], data.schema.candidate_keys
        ):
            kt = data._key_tuple(key.columns, version.row)
            count = key_set.get(kt, 0) - 1
            if count <= 0:
                key_set.pop(kt, None)
            else:
                key_set[kt] = count
        self.change_count += 1
        self._invalidate_view(name)
        return True

    def delete_pending_insert(self, table: str, row: tuple) -> bool:
        """Remove one occurrence of a row this transaction inserted
        (DELETE reaching the transaction's own uncommitted rows)."""
        self._require_active("delete")
        data = self.database.table(table)
        name = data.schema.name
        pending = self._inserts.get(name)
        if not pending or row not in pending:
            return False
        pending.remove(row)
        for key_set, key in zip(
            self._key_sets[name], data.schema.candidate_keys
        ):
            kt = data._key_tuple(key.columns, row)
            count = key_set.get(kt, 0) - 1
            if count <= 0:
                key_set.pop(kt, None)
            else:
                key_set[kt] = count
        self.change_count += 1
        self._invalidate_view(name)
        return True

    def _ensure_key_sets(self, data: "TableData", name: str) -> None:
        if name in self._key_sets:
            return
        key_sets: list[dict[tuple, int]] = [
            {} for _ in data.schema.candidate_keys
        ]
        if key_sets:
            for version in self.visible_versions(name):
                for key_set, key in zip(key_sets, data.schema.candidate_keys):
                    kt = data._key_tuple(key.columns, version.row)
                    key_set[kt] = key_set.get(kt, 0) + 1
        self._key_sets[name] = key_sets

    def _check_unique(self, data: "TableData", name: str, row: tuple) -> None:
        self._ensure_key_sets(data, name)
        for key_set, key in zip(self._key_sets[name], data.schema.candidate_keys):
            if data._key_tuple(key.columns, row) in key_set:
                raise UniquenessViolationError(name, key.describe())

    def _invalidate_view(self, table: str) -> None:
        if self._view is not None:
            self._view.invalidate(table)

    # ------------------------------------------------------------------
    # statement atomicity

    def savepoint(self) -> dict:
        """A copy of the buffered write state, for statement rollback."""
        return {
            "inserts": {k: list(v) for k, v in self._inserts.items()},
            "deletes": {k: list(v) for k, v in self._deletes.items()},
            "deleted_ids": {k: set(v) for k, v in self._deleted_ids.items()},
            "key_sets": {
                k: [dict(d) for d in v] for k, v in self._key_sets.items()
            },
            "change_count": self.change_count,
        }

    def restore(self, state: dict) -> None:
        """Restore the buffers saved by :meth:`savepoint` (a failed
        statement leaves the transaction exactly as it found it)."""
        touched = set(self._inserts) | set(self._deletes)
        self._inserts = state["inserts"]
        self._deletes = state["deletes"]
        self._deleted_ids = state["deleted_ids"]
        self._key_sets = state["key_sets"]
        self.change_count = state["change_count"] + 1
        for name in touched | set(self._inserts) | set(self._deletes):
            self._invalidate_view(name)

    # ------------------------------------------------------------------
    # lifecycle

    def rollback(self) -> None:
        """Discard every buffered write.  Always clean: shared state was
        never touched, so there is nothing to undo."""
        if self.status == "rolled back":
            return
        self._require_active("rollback")
        self._abort()

    def _abort(self) -> None:
        self._inserts.clear()
        self._deletes.clear()
        self._deleted_ids.clear()
        self._key_sets.clear()
        self.status = "rolled back"
        self.manager._finish(self.xid, committed=False)
        PROCESS_METRICS.inc("txn_rollbacks_total")

    def commit(self) -> list[str]:
        """Atomically publish the buffered writes; returns the touched
        tables.  On any failure — injected ``wal_commit`` fault,
        write-write conflict, commit-time key conflict — the
        transaction aborts and shared state is untouched."""
        self._require_active("commit")
        touched = self.touched_tables()
        if not touched:
            self.status = "committed"
            self.manager._finish(self.xid, committed=True)
            return []
        manager = self.manager
        with manager._lock:
            with TRACER.span(
                "txn.commit", xid=self.xid, tables=",".join(touched)
            ):
                try:
                    if FAULTS.armed:
                        FAULTS.check(SITE_WAL_COMMIT)
                    self._check_conflicts()
                    self._check_commit_keys()
                except Exception:
                    self._abort_locked()
                    raise
                for name in touched:
                    self.database.table(name).apply_writes(
                        self._deletes.get(name, ()),
                        self._inserts.get(name, ()),
                        self.xid,
                    )
                self._active_discard_locked(committed=True)
        self.status = "committed"
        total = len(self.database.table_names())
        PROCESS_METRICS.inc("txn_commits_total")
        PROCESS_METRICS.inc("invalidation_scoped_total", float(len(touched)))
        PROCESS_METRICS.inc("invalidation_total", float(total))
        return touched

    def _abort_locked(self) -> None:
        """Abort while already holding the manager lock."""
        self._inserts.clear()
        self._deletes.clear()
        self._deleted_ids.clear()
        self._key_sets.clear()
        self.status = "rolled back"
        self._active_discard_locked(committed=False)
        PROCESS_METRICS.inc("txn_rollbacks_total")

    def _active_discard_locked(self, committed: bool) -> None:
        manager = self.manager
        manager._active.discard(self.xid)
        if committed:
            manager.committed += 1
        else:
            manager.rolled_back += 1

    def _check_conflicts(self) -> None:
        """First-committer-wins: a delete target with any xmax stamp was
        already superseded by a committed concurrent transaction."""
        for name, versions in self._deletes.items():
            for version in versions:
                if version.xmax is not None:
                    self.manager.conflicts += 1
                    PROCESS_METRICS.inc("txn_conflicts_total")
                    raise WriteConflictError(name)

    def _check_commit_keys(self) -> None:
        """Re-validate candidate keys against the *latest committed*
        state: keys committed after our snapshot were invisible to the
        statement-time check."""
        for name, rows in self._inserts.items():
            data = self.database.table(name)
            if not data.schema.candidate_keys:
                continue
            freed = [
                {
                    data._key_tuple(key.columns, version.row)
                    for version in self._deletes.get(name, ())
                }
                for key in data.schema.candidate_keys
            ]
            for row in rows:
                for index, key, freed_keys in zip(
                    data._key_indexes, data.schema.candidate_keys, freed
                ):
                    kt = data._key_tuple(key.columns, row)
                    if kt in index and kt not in freed_keys:
                        self.manager.conflicts += 1
                        PROCESS_METRICS.inc("txn_conflicts_total")
                        raise UniquenessViolationError(
                            name,
                            key.describe(),
                            "committed concurrently",
                        )


# ---------------------------------------------------------------------------
# transactional read view


class _TxnTable:
    """One table as a transaction sees it.

    Duck-types the read surface of :class:`TableData` (``rows``,
    ``hash_index``/``index_lookup``, ``column_batches``, ``__len__``)
    over the snapshot-visible versions plus the transaction's own
    buffered writes.  Materializations are cached against the pair
    (base data version, transaction change count) and rebuilt when
    either moves.
    """

    def __init__(self, base: "TableData", txn: Transaction) -> None:
        self.base = base
        self.schema = base.schema
        self._txn = txn
        self._rows: list[tuple] | None = None
        self._stamp: tuple[int, int] | None = None
        self._hash_indexes: dict[tuple[str, ...], dict[tuple, list[tuple]]] = {}
        self._lock = threading.Lock()
        self.index_builds = 0
        self.single_flight_waits = 0
        self.columnar_builds = 0

    @property
    def version(self) -> tuple[int, int]:
        return (self.base.version, self._txn.change_count)

    def invalidate(self) -> None:
        self._rows = None
        self._hash_indexes.clear()

    @property
    def rows(self) -> list[tuple]:
        stamp = self.version
        if self._rows is None or self._stamp != stamp:
            name = self.schema.name
            rows = [
                version.row
                for version in self._txn.visible_versions(name)
            ]
            rows.extend(self._txn.pending_inserts(name))
            self._rows = rows
            self._stamp = stamp
            self._hash_indexes.clear()
        return self._rows

    def __len__(self) -> int:
        return len(self.rows)

    def indexable_columns(self) -> set[str]:
        return self.base.indexable_columns()

    def hash_index(self, columns: tuple[str, ...]) -> dict[tuple, list[tuple]]:
        rows = self.rows
        with self._lock:
            index = self._hash_indexes.get(columns)
            if index is None:
                positions = [
                    self.schema.column_index(name) for name in columns
                ]
                index = {}
                for row in rows:
                    key = row_sort_key(tuple(row[p] for p in positions))
                    index.setdefault(key, []).append(row)
                self._hash_indexes[columns] = index
                self.index_builds += 1
        return index

    def index_lookup(
        self, columns: tuple[str, ...], values: tuple
    ) -> list[tuple]:
        if any(is_null(value) for value in values):
            return []
        return self.hash_index(columns).get(row_sort_key(values), [])

    def has_hash_index(self, columns: tuple[str, ...]) -> bool:
        return columns in self._hash_indexes

    def has_key_value(self, columns: tuple[str, ...], values: tuple):
        """None: not index-resolvable here — callers fall back to a scan
        of :attr:`rows`, which is exactly the transactional view."""
        return None

    def column_batches(self, batch_rows: int):
        self.columnar_builds += 1
        return batches_from_rows(
            self.rows, len(self.schema.columns), batch_rows
        )


class TransactionView:
    """The database through a transaction's eyes.

    Duck-types the read surface of :class:`~repro.engine.database.Database`
    (catalog, ``table``/``has_table``/``table_names``, ``fingerprint``)
    so the whole read stack — planner, executor, both engines — runs
    unchanged against a pinned snapshot plus the transaction's own
    writes.  The fingerprint extends the base catalog fingerprint with
    the transaction id and change count, so fingerprint-keyed caches
    never alias transactional state with committed state (or with
    another transaction).
    """

    is_transaction_view = True

    def __init__(self, database: "Database", txn: Transaction) -> None:
        self.base = database
        self.txn = txn
        self.catalog = database.catalog
        self.statistics = None
        self._tables: dict[str, _TxnTable] = {}

    def table(self, name: str) -> _TxnTable:
        key = name.upper()
        view = self._tables.get(key)
        if view is None:
            view = _TxnTable(self.base.table(key), self.txn)
            self._tables[key] = view
        return view

    def invalidate(self, table: str) -> None:
        view = self._tables.get(table.upper())
        if view is not None:
            view.invalidate()

    def has_table(self, name: str) -> bool:
        return self.base.has_table(name)

    def table_names(self) -> list[str]:
        return self.base.table_names()

    def table_versions(self, names: Iterable[str]) -> tuple:
        return tuple(
            (name, self.table(name).version) for name in sorted(names)
        )

    def row_counts(self) -> dict[str, int]:
        return {name: len(self.table(name)) for name in self.table_names()}

    def fingerprint(self):
        base = self.base.fingerprint()
        return (
            base[0],
            base[1],
            ("txn", self.txn.xid, self.txn.change_count),
        )
