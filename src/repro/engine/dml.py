"""DML plan nodes: INSERT / UPDATE / DELETE over the MVCC engine.

DML statements plan into :class:`InsertNode` / :class:`UpdateNode` /
:class:`DeleteNode` — :class:`~repro.engine.operators.base.PlanNode`
subclasses that produce no output rows but buffer their writes into a
:class:`~repro.engine.txn.Transaction`.  UPDATE and DELETE evaluate
their WHERE clause over the *transactional view* of the target table
(snapshot-visible versions plus the transaction's own pending writes)
under both engines:

* **tuple** — the reference interpreter evaluates the predicate per
  row through the shared :class:`~repro.engine.evaluator.Evaluator`
  (three-valued ⌊P⌋ semantics, correlated subqueries included);
* **vectorized** — the WHERE clause compiles to a batch mask kernel
  (:func:`~repro.engine.columnar.compile_batch_filter`) applied over
  morsel-sized column batches of the candidate rows, falling back to
  the tuple path when the predicate is outside the kernel frontier.

Either way the *matching phase completes before any write is
buffered*, so a statement never observes its own effects — and a
constraint failure mid-statement restores the transaction to its
pre-statement state (statement atomicity) via
:meth:`Transaction.savepoint`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..errors import (
    ConstraintViolation,
    ExecutionError,
    MissingHostVariableError,
)
from ..sql.ast import Assignment, Delete, Dml, Insert, Update
from ..sql.expressions import HostVar
from ..types.values import NULL
from .columnar import batches_from_rows, compile_batch_filter
from .operators.base import ExecContext, PlanNode
from .schema import RelSchema, Scope

if TYPE_CHECKING:  # pragma: no cover
    from .txn import Transaction


class DmlNode(PlanNode):
    """Base class: a write statement as a plan node.

    ``execute`` performs the statement and returns the affected-row
    count; ``rows`` exists for plan-protocol compatibility (EXPLAIN,
    analysis walkers) and yields nothing.
    """

    def __init__(self, table: str) -> None:
        self.table = table.upper()
        self.schema = RelSchema.for_table(self.table, [])
        self.affected = 0

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        return iter(())

    def execute(self, ctx: ExecContext, txn: "Transaction") -> int:
        raise NotImplementedError

    # -- matching helpers ------------------------------------------------

    def _candidates(self, txn: "Transaction"):
        """Every row this statement may touch, with its write handle:
        ``(version-or-None, row)`` — a version for committed rows, None
        for the transaction's own pending inserts."""
        pairs = [
            (version, version.row)
            for version in txn.visible_versions(self.table)
        ]
        pairs.extend((None, row) for row in txn.pending_inserts(self.table))
        return pairs

    def _matching(self, ctx: ExecContext, txn: "Transaction", where):
        """Candidate pairs whose WHERE verdict is definitely TRUE."""
        pairs = self._candidates(txn)
        if where is None:
            if pairs:
                ctx.tick(len(pairs))
            return pairs
        data = txn.database.table(self.table)
        schema = RelSchema.for_table(self.table, data.schema.column_names)
        if ctx.use_batches:
            kernel = compile_batch_filter(where, schema, ctx.evaluator.params)
            if kernel is not None:
                return self._matching_batches(ctx, pairs, kernel)
        matched = []
        for pair in pairs:
            ctx.tick()
            ctx.stats.predicate_evals += 1
            if ctx.evaluator.qualifies(where, Scope(schema, pair[1])):
                matched.append(pair)
        return matched

    def _matching_batches(self, ctx: ExecContext, pairs, kernel):
        """Vectorized matching: mask kernels over candidate batches."""
        matched = []
        offset = 0
        for batch in batches_from_rows(
            (pair[1] for pair in pairs),
            len(ctx.database.table(self.table).schema.columns),
            ctx.batch_rows,
        ):
            mask = kernel(batch)
            ctx.stats.vectorized_batches += 1
            ctx.stats.vectorized_rows += batch.length
            ctx.tick(batch.length)
            if mask:
                selector = mask.to_bytes(batch.length, "little")
                matched.extend(
                    pairs[offset + i] for i, lane in enumerate(selector) if lane
                )
            offset += batch.length
        return matched


class InsertNode(DmlNode):
    """``INSERT INTO t [(cols)] VALUES ...`` — buffers literal rows."""

    def __init__(self, statement: Insert) -> None:
        super().__init__(statement.table)
        self.statement = statement

    def execute(self, ctx: ExecContext, txn: "Transaction") -> int:
        data = txn.database.table(self.table)
        columns = self.statement.columns
        if columns is not None:
            known = {column.name for column in data.schema.columns}
            unknown = {name.upper() for name in columns} - known
            if unknown:
                raise ConstraintViolation(
                    data.schema.name, f"unknown columns: {sorted(unknown)}"
                )
        count = 0
        for raw in self.statement.rows:
            source = tuple(
                self._resolve(ctx, value) for value in raw
            )
            if columns is None:
                row = tuple(source)
            else:
                if len(source) != len(columns):
                    raise ConstraintViolation(
                        data.schema.name,
                        f"expected {len(columns)} values, got {len(source)}",
                    )
                mapping = {
                    name.upper(): value
                    for name, value in zip(columns, source)
                }
                row = tuple(
                    mapping.get(column.name, NULL)
                    for column in data.schema.columns
                )
            ctx.tick()
            txn.insert_row(self.table, row)
            count += 1
        ctx.stats.rows_inserted += count
        self.affected = count
        return count

    @staticmethod
    def _resolve(ctx: ExecContext, value):
        """A VALUES entry: a literal as-is, a host variable bound."""
        if isinstance(value, HostVar):
            params = ctx.evaluator.params
            if value.name not in params:
                raise MissingHostVariableError(value.name)
            return params[value.name]
        return value

    def label(self) -> str:
        return f"Insert({self.table}, rows={len(self.statement.rows)})"


class DeleteNode(DmlNode):
    """``DELETE FROM t [WHERE ...]`` — buffers version deletes."""

    def __init__(self, statement: Delete) -> None:
        super().__init__(statement.table)
        self.statement = statement

    def execute(self, ctx: ExecContext, txn: "Transaction") -> int:
        matched = self._matching(ctx, txn, self.statement.where)
        count = 0
        for version, row in matched:
            if version is not None:
                if txn.delete_version(self.table, version):
                    count += 1
            elif txn.delete_pending_insert(self.table, row):
                count += 1
        ctx.stats.rows_deleted += count
        self.affected = count
        return count

    def label(self) -> str:
        where = self.statement.where
        suffix = " filtered" if where is not None else ""
        return f"Delete({self.table}{suffix})"


class UpdateNode(DmlNode):
    """``UPDATE t SET ... [WHERE ...]`` — delete + reinsert per match.

    All matches are collected first, then every matched row is deleted,
    then every replacement inserted — so a key moved *between* two rows
    in one statement (swap-style updates) validates against the
    post-statement state, not a half-applied one.
    """

    def __init__(self, statement: Update) -> None:
        super().__init__(statement.table)
        self.statement = statement

    def execute(self, ctx: ExecContext, txn: "Transaction") -> int:
        data = txn.database.table(self.table)
        schema = RelSchema.for_table(self.table, data.schema.column_names)
        positions = []
        for assignment in self.statement.assignments:
            name = assignment.column.upper()
            if not data.schema.has_column(name):
                raise ExecutionError(
                    f"UPDATE {self.table}: unknown column {assignment.column!r}"
                )
            positions.append(
                (data.schema.column_index(name), assignment.value)
            )
        matched = self._matching(ctx, txn, self.statement.where)
        replacements = []
        for _, row in matched:
            scope = Scope(schema, row)
            new_row = list(row)
            for index, expr in positions:
                new_row[index] = ctx.evaluator.value(expr, scope)
            replacements.append(tuple(new_row))
        for version, row in matched:
            if version is not None:
                txn.delete_version(self.table, version)
            else:
                txn.delete_pending_insert(self.table, row)
        for new_row in replacements:
            ctx.tick()
            txn.insert_row(self.table, new_row)
        count = len(matched)
        ctx.stats.rows_updated += count
        self.affected = count
        return count

    def label(self) -> str:
        columns = ",".join(
            assignment.column.upper()
            for assignment in self.statement.assignments
        )
        return f"Update({self.table} SET {columns})"


def plan_dml(statement: Dml) -> DmlNode:
    """The plan node for one parsed DML statement."""
    if isinstance(statement, Insert):
        return InsertNode(statement)
    if isinstance(statement, Update):
        return UpdateNode(statement)
    if isinstance(statement, Delete):
        return DeleteNode(statement)
    raise ExecutionError(
        f"not a DML statement: {type(statement).__name__}"
    )


def execute_dml(
    statement: Dml,
    txn: "Transaction",
    *,
    params=None,
    stats=None,
    guard=None,
    engine_mode: str | None = None,
    batch_rows: int | None = None,
) -> int:
    """Execute one DML statement inside *txn*; returns rows affected.

    The execution context reads through the transaction's view, so the
    statement sees the begin snapshot plus the transaction's earlier
    writes — never another transaction's uncommitted state.  On any
    error the transaction is restored to its pre-statement state.
    """
    node = plan_dml(statement)
    ctx = ExecContext(
        txn.view(),
        params=params,
        stats=stats,
        guard=guard,
        engine_mode=engine_mode,
        batch_rows=batch_rows,
    )
    state = txn.savepoint()
    try:
        return node.execute(ctx, txn)
    except BaseException:
        txn.restore(state)
        raise
