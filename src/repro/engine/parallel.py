"""Partition-parallel execution: morsels, the worker pool, and gating.

The paper's rewrites shrink the work *one* query performs; this module
adds the orthogonal axis — splitting a single operator's input into
row-range **morsels** executed on a shared thread pool.  Chen &
Schneider's SPJU intermediate-size bounds (see PAPERS.md) motivate the
granularity: partition-level cardinality is what decides whether a
scan or a hash-join build is worth splitting at all, so the gate here
is a row-count threshold, not a per-operator heuristic.

Three invariants keep the parallel paths invisible to correctness:

* **Ordered merge** — morsel results are collected in submission
  order, so the output row *sequence* (not just the multiset) is
  byte-identical to the serial operator's.  Partitioning a hash-join
  build preserves per-key bucket order for the same reason: slices are
  merged left-to-right, so each bucket lists build rows in the exact
  insertion order a serial build would produce.
* **Pure workers** — worker tasks touch only immutable inputs (row
  lists, compiled predicate closures); every ``Stats`` counter and
  guard tick is accounted by the coordinating thread as each morsel is
  collected.  Workers never see the evaluator, the guard, or the
  tracer.
* **Conservative gating** — :meth:`ParallelExecution.eligible` says no
  whenever faults are armed (per-row trigger opportunities must be
  preserved), the operator is correlated (``outer`` scope present), or
  the input is below ``min_parallel_rows``.  Ineligible paths run the
  unchanged serial code.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .operators.base import ExecContext


@dataclass(frozen=True)
class ParallelOptions:
    """Knobs for partition-parallel operator execution.

    Attributes:
        workers: morsel worker threads (1 disables parallelism).
        morsel_size: rows per morsel.  2048 balances task-dispatch
            overhead (~tens of microseconds per future) against load
            balancing; see DESIGN.md §3e for the measurement.
        min_parallel_rows: inputs smaller than this stay serial — the
            cost gate.  Splitting a small input buys nothing and pays
            pool dispatch; the default keeps every input that fits in
            two morsels on the fast serial path.
    """

    workers: int = 2
    morsel_size: int = 2048
    min_parallel_rows: int = 4096

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.morsel_size < 1:
            raise ValueError("morsel_size must be at least 1")
        if self.min_parallel_rows < 0:
            raise ValueError("min_parallel_rows must be non-negative")


class MorselPool:
    """A shared thread pool executing morsel tasks in submission order."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-morsel"
        )

    def run_ordered(
        self,
        task: Callable[[Any], Any],
        items: Sequence[Any],
        collect: Callable[[Any], None] | None = None,
    ) -> list[Any]:
        """Run *task* over *items*; return results in item order.

        *collect* (when given) is called with each result from the
        calling thread, in order, as results are gathered — the hook
        the operators use for guard ticks and stats accounting.  Any
        task exception propagates after the remaining futures are
        drained (so no worker is left writing into a discarded list).
        """
        futures = [self._executor.submit(task, item) for item in items]
        results: list[Any] = []
        error: BaseException | None = None
        for future in futures:
            if error is not None:
                future.cancel()
                continue
            try:
                result = future.result()
            except BaseException as exc:  # drain, then re-raise
                error = exc
                continue
            if collect is not None:
                collect(result)
            results.append(result)
        if error is not None:
            raise error
        return results

    def shutdown(self) -> None:
        """Stop the workers (idempotent)."""
        self._executor.shutdown(wait=True)


_shared_pools: dict[int, MorselPool] = {}
_shared_pools_lock = threading.Lock()


def shared_pool(workers: int) -> MorselPool:
    """The process-wide morsel pool for *workers* threads.

    Pools are created on first use and kept for the process lifetime,
    so per-query executions do not pay thread spawn costs.
    """
    with _shared_pools_lock:
        pool = _shared_pools.get(workers)
        if pool is None:
            pool = _shared_pools[workers] = MorselPool(workers)
        return pool


class ParallelExecution:
    """Options plus a live pool, attached to an :class:`ExecContext`.

    Construct via :func:`parallel_execution` (which normalizes options
    to a shared pool) or directly with a pool you own — the service
    does the latter so every session shares one pool.
    """

    __slots__ = ("options", "pool")

    def __init__(self, options: ParallelOptions, pool: MorselPool) -> None:
        self.options = options
        self.pool = pool

    def eligible(self, ctx: "ExecContext", nrows: int, outer: Any) -> bool:
        """Whether an operator over *nrows* input rows may go parallel.

        Requires: >1 worker, an input past the cost threshold, no
        correlation scope, and ``ctx.batch_ticks`` (faults disarmed —
        armed faults need their exact per-row trigger opportunities,
        which only the serial loops provide).
        """
        return (
            self.options.workers > 1
            and nrows >= max(self.options.min_parallel_rows, 1)
            and outer is None
            and ctx.batch_ticks
        )

    def morsels(self, nrows: int) -> list[tuple[int, int]]:
        """Row-range [start, stop) pairs covering ``range(nrows)``."""
        size = self.options.morsel_size
        return [(lo, min(lo + size, nrows)) for lo in range(0, nrows, size)]


def parallel_execution(
    parallel: "ParallelOptions | ParallelExecution | None",
) -> ParallelExecution | None:
    """Normalize a ``parallel=`` argument to a live execution handle."""
    if parallel is None:
        return None
    if isinstance(parallel, ParallelExecution):
        return parallel
    if parallel.workers <= 1:
        return None
    return ParallelExecution(parallel, shared_pool(parallel.workers))
