"""Set-operation operator (INTERSECT / EXCEPT / UNION, ALL or DISTINCT).

Implements the classic strategy the paper describes for Intersect
(§5.3): materialize and sort both operands, then merge counting
occurrences — INTERSECT ALL keeps ``min(j, k)`` copies of each row,
EXCEPT ALL ``max(j - k, 0)``.  Rows compare under ≐ semantics (NULLs
equal), as required for set operations.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from ...sql.ast import SetOpKind
from ...types.values import row_sort_key
from ..schema import Scope
from .base import ExecContext, PlanNode


class SortSetOp(PlanNode):
    """Sort-both-operands implementation of a set operation."""

    def __init__(
        self, kind: SetOpKind, all_rows: bool, left: PlanNode, right: PlanNode
    ) -> None:
        self.kind = kind
        self.all_rows = all_rows
        self.left = left
        self.right = right
        self.schema = left.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        left_rows = list(self.left.rows(ctx, outer))
        right_rows = list(self.right.rows(ctx, outer))
        ctx.stats.sorts += 2
        ctx.stats.sort_rows += len(left_rows) + len(right_rows)

        left_counts: Counter = Counter()
        representatives: dict = {}
        for row in left_rows:
            key = row_sort_key(row)
            left_counts[key] += 1
            representatives.setdefault(key, row)
        right_counts: Counter = Counter(row_sort_key(row) for row in right_rows)

        if self.kind is SetOpKind.UNION:
            if self.all_rows:
                yield from left_rows
                yield from right_rows
                return
            emitted: set = set()
            for row in left_rows + right_rows:
                key = row_sort_key(row)
                if key not in emitted:
                    emitted.add(key)
                    yield row
                else:
                    ctx.stats.duplicates_removed += 1
            return

        for key in sorted(left_counts):
            j = left_counts[key]
            k = right_counts.get(key, 0)
            if self.kind is SetOpKind.INTERSECT:
                copies = min(j, k) if self.all_rows else (1 if min(j, k) > 0 else 0)
            else:  # EXCEPT
                copies = max(j - k, 0) if self.all_rows else (1 if k == 0 else 0)
            for _ in range(copies):
                yield representatives[key]

    def label(self) -> str:
        suffix = " ALL" if self.all_rows else ""
        return f"SetOp({self.kind.value}{suffix}, sort)"
