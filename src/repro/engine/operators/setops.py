"""Set-operation operator (INTERSECT / EXCEPT / UNION, ALL or DISTINCT).

Implements the classic strategy the paper describes for Intersect
(§5.3): materialize and sort both operands, then merge counting
occurrences — INTERSECT ALL keeps ``min(j, k)`` copies of each row,
EXCEPT ALL ``max(j - k, 0)``.  Rows compare under ≐ semantics (NULLs
equal), as required for set operations.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from ...errors import ResourceError
from ...sql.ast import SetOpKind
from ...types.values import row_sort_key
from ..columnar import batch_fault_check, batches_from_rows
from ..schema import Scope
from .base import ExecContext, PlanNode


class SortSetOp(PlanNode):
    """Sort-both-operands implementation of a set operation."""

    def __init__(
        self, kind: SetOpKind, all_rows: bool, left: PlanNode, right: PlanNode
    ) -> None:
        self.kind = kind
        self.all_rows = all_rows
        self.left = left
        self.right = right
        self.schema = left.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        left_rows = list(self.left.rows(ctx, outer))
        right_rows = list(self.right.rows(ctx, outer))
        ctx.stats.sorts += 2
        ctx.stats.sort_rows += len(left_rows) + len(right_rows)

        left_counts: Counter = Counter()
        representatives: dict = {}
        for row in left_rows:
            key = row_sort_key(row)
            left_counts[key] += 1
            representatives.setdefault(key, row)
        right_counts: Counter = Counter(row_sort_key(row) for row in right_rows)

        if self.kind is SetOpKind.UNION:
            if self.all_rows:
                yield from left_rows
                yield from right_rows
                return
            emitted: set = set()
            for row in left_rows + right_rows:
                key = row_sort_key(row)
                if key not in emitted:
                    emitted.add(key)
                    yield row
                else:
                    ctx.stats.duplicates_removed += 1
            return

        for key in sorted(left_counts):
            j = left_counts[key]
            k = right_counts.get(key, 0)
            if self.kind is SetOpKind.INTERSECT:
                copies = min(j, k) if self.all_rows else (1 if min(j, k) > 0 else 0)
            else:  # EXCEPT
                copies = max(j - k, 0) if self.all_rows else (1 if k == 0 else 0)
            for _ in range(copies):
                yield representatives[key]

    # ------------------------------------------------------------------
    # vectorized path

    def _gather(self, ctx: ExecContext, outer, child):
        """Materialize one operand as (rows, canonical keys).

        Keys come from per-batch ``sort_keys()`` vectors; a kernel
        failure demotes the remaining batches to per-row
        ``row_sort_key``, which computes the identical canonical keys.
        """
        rows: list[tuple] = []
        keys: list[tuple] = []
        demoted = False
        for batch in child.batches(ctx, outer):
            batch_rows = batch.to_rows()
            rows.extend(batch_rows)
            if not demoted:
                try:
                    batch_fault_check()
                    keys.extend(batch.sort_keys())
                    continue
                except ResourceError:
                    raise
                except Exception:
                    ctx.stats.vectorized_fallbacks += 1
                    demoted = True
            keys.extend(map(row_sort_key, batch_rows))
        return rows, keys

    def batches(self, ctx: ExecContext, outer: Scope | None = None):
        """Set operation over canonical key vectors (same counting
        strategy as :meth:`rows`, with the per-row key calls replaced
        by batch key vectors)."""
        stats = ctx.stats
        left_rows, left_keys = self._gather(ctx, outer, self.left)
        right_rows, right_keys = self._gather(ctx, outer, self.right)
        stats.sorts += 2
        stats.sort_rows += len(left_rows) + len(right_rows)

        left_counts: Counter = Counter()
        representatives: dict = {}
        for row, key in zip(left_rows, left_keys):
            left_counts[key] += 1
            representatives.setdefault(key, row)
        right_counts: Counter = Counter(right_keys)

        def emit():
            if self.kind is SetOpKind.UNION:
                if self.all_rows:
                    yield from left_rows
                    yield from right_rows
                    return
                emitted: set = set()
                for row, key in zip(
                    left_rows + right_rows, left_keys + right_keys
                ):
                    if key not in emitted:
                        emitted.add(key)
                        yield row
                    else:
                        stats.duplicates_removed += 1
                return
            for key in sorted(left_counts):
                j = left_counts[key]
                k = right_counts.get(key, 0)
                if self.kind is SetOpKind.INTERSECT:
                    copies = (
                        min(j, k) if self.all_rows
                        else (1 if min(j, k) > 0 else 0)
                    )
                else:  # EXCEPT
                    copies = (
                        max(j - k, 0) if self.all_rows
                        else (1 if k == 0 else 0)
                    )
                for _ in range(copies):
                    yield representatives[key]

        for out in batches_from_rows(emit(), len(self.schema), ctx.batch_rows):
            stats.vectorized_batches += 1
            stats.vectorized_rows += out.length
            yield out

    def label(self) -> str:
        suffix = " ALL" if self.all_rows else ""
        return f"SetOp({self.kind.value}{suffix}, sort)"
