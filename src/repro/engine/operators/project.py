"""Projection and duplicate-elimination operators."""

from __future__ import annotations

from typing import Iterator

from ..schema import ColumnInfo, RelSchema, Scope
from ...types.values import row_sort_key
from .base import ExecContext, PlanNode


class Project(PlanNode):
    """Projects input rows onto a list of column indices (ALL semantics)."""

    def __init__(self, child: PlanNode, indices: list[int], names: list[str]) -> None:
        self.child = child
        self.indices = indices
        self.schema = RelSchema(ColumnInfo(None, name) for name in names)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        for row in self.child.rows(ctx, outer):
            yield tuple(row[i] for i in self.indices)

    def label(self) -> str:
        names = ", ".join(column.name for column in self.schema.columns)
        return f"Project({names})"


class SortDistinct(PlanNode):
    """Duplicate elimination by sorting — the paper's default cost model.

    This materializes and sorts its entire input; its ``sort_rows``
    charge is exactly the work the distinct-elimination rewrite avoids.
    """

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.schema = child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        rows = list(self.child.rows(ctx, outer))
        ctx.stats.sorts += 1
        ctx.stats.sort_rows += len(rows)
        rows.sort(key=row_sort_key)
        previous_key = None
        for row in rows:
            key = row_sort_key(row)
            if key != previous_key:
                previous_key = key
                yield row
            else:
                ctx.stats.duplicates_removed += 1

    def label(self) -> str:
        return "Distinct(sort)"


class HashDistinct(PlanNode):
    """Duplicate elimination by hashing (streams, no sort)."""

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.schema = child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.rows(ctx, outer):
            key = row_sort_key(row)
            ctx.stats.hash_probes += 1
            if key in seen:
                ctx.stats.duplicates_removed += 1
                continue
            seen.add(key)
            ctx.stats.hash_builds += 1
            yield row

    def label(self) -> str:
        return "Distinct(hash)"


class Sort(PlanNode):
    """ORDER BY operator over projected rows."""

    def __init__(
        self, child: PlanNode, key_positions: list[int], ascending: list[bool]
    ) -> None:
        self.child = child
        self.key_positions = key_positions
        self.ascending = ascending
        self.schema = child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        from ..executor import _Reversed  # shared DESC-order helper
        from ...types.values import sort_key

        rows = list(self.child.rows(ctx, outer))
        ctx.stats.sorts += 1
        ctx.stats.sort_rows += len(rows)

        def key_fn(row: tuple):
            parts = []
            for position, asc in zip(self.key_positions, self.ascending):
                key = sort_key(row[position])
                parts.append(key if asc else _Reversed(key))
            return tuple(parts)

        rows.sort(key=key_fn)
        yield from rows

    def label(self) -> str:
        keys = ", ".join(
            f"{self.schema.columns[p].name}{'' if asc else ' DESC'}"
            for p, asc in zip(self.key_positions, self.ascending)
        )
        return f"Sort({keys})"
