"""Projection and duplicate-elimination operators."""

from __future__ import annotations

from itertools import chain
from typing import Iterator

from ...errors import ResourceError
from ...types.values import row_sort_key
from ..columnar import batch_fault_check, batches_from_rows
from ..schema import ColumnInfo, RelSchema, Scope
from .base import ExecContext, PlanNode


class Project(PlanNode):
    """Projects input rows onto a list of column indices (ALL semantics)."""

    def __init__(self, child: PlanNode, indices: list[int], names: list[str]) -> None:
        self.child = child
        self.indices = indices
        self.schema = RelSchema(ColumnInfo(None, name) for name in names)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        for row in self.child.rows(ctx, outer):
            yield tuple(row[i] for i in self.indices)

    def batches(self, ctx: ExecContext, outer: Scope | None = None):
        """Vectorized projection: pure column slicing, zero copying."""
        stats = ctx.stats
        source = self.child.batches(ctx, outer)
        for batch in source:
            try:
                batch_fault_check()
                out = batch.project(self.indices)
            except ResourceError:
                raise
            except Exception:
                # Demote this batch and the rest to per-row projection.
                stats.vectorized_fallbacks += 1
                indices = self.indices
                remaining = (
                    tuple(row[i] for i in indices)
                    for b in chain((batch,), source)
                    for row in b.iter_rows()
                )
                yield from batches_from_rows(
                    remaining, len(self.schema), ctx.batch_rows
                )
                return
            stats.vectorized_batches += 1
            stats.vectorized_rows += out.length
            yield out

    def label(self) -> str:
        names = ", ".join(column.name for column in self.schema.columns)
        return f"Project({names})"


class SortDistinct(PlanNode):
    """Duplicate elimination by sorting — the paper's default cost model.

    This materializes and sorts its entire input; its ``sort_rows``
    charge is exactly the work the distinct-elimination rewrite avoids.
    """

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.schema = child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        rows = list(self.child.rows(ctx, outer))
        ctx.stats.sorts += 1
        ctx.stats.sort_rows += len(rows)
        rows.sort(key=row_sort_key)
        previous_key = None
        for row in rows:
            key = row_sort_key(row)
            if key != previous_key:
                previous_key = key
                yield row
            else:
                ctx.stats.duplicates_removed += 1

    def batches(self, ctx: ExecContext, outer: Scope | None = None):
        """DISTINCT over canonical key vectors.

        Each input batch contributes a ``sort_keys()`` vector (the
        per-column ``sort_key`` comprehension); the sort then permutes
        *indices* by key, which is stable exactly like the tuple path's
        ``list.sort`` — equal-key rows keep input order, so the emitted
        representative is byte-identical.
        """
        stats = ctx.stats
        rows: list[tuple] = []
        keys: list[tuple] | None = []
        for batch in self.child.batches(ctx, outer):
            batch_rows = batch.to_rows()
            rows.extend(batch_rows)
            if keys is None:
                continue
            try:
                batch_fault_check()
                keys.extend(batch.sort_keys())
            except ResourceError:
                raise
            except Exception:
                # Keys built so far are exact; recompute the lot the
                # interpreter's way and carry on.
                stats.vectorized_fallbacks += 1
                keys = None
        demoted = keys is None
        if keys is None:
            keys = [row_sort_key(row) for row in rows]
        stats.sorts += 1
        stats.sort_rows += len(rows)
        order = sorted(range(len(rows)), key=keys.__getitem__)

        def emit():
            previous = None
            for index in order:
                key = keys[index]
                if key != previous:
                    previous = key
                    yield rows[index]
                else:
                    stats.duplicates_removed += 1

        for out in batches_from_rows(emit(), len(self.schema), ctx.batch_rows):
            if not demoted:
                stats.vectorized_batches += 1
                stats.vectorized_rows += out.length
            yield out

    def label(self) -> str:
        return "Distinct(sort)"


class HashDistinct(PlanNode):
    """Duplicate elimination by hashing (streams, no sort)."""

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.schema = child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.rows(ctx, outer):
            key = row_sort_key(row)
            ctx.stats.hash_probes += 1
            if key in seen:
                ctx.stats.duplicates_removed += 1
                continue
            seen.add(key)
            ctx.stats.hash_builds += 1
            yield row

    def batches(self, ctx: ExecContext, outer: Scope | None = None):
        """Streaming DISTINCT: one key vector per batch, one shared set."""
        stats = ctx.stats
        seen: set[tuple] = set()
        demoted = False

        def emit():
            nonlocal demoted
            for batch in self.child.batches(ctx, outer):
                batch_rows = batch.to_rows()
                keys = None
                if not demoted:
                    try:
                        batch_fault_check()
                        keys = batch.sort_keys()
                    except ResourceError:
                        raise
                    except Exception:
                        stats.vectorized_fallbacks += 1
                        demoted = True
                if keys is None:
                    keys = [row_sort_key(row) for row in batch_rows]
                for row, key in zip(batch_rows, keys):
                    stats.hash_probes += 1
                    if key in seen:
                        stats.duplicates_removed += 1
                        continue
                    seen.add(key)
                    stats.hash_builds += 1
                    yield row

        for out in batches_from_rows(emit(), len(self.schema), ctx.batch_rows):
            stats.vectorized_batches += 1
            stats.vectorized_rows += out.length
            yield out

    def label(self) -> str:
        return "Distinct(hash)"


class Sort(PlanNode):
    """ORDER BY operator over projected rows."""

    def __init__(
        self, child: PlanNode, key_positions: list[int], ascending: list[bool]
    ) -> None:
        self.child = child
        self.key_positions = key_positions
        self.ascending = ascending
        self.schema = child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        from ..executor import _Reversed  # shared DESC-order helper
        from ...types.values import sort_key

        rows = list(self.child.rows(ctx, outer))
        ctx.stats.sorts += 1
        ctx.stats.sort_rows += len(rows)

        def key_fn(row: tuple):
            parts = []
            for position, asc in zip(self.key_positions, self.ascending):
                key = sort_key(row[position])
                parts.append(key if asc else _Reversed(key))
            return tuple(parts)

        rows.sort(key=key_fn)
        yield from rows

    def label(self) -> str:
        keys = ", ".join(
            f"{self.schema.columns[p].name}{'' if asc else ' DESC'}"
            for p, asc in zip(self.key_positions, self.ascending)
        )
        return f"Sort({keys})"
