"""Join operators: nested-loop, hash, and sort-merge.

All joins use WHERE-clause equality for their keys: a NULL key never
matches anything (``NULL = NULL`` is UNKNOWN).  Hash and sort-merge
joins therefore drop NULL-keyed rows on both sides, matching what the
nested-loop join's predicate evaluation would do.

Join predicates and residuals are compiled to row closures when
possible (see :mod:`repro.engine.compile`); predicates containing
subqueries or outer references fall back to the shared evaluator.
"""

from __future__ import annotations

from itertools import compress
from typing import Callable, Iterator, Sequence

from ...errors import ResourceError
from ...sql.expressions import Expr
from ...sql.printer import to_sql
from ...types.values import SqlValue, is_null, row_sort_key
from ..columnar import ColumnBatch, batch_fault_check, batches_from_rows
from ..compile import compile_filter
from ..schema import Scope
from .base import ExecContext, PlanNode


def _residual_test(
    node: PlanNode,
    predicate: Expr | None,
    ctx: ExecContext,
    outer: Scope | None,
) -> Callable[[Sequence[SqlValue]], bool] | None:
    """A per-row test for a join residual, or None when there is none.

    Compiles the predicate when possible (counting the compilation);
    otherwise returns an evaluator-backed closure with identical
    semantics.  The evaluator closure is also the verified fallback: a
    compilation failure, or a compiled closure dying mid-stream, swaps
    in the interpreter for the remaining rows.
    """
    if predicate is None:
        return None
    stats = ctx.stats

    def interpret(row):
        scope = Scope(node.schema, row, outer=outer)
        return ctx.evaluator.qualifies(predicate, scope)

    compiled = None
    if outer is None:
        try:
            compiled = compile_filter(
                predicate, node.schema, ctx.evaluator.params
            )
        except ResourceError:
            raise
        except Exception:
            stats.compile_fallbacks += 1
    if compiled is None:
        return interpret

    stats.predicates_compiled += 1
    state = {"fn": compiled}

    def test(row):
        fn = state["fn"]
        if fn is None:
            return interpret(row)
        stats.predicate_evals += 1
        stats.compiled_evals += 1
        try:
            return fn(row)
        except ResourceError:
            raise
        except Exception:
            stats.predicate_evals -= 1
            stats.compiled_evals -= 1
            stats.compile_fallbacks += 1
            state["fn"] = None
            return interpret(row)

    return test


class NestedLoopJoin(PlanNode):
    """Cartesian product with an optional join predicate.

    The inner input is materialized once; the outer streams.  With no
    predicate this is the paper's extended Cartesian product.
    """

    def __init__(
        self, left: PlanNode, right: PlanNode, predicate: Expr | None = None
    ) -> None:
        self.left = left
        self.right = right
        self.predicate = predicate
        self.schema = left.schema.concat(right.schema)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        inner = list(self.right.rows(ctx, outer))
        qualifies = _residual_test(self, self.predicate, ctx, outer)
        tick = ctx.tick
        for left_row in self.left.rows(ctx, outer):
            for right_row in inner:
                tick()
                ctx.stats.rows_joined += 1
                combined = left_row + right_row
                if qualifies is not None and not qualifies(combined):
                    continue
                yield combined

    def label(self) -> str:
        if self.predicate is None:
            return "NestedLoopJoin(cross)"
        return f"NestedLoopJoin({to_sql(self.predicate)})"


class HashJoin(PlanNode):
    """Equi-join via a hash table built on one input.

    A key position may be marked *null-safe* (the ≐ operator, SQL's
    IS NOT DISTINCT FROM): NULL keys then match NULL keys instead of
    matching nothing.  The planner emits null-safe keys for the
    correlation predicates Theorem 3 generates.

    The build side defaults to the right input; the planner flips it
    (``build_left=True``) when the cost model estimates the left input
    is smaller, so the hash table is built on the cheaper side.  Output
    is a multiset either way — only enumeration order changes.

    With a parallel execution context, large build and probe inputs are
    split into row-range morsels on the worker pool.  Workers compute
    pure per-slice results (key/row pairs for the build, combined
    output rows for the probe); the coordinating thread merges slices
    left-to-right, so per-key bucket order and the probe output
    sequence are byte-identical to the serial join's.  Small inputs,
    correlated joins, and armed-fault runs stay on the serial code.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: list[int],
        right_keys: list[int],
        residual: Expr | None = None,
        null_safe: list[bool] | None = None,
        build_left: bool = False,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("hash join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.null_safe = null_safe or [False] * len(left_keys)
        if len(self.null_safe) != len(left_keys):
            raise ValueError("null_safe flags must match the key lists")
        self.build_left = build_left
        self.schema = left.schema.concat(right.schema)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def _usable(self, key_values: list) -> bool:
        """A NULL key participates only at null-safe positions."""
        return not any(
            is_null(value) and not safe
            for value, safe in zip(key_values, self.null_safe)
        )

    def _parallel_ok(self, ctx: ExecContext, outer: Scope | None) -> bool:
        """Whether this execution may even consider the parallel phases.

        Materializing an input is only safe when ticks may be batched
        (faults disarmed — armed faults need the serial interleaving of
        per-row trigger opportunities) and there is no correlation.
        """
        return ctx.parallel is not None and outer is None and ctx.batch_ticks

    def _parallel_build(
        self,
        ctx: ExecContext,
        build_rows: list[tuple],
        build_keys: list[int],
    ) -> dict[tuple, list[tuple]] | None:
        """Partitioned hash-table build, or None to build serially.

        Workers hash disjoint row slices into per-slice key/row pair
        lists; the coordinator merges slices left-to-right, so every
        bucket lists build rows in exactly the order a serial build
        inserts them.
        """
        par = ctx.parallel
        if not par.eligible(ctx, len(build_rows), None):
            return None
        morsels = par.morsels(len(build_rows))
        usable = self._usable

        def task(bounds: tuple[int, int]) -> list[tuple]:
            lo, hi = bounds
            pairs = []
            for row in build_rows[lo:hi]:
                key_values = [row[i] for i in build_keys]
                if usable(key_values):
                    pairs.append((row_sort_key(key_values), row))
            return pairs

        try:
            results = par.pool.run_ordered(task, morsels)
        except ResourceError:
            raise
        except Exception:
            return None  # pure workers failed; serial build recomputes
        buckets: dict[tuple, list[tuple]] = {}
        for pairs in results:
            ctx.stats.hash_builds += len(pairs)
            for key, row in pairs:
                buckets.setdefault(key, []).append(row)
        ctx.stats.parallel_joins += 1
        ctx.stats.parallel_morsels += len(morsels)
        return buckets

    def _parallel_probe(
        self,
        ctx: ExecContext,
        buckets: dict[tuple, list[tuple]],
        probe_rows: list[tuple],
        probe_keys: list[int],
    ) -> list[tuple] | None:
        """Partitioned probe output, or None to probe serially.

        Requires a compiled (pure) residual; an evaluator-backed
        residual stays serial.  Workers probe the shared read-only
        buckets over disjoint probe slices; slices concatenate in order,
        reproducing the serial output sequence.
        """
        par = ctx.parallel
        if not par.eligible(ctx, len(probe_rows), None):
            return None
        residual_fn = None
        if self.residual is not None:
            try:
                residual_fn = compile_filter(
                    self.residual, self.schema, ctx.evaluator.params
                )
            except ResourceError:
                raise
            except Exception:
                return None  # serial probe counts the fallback
            if residual_fn is None:
                return None
        morsels = par.morsels(len(probe_rows))
        usable = self._usable
        build_left = self.build_left

        def task(bounds: tuple[int, int]) -> tuple[list[tuple], int, int]:
            lo, hi = bounds
            out: list[tuple] = []
            probes = 0
            matches = 0
            for probe_row in probe_rows[lo:hi]:
                key_values = [probe_row[i] for i in probe_keys]
                if not usable(key_values):
                    continue
                probes += 1
                for build_row in buckets.get(row_sort_key(key_values), ()):
                    matches += 1
                    if build_left:
                        combined = build_row + probe_row
                    else:
                        combined = probe_row + build_row
                    if residual_fn is not None and not residual_fn(combined):
                        continue
                    out.append(combined)
            return out, probes, matches

        try:
            results = par.pool.run_ordered(task, morsels)
        except ResourceError:
            raise
        except Exception:
            return None  # e.g. compiled residual died; serial re-probes
        # Account only after every slice succeeded — a failed attempt
        # must leave no partial counters for the serial re-run to double.
        stats = ctx.stats
        output: list[tuple] = []
        for out, probes, matches in results:
            ctx.tick(matches)
            stats.hash_probes += probes
            stats.rows_joined += matches
            if residual_fn is not None:
                stats.predicate_evals += matches
                stats.compiled_evals += matches
            output.extend(out)
        if residual_fn is not None:
            stats.predicates_compiled += 1
        stats.parallel_joins += 1
        stats.parallel_morsels += len(morsels)
        return output

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        if self.build_left:
            build, probe = self.left, self.right
            build_keys, probe_keys = self.left_keys, self.right_keys
        else:
            build, probe = self.right, self.left
            build_keys, probe_keys = self.right_keys, self.left_keys

        parallel_ok = self._parallel_ok(ctx, outer)
        buckets: dict[tuple, list[tuple]] | None = None
        if parallel_ok:
            build_source: Iterator[tuple] | list[tuple] = list(
                build.rows(ctx, outer)
            )
            buckets = self._parallel_build(ctx, build_source, build_keys)
        else:
            build_source = build.rows(ctx, outer)
        if buckets is None:
            buckets = {}
            for build_row in build_source:
                key_values = [build_row[i] for i in build_keys]
                if not self._usable(key_values):
                    continue  # a NULL key can never satisfy '='
                ctx.stats.hash_builds += 1
                buckets.setdefault(row_sort_key(key_values), []).append(build_row)

        if parallel_ok:
            probe_source: Iterator[tuple] | list[tuple] = list(
                probe.rows(ctx, outer)
            )
            combined_rows = self._parallel_probe(
                ctx, buckets, probe_source, probe_keys
            )
            if combined_rows is not None:
                yield from combined_rows
                return
        else:
            probe_source = probe.rows(ctx, outer)

        qualifies = _residual_test(self, self.residual, ctx, outer)
        tick = ctx.tick
        for probe_row in probe_source:
            key_values = [probe_row[i] for i in probe_keys]
            if not self._usable(key_values):
                continue
            ctx.stats.hash_probes += 1
            for build_row in buckets.get(row_sort_key(key_values), ()):
                tick()
                ctx.stats.rows_joined += 1
                if self.build_left:
                    combined = build_row + probe_row
                else:
                    combined = probe_row + build_row
                if qualifies is not None and not qualifies(combined):
                    continue
                yield combined

    # ------------------------------------------------------------------
    # vectorized path

    def _skip_mask(self, batch: ColumnBatch, key_indices: list[int]) -> int:
        """Lanes whose key is NULL at a non-null-safe position."""
        mask = 0
        for index, safe in zip(key_indices, self.null_safe):
            if not safe:
                mask |= batch.null_masks[index]
        return mask

    def _unique_build(self, ctx: ExecContext, build, build_keys) -> bool:
        """Key-aware pre-sizing: whether every usable build key is unique.

        True when the build input is a (possibly filtered) base-table
        access whose join-key columns cover a declared candidate key —
        filtering preserves uniqueness, and the candidate-key indexes
        enforce it under the same ≐ canonicalization the join hashes
        with.  The hash table then maps each key to a single row
        instead of a bucket list: no per-key list allocations, and
        probe matches are exact 0/1 lookups (the Theorem 1 cardinality
        argument, applied to the physical hash table).
        """
        from .filter import Filter  # deferred: filter imports base too
        from .scan import IndexScan, SeqScan

        base = build
        while isinstance(base, Filter):
            base = base.child
        if not isinstance(base, (SeqScan, IndexScan)):
            return False
        names = {build.schema.columns[i].name for i in build_keys}
        schema = ctx.database.table(base.table_name).schema
        return any(
            set(key.columns) <= names for key in schema.candidate_keys
        )

    def batches(self, ctx: ExecContext, outer: Scope | None = None):
        """Vectorized build/probe over canonical key vectors.

        Build and probe batches contribute whole ``sort_keys()``
        vectors; NULL keys at non-null-safe positions are dropped by a
        mask (one int op per batch) instead of a per-row test.  A batch
        whose key kernel fails degrades to the per-row arithmetic for
        that batch only — bucket contents and output order stay
        byte-identical either way.

        Correlated and parallel executions delegate to the tuple path
        (re-batched): correlation needs the evaluator, and the
        partitioned build/probe phases already exist row-wise.
        """
        if outer is not None or self._parallel_ok(ctx, outer):
            yield from PlanNode.batches(self, ctx, outer)
            return
        if self.build_left:
            build, probe = self.left, self.right
            build_keys, probe_keys = self.left_keys, self.right_keys
        else:
            build, probe = self.right, self.left
            build_keys, probe_keys = self.right_keys, self.left_keys

        stats = ctx.stats
        unique_build = self._unique_build(ctx, build, build_keys)
        single: dict[tuple, tuple] = {}
        buckets: dict[tuple, list[tuple]] = {}

        def insert(key, row):
            nonlocal unique_build
            if unique_build:
                if single.setdefault(key, row) is not row:
                    # A declared key turned out non-unique (possible
                    # only via an unenforced load): degrade to bucket
                    # lists, preserving insertion order.
                    unique_build = False
                    for k, r in single.items():
                        buckets[k] = [r]
                    buckets[key].append(row)
            else:
                buckets.setdefault(key, []).append(row)

        for batch in build.batches(ctx, outer):
            batch_rows = batch.to_rows()
            try:
                batch_fault_check()
                keys = batch.sort_keys(build_keys)
                skip = self._skip_mask(batch, build_keys)
            except ResourceError:
                raise
            except Exception:
                # Per-batch demotion: hash this batch the tuple way.
                stats.vectorized_fallbacks += 1
                for row in batch_rows:
                    key_values = [row[i] for i in build_keys]
                    if not self._usable(key_values):
                        continue
                    stats.hash_builds += 1
                    insert(row_sort_key(key_values), row)
                continue
            if skip:
                selector = (batch.ones ^ skip).to_bytes(batch.length, "little")
                pairs = compress(zip(keys, batch_rows), selector)
            else:
                pairs = zip(keys, batch_rows)
            for key, row in pairs:
                stats.hash_builds += 1
                insert(key, row)

        if unique_build:
            single_get = single.get

            def lookup(key):
                row = single_get(key)
                return () if row is None else (row,)
        else:
            buckets_get = buckets.get

            def lookup(key):
                return buckets_get(key, ())

        qualifies = _residual_test(self, self.residual, ctx, outer)
        tick = ctx.tick
        build_left = self.build_left

        def combined_rows():
            for batch in probe.batches(ctx, outer):
                batch_rows = batch.to_rows()
                try:
                    batch_fault_check()
                    keys = batch.sort_keys(probe_keys)
                    skip = self._skip_mask(batch, probe_keys)
                except ResourceError:
                    raise
                except Exception:
                    stats.vectorized_fallbacks += 1
                    for probe_row in batch_rows:
                        key_values = [probe_row[i] for i in probe_keys]
                        if not self._usable(key_values):
                            continue
                        stats.hash_probes += 1
                        for build_row in lookup(row_sort_key(key_values)):
                            tick()
                            stats.rows_joined += 1
                            if build_left:
                                combined = build_row + probe_row
                            else:
                                combined = probe_row + build_row
                            if qualifies is None or qualifies(combined):
                                yield combined
                    continue
                if skip:
                    selector = (batch.ones ^ skip).to_bytes(
                        batch.length, "little"
                    )
                    pairs = compress(zip(keys, batch_rows), selector)
                else:
                    pairs = zip(keys, batch_rows)
                out_buffer: list[tuple] = []
                matches = 0
                for key, probe_row in pairs:
                    stats.hash_probes += 1
                    for build_row in lookup(key):
                        matches += 1
                        if build_left:
                            combined = build_row + probe_row
                        else:
                            combined = probe_row + build_row
                        if qualifies is not None and not qualifies(combined):
                            continue
                        out_buffer.append(combined)
                tick(matches)
                stats.rows_joined += matches
                stats.vectorized_batches += 1
                stats.vectorized_rows += len(batch_rows)
                yield from out_buffer

        yield from batches_from_rows(
            combined_rows(), len(self.schema), ctx.batch_rows
        )

    def label(self) -> str:
        keys = ", ".join(
            f"{self.left.schema.columns[l].name}={self.right.schema.columns[r].name}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        side = ", build=left" if self.build_left else ""
        return f"HashJoin({keys}{side})"


class SortMergeJoin(PlanNode):
    """Equi-join by sorting both inputs on the join keys and merging."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: list[int],
        right_keys: list[int],
        residual: Expr | None = None,
        null_safe: list[bool] | None = None,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("merge join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.null_safe = null_safe or [False] * len(left_keys)
        if len(self.null_safe) != len(left_keys):
            raise ValueError("null_safe flags must match the key lists")
        self.schema = left.schema.concat(right.schema)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        left_rows = self._sorted_input(ctx, self.left, self.left_keys, outer)
        right_rows = self._sorted_input(ctx, self.right, self.right_keys, outer)
        qualifies = _residual_test(self, self.residual, ctx, outer)

        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            left_key, left_row = left_rows[i]
            right_key, right_row = right_rows[j]
            if left_key < right_key:
                i += 1
            elif left_key > right_key:
                j += 1
            else:
                # Gather the group of equal keys on the right, join with
                # every equal-keyed left row.
                j_end = j
                while j_end < len(right_rows) and right_rows[j_end][0] == left_key:
                    j_end += 1
                while i < len(left_rows) and left_rows[i][0] == left_key:
                    _, current_left = left_rows[i]
                    for _, match in right_rows[j:j_end]:
                        ctx.tick()
                        ctx.stats.rows_joined += 1
                        combined = current_left + match
                        if qualifies is not None and not qualifies(combined):
                            continue
                        yield combined
                    i += 1
                j = j_end

    def _sorted_input(
        self,
        ctx: ExecContext,
        child: PlanNode,
        keys: list[int],
        outer: Scope | None,
    ) -> list[tuple]:
        rows = []
        for row in child.rows(ctx, outer):
            key_values = [row[i] for i in keys]
            skip = any(
                is_null(value) and not safe
                for value, safe in zip(key_values, self.null_safe)
            )
            if skip:
                continue
            rows.append((row_sort_key(key_values), row))
        ctx.stats.sorts += 1
        ctx.stats.sort_rows += len(rows)
        rows.sort(key=lambda pair: pair[0])
        return rows

    def label(self) -> str:
        keys = ", ".join(
            f"{self.left.schema.columns[l].name}={self.right.schema.columns[r].name}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"SortMergeJoin({keys})"


class HashSemiJoin(PlanNode):
    """Left semi-join: emit each left row with at least one key match.

    This is the engine-feature ablation for flattening EXISTS: instead of
    re-executing a correlated subquery per outer row, the inner input is
    hashed once.  Produces the *left* schema only.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: list[int],
        right_keys: list[int],
        negated: bool = False,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("semi join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.negated = negated
        self.schema = left.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        keys: set[tuple] = set()
        for right_row in self.right.rows(ctx, outer):
            key_values = [right_row[i] for i in self.right_keys]
            if any(is_null(value) for value in key_values):
                continue
            ctx.stats.hash_builds += 1
            keys.add(row_sort_key(key_values))

        for left_row in self.left.rows(ctx, outer):
            ctx.tick()
            key_values = [left_row[i] for i in self.left_keys]
            if any(is_null(value) for value in key_values):
                matched = False
            else:
                ctx.stats.hash_probes += 1
                matched = row_sort_key(key_values) in keys
            if matched != self.negated:
                yield left_row

    def label(self) -> str:
        kind = "HashAntiJoin" if self.negated else "HashSemiJoin"
        return f"{kind}({len(self.left_keys)} keys)"
