"""Join operators: nested-loop, hash, and sort-merge.

All joins use WHERE-clause equality for their keys: a NULL key never
matches anything (``NULL = NULL`` is UNKNOWN).  Hash and sort-merge
joins therefore drop NULL-keyed rows on both sides, matching what the
nested-loop join's predicate evaluation would do.
"""

from __future__ import annotations

from typing import Iterator

from ...sql.expressions import Expr
from ...sql.printer import to_sql
from ...types.values import is_null, row_sort_key
from ..schema import Scope
from .base import ExecContext, PlanNode


class NestedLoopJoin(PlanNode):
    """Cartesian product with an optional join predicate.

    The inner input is materialized once; the outer streams.  With no
    predicate this is the paper's extended Cartesian product.
    """

    def __init__(
        self, left: PlanNode, right: PlanNode, predicate: Expr | None = None
    ) -> None:
        self.left = left
        self.right = right
        self.predicate = predicate
        self.schema = left.schema.concat(right.schema)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        inner = list(self.right.rows(ctx, outer))
        for left_row in self.left.rows(ctx, outer):
            for right_row in inner:
                ctx.stats.rows_joined += 1
                combined = left_row + right_row
                if self.predicate is not None:
                    scope = Scope(self.schema, combined, outer=outer)
                    if not ctx.evaluator.qualifies(self.predicate, scope):
                        continue
                yield combined

    def label(self) -> str:
        if self.predicate is None:
            return "NestedLoopJoin(cross)"
        return f"NestedLoopJoin({to_sql(self.predicate)})"


class HashJoin(PlanNode):
    """Equi-join via a hash table built on the right input.

    A key position may be marked *null-safe* (the ≐ operator, SQL's
    IS NOT DISTINCT FROM): NULL keys then match NULL keys instead of
    matching nothing.  The planner emits null-safe keys for the
    correlation predicates Theorem 3 generates.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: list[int],
        right_keys: list[int],
        residual: Expr | None = None,
        null_safe: list[bool] | None = None,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("hash join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.null_safe = null_safe or [False] * len(left_keys)
        if len(self.null_safe) != len(left_keys):
            raise ValueError("null_safe flags must match the key lists")
        self.schema = left.schema.concat(right.schema)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def _usable(self, key_values: list) -> bool:
        """A NULL key participates only at null-safe positions."""
        return not any(
            is_null(value) and not safe
            for value, safe in zip(key_values, self.null_safe)
        )

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        buckets: dict[tuple, list[tuple]] = {}
        for right_row in self.right.rows(ctx, outer):
            key_values = [right_row[i] for i in self.right_keys]
            if not self._usable(key_values):
                continue  # a NULL key can never satisfy '='
            ctx.stats.hash_builds += 1
            buckets.setdefault(row_sort_key(key_values), []).append(right_row)

        for left_row in self.left.rows(ctx, outer):
            key_values = [left_row[i] for i in self.left_keys]
            if not self._usable(key_values):
                continue
            ctx.stats.hash_probes += 1
            for right_row in buckets.get(row_sort_key(key_values), ()):
                ctx.stats.rows_joined += 1
                combined = left_row + right_row
                if self.residual is not None:
                    scope = Scope(self.schema, combined, outer=outer)
                    if not ctx.evaluator.qualifies(self.residual, scope):
                        continue
                yield combined

    def label(self) -> str:
        keys = ", ".join(
            f"{self.left.schema.columns[l].name}={self.right.schema.columns[r].name}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin({keys})"


class SortMergeJoin(PlanNode):
    """Equi-join by sorting both inputs on the join keys and merging."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: list[int],
        right_keys: list[int],
        residual: Expr | None = None,
        null_safe: list[bool] | None = None,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("merge join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.null_safe = null_safe or [False] * len(left_keys)
        if len(self.null_safe) != len(left_keys):
            raise ValueError("null_safe flags must match the key lists")
        self.schema = left.schema.concat(right.schema)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        left_rows = self._sorted_input(ctx, self.left, self.left_keys, outer)
        right_rows = self._sorted_input(ctx, self.right, self.right_keys, outer)

        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            left_key, left_row = left_rows[i]
            right_key, right_row = right_rows[j]
            if left_key < right_key:
                i += 1
            elif left_key > right_key:
                j += 1
            else:
                # Gather the group of equal keys on the right, join with
                # every equal-keyed left row.
                j_end = j
                while j_end < len(right_rows) and right_rows[j_end][0] == left_key:
                    j_end += 1
                while i < len(left_rows) and left_rows[i][0] == left_key:
                    _, current_left = left_rows[i]
                    for _, match in right_rows[j:j_end]:
                        ctx.stats.rows_joined += 1
                        combined = current_left + match
                        if self.residual is not None:
                            scope = Scope(self.schema, combined, outer=outer)
                            if not ctx.evaluator.qualifies(self.residual, scope):
                                continue
                        yield combined
                    i += 1
                j = j_end

    def _sorted_input(
        self,
        ctx: ExecContext,
        child: PlanNode,
        keys: list[int],
        outer: Scope | None,
    ) -> list[tuple]:
        rows = []
        for row in child.rows(ctx, outer):
            key_values = [row[i] for i in keys]
            skip = any(
                is_null(value) and not safe
                for value, safe in zip(key_values, self.null_safe)
            )
            if skip:
                continue
            rows.append((row_sort_key(key_values), row))
        ctx.stats.sorts += 1
        ctx.stats.sort_rows += len(rows)
        rows.sort(key=lambda pair: pair[0])
        return rows

    def label(self) -> str:
        keys = ", ".join(
            f"{self.left.schema.columns[l].name}={self.right.schema.columns[r].name}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"SortMergeJoin({keys})"


class HashSemiJoin(PlanNode):
    """Left semi-join: emit each left row with at least one key match.

    This is the engine-feature ablation for flattening EXISTS: instead of
    re-executing a correlated subquery per outer row, the inner input is
    hashed once.  Produces the *left* schema only.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: list[int],
        right_keys: list[int],
        negated: bool = False,
    ) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ValueError("semi join requires matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.negated = negated
        self.schema = left.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        keys: set[tuple] = set()
        for right_row in self.right.rows(ctx, outer):
            key_values = [right_row[i] for i in self.right_keys]
            if any(is_null(value) for value in key_values):
                continue
            ctx.stats.hash_builds += 1
            keys.add(row_sort_key(key_values))

        for left_row in self.left.rows(ctx, outer):
            key_values = [left_row[i] for i in self.left_keys]
            if any(is_null(value) for value in key_values):
                matched = False
            else:
                ctx.stats.hash_probes += 1
                matched = row_sort_key(key_values) in keys
            if matched != self.negated:
                yield left_row

    def label(self) -> str:
        kind = "HashAntiJoin" if self.negated else "HashSemiJoin"
        return f"{kind}({len(self.left_keys)} keys)"
