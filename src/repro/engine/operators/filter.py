"""Selection (filter) operator."""

from __future__ import annotations

from typing import Iterator

from itertools import chain

from ...errors import ResourceError
from ...sql.expressions import Expr
from ...sql.printer import to_sql
from ..columnar import batches_from_rows, compile_batch_filter
from ..compile import compile_filter
from ..schema import Scope
from .base import ExecContext, PlanNode


class Filter(PlanNode):
    """Keeps rows whose predicate is definitely TRUE (⌊P⌋ semantics).

    Simple predicates are compiled once per execution into a row closure
    (no per-row Scope allocation or recursive dispatch); predicates the
    compiler rejects — subqueries, outer references — run through the
    shared evaluator, which re-executes correlated subqueries per input
    row through the reference interpreter, counting each invocation.

    The interpretive path doubles as the verified fallback: a failure in
    compilation, or in a compiled closure mid-stream, degrades to the
    evaluator for the remaining rows with identical semantics.

    With a parallel execution context, a Filter directly over a
    :class:`~repro.engine.operators.scan.SeqScan` of a large enough
    table becomes a **parallel scan**: the stored rows are split into
    row-range morsels, each evaluated through the compiled predicate on
    the worker pool, and the surviving rows are concatenated in morsel
    order — the exact sequence the serial loop would emit.  Any worker
    failure discards the parallel attempt and re-runs the whole filter
    serially (nothing has been yielded yet, so the fallback is clean).
    """

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _parallel_rows(
        self, ctx: ExecContext, outer: Scope | None
    ) -> list[tuple] | None:
        """The parallel-scan result list, or None to run serially."""
        from .scan import SeqScan  # deferred: scan imports base too

        par = ctx.parallel
        if par is None or not isinstance(self.child, SeqScan):
            return None
        table_rows = ctx.database.table(self.child.table_name).rows
        if not par.eligible(ctx, len(table_rows), outer):
            return None
        try:
            compiled = compile_filter(
                self.predicate, self.schema, ctx.evaluator.params
            )
        except ResourceError:
            raise
        except Exception:
            return None  # serial path counts the fallback
        if compiled is None:
            return None

        morsels = par.morsels(len(table_rows))

        def task(bounds: tuple[int, int]) -> list[tuple]:
            lo, hi = bounds
            return [row for row in table_rows[lo:hi] if compiled(row)]

        try:
            results = par.pool.run_ordered(task, morsels)
        except ResourceError:
            raise
        except Exception:
            # A compiled closure died in a worker.  Nothing has been
            # yielded and no counter touched, so the serial path simply
            # re-runs the filter (and accounts its own fallback).
            return None
        # Account ticks and counters only after every morsel succeeded,
        # so a failed parallel attempt leaves no partial accounting for
        # the serial re-run to double.
        stats = ctx.stats
        for (lo, hi) in morsels:
            ctx.tick(hi - lo)
        scanned = len(table_rows)
        stats.rows_scanned += scanned
        stats.predicate_evals += scanned
        stats.compiled_evals += scanned
        stats.predicates_compiled += 1
        stats.parallel_scans += 1
        stats.parallel_morsels += len(morsels)
        output: list[tuple] = []
        for kept in results:
            output.extend(kept)
        return output

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        parallel_result = self._parallel_rows(ctx, outer)
        if parallel_result is not None:
            yield from parallel_result
            return
        compiled = None
        if outer is None:
            try:
                compiled = compile_filter(
                    self.predicate, self.schema, ctx.evaluator.params
                )
            except ResourceError:
                raise
            except Exception:
                ctx.stats.compile_fallbacks += 1
        stats = ctx.stats
        if compiled is not None:
            stats.predicates_compiled += 1
        for row in self.child.rows(ctx, outer):
            if compiled is not None:
                stats.predicate_evals += 1
                stats.compiled_evals += 1
                try:
                    keep = compiled(row)
                except ResourceError:
                    raise
                except Exception:
                    # Compiled predicate died mid-stream: back out this
                    # row's compiled counters and degrade to the
                    # evaluator for it and every remaining row.
                    stats.predicate_evals -= 1
                    stats.compiled_evals -= 1
                    stats.compile_fallbacks += 1
                    compiled = None
                else:
                    if keep:
                        yield row
                    continue
            scope = Scope(self.schema, row, outer=outer)
            if ctx.evaluator.qualifies(self.predicate, scope):
                yield row

    # ------------------------------------------------------------------
    # vectorized path

    def batches(self, ctx: ExecContext, outer: Scope | None = None):
        """Selection as a boolean mask over a batch-compiled predicate.

        The batch compiler has the same frontier as the row compiler:
        anything it rejects (subqueries, outer references) re-batches
        the tuple path, which is the verified semantics.  A kernel that
        dies mid-stream demotes this batch and every remaining one to
        the interpreter — the vectorized mirror of the compiled→
        interpreter ladder.
        """
        kernel = None
        if outer is None:
            try:
                kernel = compile_batch_filter(
                    self.predicate, self.schema, ctx.evaluator.params
                )
            except ResourceError:
                raise
            except Exception:
                # Batch compilation itself blew up (e.g. a ``compile``
                # fault): the re-batched tuple path below owns the
                # fallback accounting.
                ctx.stats.vectorized_fallbacks += 1
        if kernel is None:
            yield from PlanNode.batches(self, ctx, outer)
            return
        stats = ctx.stats
        stats.predicates_compiled += 1
        parallel_result = self._parallel_batches(ctx, outer, kernel)
        if parallel_result is not None:
            yield from parallel_result
            return
        source = self.child.batches(ctx, outer)
        for batch in source:
            try:
                mask = kernel(batch)
            except ResourceError:
                raise
            except Exception:
                # Vectorized→interpreter demotion mid-stream: nothing
                # from this batch has been emitted, so it and the rest
                # of the stream run through the evaluator.
                stats.vectorized_fallbacks += 1
                stats.compile_fallbacks += 1
                yield from self._demoted_batches(ctx, outer, batch, source)
                return
            stats.predicate_evals += batch.length
            stats.compiled_evals += batch.length
            stats.vectorized_batches += 1
            stats.vectorized_rows += batch.length
            selected = batch.select(mask)
            if selected.length:
                yield selected

    def _demoted_batches(self, ctx: ExecContext, outer, failed, source):
        """Finish interpretively: the failed batch, then the rest."""
        evaluator = ctx.evaluator

        def kept_rows():
            for batch in chain((failed,), source):
                for row in batch.iter_rows():
                    scope = Scope(self.schema, row, outer=outer)
                    if evaluator.qualifies(self.predicate, scope):
                        yield row

        yield from batches_from_rows(
            kept_rows(), len(self.schema), ctx.batch_rows
        )

    def _parallel_batches(self, ctx: ExecContext, outer, kernel):
        """Column batches through the morsel pool, or None to stay serial.

        The pool is fed the table's cached column batches (morsel-sized)
        instead of row ranges; each worker applies the mask kernel and
        the selected batches are concatenated in submission order — the
        exact sequence the serial vectorized loop emits.
        """
        from .scan import SeqScan  # deferred: scan imports base too

        par = ctx.parallel
        if par is None or not isinstance(self.child, SeqScan):
            return None
        data = ctx.database.table(self.child.table_name)
        nrows = len(data.rows)
        if not par.eligible(ctx, nrows, outer):
            return None
        batches = data.column_batches(par.options.morsel_size)

        def task(batch):
            return batch.select(kernel(batch))

        try:
            results = par.pool.run_ordered(task, batches)
        except ResourceError:
            raise
        except Exception:
            return None  # the serial loop accounts its own demotion
        stats = ctx.stats
        for batch in batches:
            ctx.tick(batch.length)
        stats.rows_scanned += nrows
        stats.predicate_evals += nrows
        stats.compiled_evals += nrows
        stats.parallel_scans += 1
        stats.parallel_morsels += len(batches)
        stats.vectorized_batches += len(batches)
        stats.vectorized_rows += nrows
        return [batch for batch in results if batch.length]

    def label(self) -> str:
        return f"Filter({to_sql(self.predicate)})"
