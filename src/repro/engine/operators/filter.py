"""Selection (filter) operator."""

from __future__ import annotations

from typing import Iterator

from ...sql.expressions import Expr
from ...sql.printer import to_sql
from ..schema import Scope
from .base import ExecContext, PlanNode


class Filter(PlanNode):
    """Keeps rows whose predicate is definitely TRUE (⌊P⌋ semantics).

    Predicates may contain correlated subqueries; the shared evaluator
    re-executes them per input row through the reference interpreter,
    counting each invocation.
    """

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        for row in self.child.rows(ctx, outer):
            scope = Scope(self.schema, row, outer=outer)
            if ctx.evaluator.qualifies(self.predicate, scope):
                yield row

    def label(self) -> str:
        return f"Filter({to_sql(self.predicate)})"
