"""Selection (filter) operator."""

from __future__ import annotations

from typing import Iterator

from ...errors import ResourceError
from ...sql.expressions import Expr
from ...sql.printer import to_sql
from ..compile import compile_filter
from ..schema import Scope
from .base import ExecContext, PlanNode


class Filter(PlanNode):
    """Keeps rows whose predicate is definitely TRUE (⌊P⌋ semantics).

    Simple predicates are compiled once per execution into a row closure
    (no per-row Scope allocation or recursive dispatch); predicates the
    compiler rejects — subqueries, outer references — run through the
    shared evaluator, which re-executes correlated subqueries per input
    row through the reference interpreter, counting each invocation.

    The interpretive path doubles as the verified fallback: a failure in
    compilation, or in a compiled closure mid-stream, degrades to the
    evaluator for the remaining rows with identical semantics.
    """

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        compiled = None
        if outer is None:
            try:
                compiled = compile_filter(
                    self.predicate, self.schema, ctx.evaluator.params
                )
            except ResourceError:
                raise
            except Exception:
                ctx.stats.compile_fallbacks += 1
        stats = ctx.stats
        if compiled is not None:
            stats.predicates_compiled += 1
        for row in self.child.rows(ctx, outer):
            if compiled is not None:
                stats.predicate_evals += 1
                stats.compiled_evals += 1
                try:
                    keep = compiled(row)
                except ResourceError:
                    raise
                except Exception:
                    # Compiled predicate died mid-stream: back out this
                    # row's compiled counters and degrade to the
                    # evaluator for it and every remaining row.
                    stats.predicate_evals -= 1
                    stats.compiled_evals -= 1
                    stats.compile_fallbacks += 1
                    compiled = None
                else:
                    if keep:
                        yield row
                    continue
            scope = Scope(self.schema, row, outer=outer)
            if ctx.evaluator.qualifies(self.predicate, scope):
                yield row

    def label(self) -> str:
        return f"Filter({to_sql(self.predicate)})"
