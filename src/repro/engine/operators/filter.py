"""Selection (filter) operator."""

from __future__ import annotations

from typing import Iterator

from ...sql.expressions import Expr
from ...sql.printer import to_sql
from ..compile import compile_filter
from ..schema import Scope
from .base import ExecContext, PlanNode


class Filter(PlanNode):
    """Keeps rows whose predicate is definitely TRUE (⌊P⌋ semantics).

    Simple predicates are compiled once per execution into a row closure
    (no per-row Scope allocation or recursive dispatch); predicates the
    compiler rejects — subqueries, outer references — run through the
    shared evaluator, which re-executes correlated subqueries per input
    row through the reference interpreter, counting each invocation.
    """

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        compiled = None
        if outer is None:
            compiled = compile_filter(
                self.predicate, self.schema, ctx.evaluator.params
            )
        stats = ctx.stats
        if compiled is not None:
            stats.predicates_compiled += 1
            for row in self.child.rows(ctx, outer):
                stats.predicate_evals += 1
                stats.compiled_evals += 1
                if compiled(row):
                    yield row
            return
        for row in self.child.rows(ctx, outer):
            scope = Scope(self.schema, row, outer=outer)
            if ctx.evaluator.qualifies(self.predicate, scope):
                yield row

    def label(self) -> str:
        return f"Filter({to_sql(self.predicate)})"
