"""Physical plan operators."""

from .base import ExecContext, PlanNode
from .filter import Filter
from .joins import HashJoin, HashSemiJoin, NestedLoopJoin, SortMergeJoin
from .project import HashDistinct, Project, Sort, SortDistinct
from .scan import IndexScan, SeqScan
from .setops import SortSetOp

__all__ = [
    "ExecContext",
    "Filter",
    "HashDistinct",
    "HashJoin",
    "HashSemiJoin",
    "IndexScan",
    "NestedLoopJoin",
    "PlanNode",
    "Project",
    "SeqScan",
    "Sort",
    "SortDistinct",
    "SortMergeJoin",
    "SortSetOp",
]
