"""Base-table access paths: sequential scan and hash-index scan."""

from __future__ import annotations

from typing import Iterator

from ...errors import ExecutionError, MissingHostVariableError, ResourceError
from ...sql.expressions import Expr, HostVar, Literal
from ...sql.printer import to_sql
from ...types.values import is_null, row_sort_key
from ..compile import compile_filter
from ..schema import RelSchema, Scope
from .base import ExecContext, PlanNode

#: Rows a sequential scan accounts per guard tick when ticks may be
#: batched (divides CLOCK_CHECK_INTERVAL, so deadline checks stay on
#: schedule).  Budgets and rows_scanned then have chunk granularity: a
#: consumer that abandons the scan mid-chunk leaves up to
#: TICK_CHUNK - 1 pulled rows unaccounted.
TICK_CHUNK = 64


class SeqScan(PlanNode):
    """Sequential scan of a stored table under a correlation name."""

    def __init__(self, table_name: str, alias: str, column_names: list[str]) -> None:
        self.table_name = table_name
        self.alias = alias
        self.schema = RelSchema.for_table(alias, column_names)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        tick = ctx.tick
        if not ctx.batch_ticks:
            # Faults armed: every row is a checkpoint (and an
            # ``operator_next`` trigger opportunity).
            for row in ctx.database.table(self.table_name).rows:
                tick()
                ctx.stats.rows_scanned += 1
                yield row
            return
        stats = ctx.stats
        pending = 0
        for row in ctx.database.table(self.table_name).rows:
            pending += 1
            if pending == TICK_CHUNK:
                tick(TICK_CHUNK)
                stats.rows_scanned += TICK_CHUNK
                pending = 0
            yield row
        if pending:
            tick(pending)
            stats.rows_scanned += pending

    def batches(self, ctx: ExecContext, outer: Scope | None = None):
        """Vectorized scan: serve the table's cached columnar batches.

        One guard tick per batch (the documented vectorized
        granularity: totals are identical to the tuple path, the
        checkpoints are just morsel-sized apart).
        """
        tick = ctx.tick
        stats = ctx.stats
        for batch in ctx.database.table(self.table_name).column_batches(
            ctx.batch_rows
        ):
            tick(batch.length)
            stats.rows_scanned += batch.length
            stats.vectorized_batches += 1
            stats.vectorized_rows += batch.length
            yield batch

    def label(self) -> str:
        if self.alias != self.table_name:
            return f"SeqScan({self.table_name} AS {self.alias})"
        return f"SeqScan({self.table_name})"


class IndexScan(PlanNode):
    """Hash-index probe of a stored table: ``key_columns = key_exprs``.

    Replaces SeqScan + Filter when the planner finds top-level equality
    conjuncts on auto-indexed columns (key or FOREIGN KEY columns) whose
    comparands are constants or host variables.  Any remaining local
    conjuncts become the *residual*, applied to the matched rows.

    A NULL probe value yields no rows — the replaced WHERE equality is
    never TRUE against NULL, so the plans are equivalent.  Matched rows
    come back in insertion order, the order SeqScan would emit them in.
    """

    def __init__(
        self,
        table_name: str,
        alias: str,
        column_names: list[str],
        key_columns: tuple[str, ...],
        key_exprs: tuple[Expr, ...],
        residual: Expr | None = None,
    ) -> None:
        if len(key_columns) != len(key_exprs) or not key_columns:
            raise ValueError("index scan requires matching, non-empty key lists")
        self.table_name = table_name
        self.alias = alias
        self.key_columns = key_columns
        self.key_exprs = key_exprs
        self.residual = residual
        self.schema = RelSchema.for_table(alias, column_names)

    def _probe_values(self, ctx: ExecContext) -> tuple:
        values = []
        for expr in self.key_exprs:
            if isinstance(expr, Literal):
                values.append(expr.value)
            elif isinstance(expr, HostVar):
                if expr.name not in ctx.evaluator.params:
                    raise MissingHostVariableError(expr.name)
                values.append(ctx.evaluator.params[expr.name])
            else:
                raise ExecutionError(
                    f"index key {type(expr).__name__} is not a constant operand"
                )
        return tuple(values)

    def _scan_matches(self, data, values: tuple) -> list[tuple]:
        """``index_lookup`` semantics without the index: the verified
        fallback when the hash-index machinery fails."""
        if any(is_null(value) for value in values):
            return []
        positions = [
            data.schema.column_index(name) for name in self.key_columns
        ]
        target = row_sort_key(values)
        return [
            row
            for row in data.rows
            if row_sort_key(tuple(row[p] for p in positions)) == target
        ]

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        data = ctx.database.table(self.table_name)
        values = self._probe_values(ctx)
        ctx.stats.index_probes += 1
        try:
            matches = data.index_lookup(self.key_columns, values)
        except ResourceError:
            raise
        except Exception:
            ctx.stats.index_fallbacks += 1
            matches = self._scan_matches(data, values)
        ctx.stats.index_rows += len(matches)

        tick = ctx.tick
        if self.residual is None:
            for row in matches:
                tick()
                ctx.stats.rows_scanned += 1
                yield row
            return

        compiled = None
        if outer is None:
            try:
                compiled = compile_filter(
                    self.residual, self.schema, ctx.evaluator.params
                )
            except ResourceError:
                raise
            except Exception:
                ctx.stats.compile_fallbacks += 1
        stats = ctx.stats
        if compiled is not None:
            stats.predicates_compiled += 1
        for row in matches:
            tick()
            stats.rows_scanned += 1
            if compiled is not None:
                stats.predicate_evals += 1
                stats.compiled_evals += 1
                try:
                    keep = compiled(row)
                except ResourceError:
                    raise
                except Exception:
                    # A compiled residual died mid-stream: back out this
                    # row's compiled counters and finish interpretively.
                    stats.predicate_evals -= 1
                    stats.compiled_evals -= 1
                    stats.compile_fallbacks += 1
                    compiled = None
                else:
                    if keep:
                        yield row
                    continue
            scope = Scope(self.schema, row, outer=outer)
            if ctx.evaluator.qualifies(self.residual, scope):
                yield row

    def label(self) -> str:
        keys = ", ".join(
            f"{column} = {to_sql(expr)}"
            for column, expr in zip(self.key_columns, self.key_exprs)
        )
        name = self.table_name
        if self.alias != self.table_name:
            name = f"{self.table_name} AS {self.alias}"
        if self.residual is not None:
            return f"IndexScan({name}: {keys}; {to_sql(self.residual)})"
        return f"IndexScan({name}: {keys})"
