"""Base-table scan."""

from __future__ import annotations

from typing import Iterator

from ..schema import RelSchema, Scope
from .base import ExecContext, PlanNode


class SeqScan(PlanNode):
    """Sequential scan of a stored table under a correlation name."""

    def __init__(self, table_name: str, alias: str, column_names: list[str]) -> None:
        self.table_name = table_name
        self.alias = alias
        self.schema = RelSchema.for_table(alias, column_names)

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        for row in ctx.database.table(self.table_name).rows:
            ctx.stats.rows_scanned += 1
            yield row

    def label(self) -> str:
        if self.alias != self.table_name:
            return f"SeqScan({self.table_name} AS {self.alias})"
        return f"SeqScan({self.table_name})"
