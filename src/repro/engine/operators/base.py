"""Physical plan node base classes and execution context."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ...resilience.budgets import ExecutionGuard
from ...resilience.faults import FAULTS, SITE_OPERATOR
from ...types.values import SqlValue
from ..columnar import (
    DEFAULT_BATCH_ROWS,
    ColumnBatch,
    batches_from_rows,
    resolve_engine_mode,
)
from ..evaluator import Evaluator
from ..schema import RelSchema, Scope
from ..stats import Stats

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database
    from ..parallel import ParallelExecution


def _tick_noop(rows: int = 1) -> None:
    """The unguarded, fault-free checkpoint: nothing to do."""


class ExecContext:
    """Shared state for one plan execution.

    Holds the database, the host-variable bindings, the counter sink, and
    a single :class:`Evaluator` wired so correlated subqueries fall back
    to the reference interpreter (the naive nested-loop strategy — the
    cost the paper's rewrites are designed to avoid).

    When a *guard* is supplied, operators report every processed row via
    :meth:`tick`, giving the guard its cooperative checkpoints (timeout,
    row budget, cancellation) and the fault injector its
    ``operator_next`` trigger opportunities.

    When a *parallel* execution handle is supplied (see
    :mod:`repro.engine.parallel`), eligible operators — filtered base
    scans, hash-join build/probe phases — split their input into
    row-range morsels on the shared pool; everything else runs the
    serial code unchanged.

    *engine_mode* selects the execution style (see
    :mod:`repro.engine.columnar`): ``"tuple"`` is the verified row
    interpreter, ``"vectorized"`` drives the plan through
    :meth:`PlanNode.batches`, and ``"auto"`` vectorizes unless the
    fault injector is armed (chaos runs exercise the per-row trigger
    schedule unless a test forces the vectorized path explicitly).
    ``None`` inherits the process default
    (:func:`repro.engine.columnar.default_engine_mode`).
    """

    def __init__(
        self,
        database: "Database",
        params: dict[str, SqlValue] | None = None,
        stats: Stats | None = None,
        use_indexes: bool = True,
        guard: ExecutionGuard | None = None,
        parallel: "ParallelExecution | None" = None,
        engine_mode: str | None = None,
        batch_rows: int | None = None,
    ) -> None:
        from ..executor import Executor  # deferred to break the cycle

        self.database = database
        self.stats = stats or Stats()
        self.guard = guard
        self.parallel = parallel
        self._interpreter = Executor(
            database,
            params=params,
            stats=self.stats,
            use_indexes=use_indexes,
            guard=guard,
        )
        self.evaluator = self._interpreter.evaluator
        # Per-row cost matters here: bind the cheapest tick variant for
        # this execution up front (executions complete within one
        # execute_plan call, so the armed state cannot change mid-run).
        # batch_ticks additionally lets scans account rows in chunks;
        # with faults armed every row must remain a separate
        # ``operator_next`` trigger opportunity, so both stay per-row.
        self.batch_ticks = not FAULTS.armed
        if self.batch_ticks:
            self.tick = guard.tick if guard is not None else _tick_noop
        mode = resolve_engine_mode(engine_mode)
        self.engine_mode = mode
        self.batch_rows = (
            batch_rows if batch_rows and batch_rows > 0 else DEFAULT_BATCH_ROWS
        )
        # "vectorized" is an explicit opt-in and wins even with faults
        # armed (the vectorized_eval site needs the batch path live);
        # "auto" defers to the chaos suite's per-row schedules.
        self.use_batches = mode == "vectorized" or (
            mode == "auto" and not FAULTS.armed
        )

    def tick(self, rows: int = 1) -> None:
        """One cooperative checkpoint, called per row by operator loops.

        Budget violations raise :class:`~repro.errors.ResourceError`
        subclasses; these must never be swallowed by fallback ladders.
        """
        if self.guard is not None:
            self.guard.tick(rows)
        if FAULTS.armed:
            FAULTS.check(SITE_OPERATOR)


class PlanNode:
    """A node of a physical execution plan.

    Subclasses define ``schema`` (a :class:`RelSchema` for the rows they
    produce) and implement :meth:`rows`.
    """

    schema: RelSchema

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        """Yield output rows.  *outer* carries correlation bindings."""
        raise NotImplementedError

    def batches(
        self, ctx: ExecContext, outer: Scope | None = None
    ) -> Iterator[ColumnBatch]:
        """Yield output as :class:`~repro.engine.columnar.ColumnBatch`\\ es.

        The default re-batches :meth:`rows` — any operator without a
        vectorized kernel (or one that declined to vectorize) keeps its
        exact tuple semantics, including ticks and counters, while
        vectorized parents consume it uniformly.  Overrides produce
        batches natively and must preserve the row sequence byte for
        byte.
        """
        yield from batches_from_rows(
            self.rows(ctx, outer), len(self.schema), ctx.batch_rows
        )

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def label(self) -> str:
        """One-line description used by EXPLAIN output."""
        return type(self).__name__

    def explain(self, indent: int = 0, analysis=None) -> str:
        """A printable operator tree.

        With *analysis* (a :class:`~repro.observe.analyze.PlanAnalysis`
        recorded by an instrumented execution of this exact tree), each
        line is suffixed with actual rows/loops/time and the estimated
        cardinality's q-error — EXPLAIN ANALYZE output.
        """
        line = "  " * indent + self.label()
        if analysis is not None:
            line += analysis.annotate(self)
        lines = [line]
        for child in self.children():
            lines.append(child.explain(indent + 1, analysis))
        return "\n".join(lines)
