"""Physical plan node base classes and execution context."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ...types.values import SqlValue
from ..evaluator import Evaluator
from ..schema import RelSchema, Scope
from ..stats import Stats

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database


class ExecContext:
    """Shared state for one plan execution.

    Holds the database, the host-variable bindings, the counter sink, and
    a single :class:`Evaluator` wired so correlated subqueries fall back
    to the reference interpreter (the naive nested-loop strategy — the
    cost the paper's rewrites are designed to avoid).
    """

    def __init__(
        self,
        database: "Database",
        params: dict[str, SqlValue] | None = None,
        stats: Stats | None = None,
        use_indexes: bool = True,
    ) -> None:
        from ..executor import Executor  # deferred to break the cycle

        self.database = database
        self.stats = stats or Stats()
        self._interpreter = Executor(
            database, params=params, stats=self.stats, use_indexes=use_indexes
        )
        self.evaluator = self._interpreter.evaluator


class PlanNode:
    """A node of a physical execution plan.

    Subclasses define ``schema`` (a :class:`RelSchema` for the rows they
    produce) and implement :meth:`rows`.
    """

    schema: RelSchema

    def rows(self, ctx: ExecContext, outer: Scope | None = None) -> Iterator[tuple]:
        """Yield output rows.  *outer* carries correlation bindings."""
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def label(self) -> str:
        """One-line description used by EXPLAIN output."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """A printable operator tree."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)
