"""Stored base tables with constraint enforcement.

Inserts validate, in order: column count and NOT NULL, CHECK constraints
(true-interpretation: a check passes when its condition is true *or
unknown*), and key uniqueness under the ≐ semantics the paper adopts
from SQL2 — a UNIQUE candidate key treats NULL as a single special
value, so at most one row may carry any given (possibly NULL) key.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Sequence

from ..catalog.table import TableSchema
from ..errors import ConstraintViolation, UniquenessViolationError
from ..resilience.faults import FAULTS, SITE_INDEX_BUILD
from ..types.values import NULL, SqlValue, format_value, is_null, row_sort_key
from .columnar import ColumnBatch
from .schema import RelSchema, Scope
from .txn import RowVersion

if TYPE_CHECKING:  # pragma: no cover
    from .evaluator import Evaluator


class TableData:
    """Row storage for one base table."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[tuple] = []
        #: MVCC row versions, append-only plus xmax stamping under the
        #: transaction manager's commit lock.  ``rows`` is always the
        #: materialization of the live versions (``xmax is None``), so
        #: the read fast path never pays a visibility check.
        self.versions: list[RowVersion] = []
        # One uniqueness index per declared key: canonical key-tuple -> row.
        self._key_indexes: list[dict[tuple, tuple]] = [
            {} for _ in schema.candidate_keys
        ]
        # General hash indexes, built lazily per column tuple and then
        # maintained incrementally: canonical key -> rows in insertion
        # order (non-unique columns map to multi-row buckets).
        self._hash_indexes: dict[tuple[str, ...], dict[tuple, list[tuple]]] = {}
        # Single-flight build coordination: the lock guards the index
        # and in-flight dictionaries (bookkeeping only — the O(n) build
        # itself runs outside it), and one Event per in-flight column
        # tuple parks the waiters.  Leaf lock: nothing else is acquired
        # while it is held.
        self._index_lock = threading.Lock()
        self._builds_in_flight: dict[tuple[str, ...], threading.Event] = {}
        #: O(n) hash-index builds actually performed (the concurrency
        #: stress test asserts N racing sessions cause exactly one).
        self.index_builds = 0
        #: Times a session parked on another session's in-flight build.
        self.single_flight_waits = 0
        #: Monotonic data version; bumped by every mutation so cached
        #: artifacts keyed on a database fingerprint go stale correctly.
        self.version = 0
        # Columnar projections, cached per batch size alongside the hash
        # indexes: batch_rows -> (version stamp, batches).  Entries are
        # validated against ``version`` on every read, so any mutation
        # invalidates them without extra bookkeeping in the write paths.
        self._columnar: dict[int, tuple[int, list[ColumnBatch]]] = {}
        #: Columnar materializations actually performed (cache efficacy).
        self.columnar_builds = 0

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    # hash indexes (equality access paths)

    def indexable_columns(self) -> set[str]:
        """Columns the engine auto-indexes: key and FOREIGN KEY columns.

        These are the probe targets the paper's workloads hit — key
        lookups from ``col = const`` predicates and FK correlation
        probes from ``EXISTS`` / ``IN`` subqueries.
        """
        columns: set[str] = set()
        for key in self.schema.candidate_keys:
            columns.update(key.columns)
        for fk in self.schema.foreign_keys:
            columns.update(fk.columns)
        return columns

    def hash_index(self, columns: tuple[str, ...]) -> dict[tuple, list[tuple]]:
        """The hash index over *columns*, built on first use.

        The build is a single O(n) pass; afterwards the index is
        maintained incrementally by insert/remove/clear, so repeated
        probes (a correlated subquery per outer row, a templated query
        per batch item) amortize it away.

        Builds are *single-flight*: when N sessions race to probe the
        same cold index, exactly one performs the O(n) pass while the
        others park on an event and reuse the result.  If the builder
        fails (e.g. an injected ``index_build`` fault), one parked
        waiter is promoted to builder and retries, so a transient build
        failure never wedges the other sessions — and a persistent one
        surfaces in every session exactly as it would serially.
        """
        index = self._hash_indexes.get(columns)
        if index is not None:
            return index
        while True:
            with self._index_lock:
                index = self._hash_indexes.get(columns)
                if index is not None:
                    return index
                event = self._builds_in_flight.get(columns)
                if event is None:
                    event = threading.Event()
                    self._builds_in_flight[columns] = event
                    building = True
                else:
                    self.single_flight_waits += 1
                    building = False
            if not building:
                event.wait()
                continue  # re-check: the builder stored it, or failed
            try:
                if FAULTS.armed:
                    FAULTS.check(SITE_INDEX_BUILD)
                positions = [
                    self.schema.column_index(name) for name in columns
                ]
                index = {}
                for row in self.rows:
                    key = row_sort_key(tuple(row[p] for p in positions))
                    index.setdefault(key, []).append(row)
                with self._index_lock:
                    self._hash_indexes[columns] = index
                    self.index_builds += 1
                return index
            finally:
                with self._index_lock:
                    self._builds_in_flight.pop(columns, None)
                event.set()

    def index_lookup(
        self, columns: tuple[str, ...], values: tuple
    ) -> list[tuple]:
        """Rows whose *columns* equal *values*, via the hash index.

        NULL probe values return no rows: a WHERE-clause equality with
        NULL is never TRUE (callers relying on ≐ must test separately).
        """
        if any(is_null(value) for value in values):
            return []
        return self.hash_index(columns).get(row_sort_key(values), [])

    def has_hash_index(self, columns: tuple[str, ...]) -> bool:
        """Whether an index over *columns* has been materialized."""
        return columns in self._hash_indexes

    # ------------------------------------------------------------------
    # columnar projections (vectorized scans)

    def column_batches(self, batch_rows: int) -> list[ColumnBatch]:
        """The table transposed into morsel-sized column batches.

        Materialized lazily on the first vectorized scan and cached per
        batch size; the cache entry carries the data version it was
        built from and is discarded when any mutation has bumped
        ``version`` since.  Racing builders may transpose concurrently
        (the result is identical either way); only the cache dictionary
        itself is touched under the leaf ``_index_lock``.
        """
        with self._index_lock:
            cached = self._columnar.get(batch_rows)
            if cached is not None and cached[0] == self.version:
                return cached[1]
        version = self.version
        rows = self.rows
        width = len(self.schema.columns)
        batches = [
            ColumnBatch.from_rows(rows[start:start + batch_rows], width)
            for start in range(0, len(rows), batch_rows)
        ]
        with self._index_lock:
            if version == self.version:
                self._columnar[batch_rows] = (version, batches)
                self.columnar_builds += 1
        return batches

    # ------------------------------------------------------------------
    # loading

    def insert(
        self,
        values: Sequence[SqlValue],
        evaluator: "Evaluator | None" = None,
        enforce: bool = True,
    ) -> tuple:
        """Insert one row given positionally, validating constraints.

        Pass ``enforce=False`` to bypass validation (used by tests that
        deliberately construct invalid instances).
        """
        row = tuple(values)
        if len(row) != len(self.schema.columns):
            raise ConstraintViolation(
                self.schema.name,
                f"expected {len(self.schema.columns)} values, got {len(row)}",
            )
        if enforce:
            self._check_not_null(row)
            self._check_conditions(row, evaluator)
            self._check_keys(row)
        self.rows.append(row)
        self.versions.append(RowVersion(row))
        self._index_row(row)
        return row

    def insert_mapping(
        self,
        values: dict[str, SqlValue],
        evaluator: "Evaluator | None" = None,
        enforce: bool = True,
    ) -> tuple:
        """Insert one row given as a column->value mapping.

        Missing columns receive NULL.
        """
        row = tuple(
            values.get(column.name, NULL) for column in self.schema.columns
        )
        unknown = set(values) - {column.name for column in self.schema.columns}
        if unknown:
            raise ConstraintViolation(
                self.schema.name, f"unknown columns: {sorted(unknown)}"
            )
        return self.insert(row, evaluator, enforce)

    def extend(
        self,
        rows: Iterable[Sequence[SqlValue]],
        evaluator: "Evaluator | None" = None,
        enforce: bool = True,
    ) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row, evaluator, enforce)
            count += 1
        return count

    def clear(self) -> None:
        """Delete every row (and reset the key and hash indexes)."""
        self.rows.clear()
        self.versions.clear()
        for index in self._key_indexes:
            index.clear()
        with self._index_lock:
            for hash_index in self._hash_indexes.values():
                hash_index.clear()
            self._columnar.clear()
        self.version += 1

    def has_key_value(
        self, columns: tuple[str, ...], values: tuple
    ) -> bool | None:
        """Index-accelerated lookup: does a row carry *values* in *columns*?

        Returns None when *columns* is not a declared candidate key (the
        caller must fall back to a scan).
        """
        for key, index in zip(self.schema.candidate_keys, self._key_indexes):
            if key.columns == tuple(columns):
                return row_sort_key(values) in index
        return None

    def remove_last(self) -> tuple:
        """Undo the most recent insert (row and all index entries)."""
        row = self.rows.pop()
        if self.versions and self.versions[-1].row is row:
            self.versions.pop()
        for key, index in zip(self.schema.candidate_keys, self._key_indexes):
            index.pop(self._key_tuple(key.columns, row), None)
        with self._index_lock:
            for columns, hash_index in self._hash_indexes.items():
                key = self._key_tuple(columns, row)
                bucket = hash_index.get(key)
                if bucket:
                    bucket.pop()
                    if not bucket:
                        del hash_index[key]
        self.version += 1
        return row

    # ------------------------------------------------------------------
    # MVCC commit apply

    def apply_writes(
        self,
        deletes: Sequence["RowVersion"],
        inserts: Sequence[tuple],
        xid: int,
    ) -> None:
        """Publish one transaction's writes to this table as a batch.

        Runs under the transaction manager's commit lock.  Deleted
        versions get their ``xmax`` stamp, inserted rows become live
        versions stamped ``xmin=xid``, and the committed row list is
        rebuilt and swapped in one reference assignment — a concurrent
        reader sees the whole commit or none of it.  Key and hash
        indexes are maintained as one deferred batch (never touched at
        statement time), and the data version bumps exactly once, which
        is what keeps invalidation scoped to touched tables.
        """
        for version in deletes:
            version.xmax = xid
        if deletes:
            new_rows = [v.row for v in self.versions if v.xmax is None]
        else:
            new_rows = list(self.rows)
        fresh = [RowVersion(tuple(row), xmin=xid) for row in inserts]
        self.versions.extend(fresh)
        new_rows.extend(version.row for version in fresh)
        self.rows = new_rows
        # Batched index maintenance: one pass over the write set.
        for key, index in zip(self.schema.candidate_keys, self._key_indexes):
            for version in deletes:
                index.pop(self._key_tuple(key.columns, version.row), None)
            for version in fresh:
                index[self._key_tuple(key.columns, version.row)] = version.row
        with self._index_lock:
            for columns, hash_index in self._hash_indexes.items():
                for version in deletes:
                    key = self._key_tuple(columns, version.row)
                    bucket = hash_index.get(key)
                    if bucket:
                        try:
                            bucket.remove(version.row)
                        except ValueError:  # pragma: no cover - defensive
                            pass
                        if not bucket:
                            del hash_index[key]
                for version in fresh:
                    hash_index.setdefault(
                        self._key_tuple(columns, version.row), []
                    ).append(version.row)
        self.version += 1

    # ------------------------------------------------------------------
    # validation

    def validate_row(
        self, row: tuple, evaluator: "Evaluator | None" = None
    ) -> None:
        """Row-local validation (count, NOT NULL, CHECK) without any
        uniqueness check — transactions check keys against their own
        view instead of the shared indexes."""
        if len(row) != len(self.schema.columns):
            raise ConstraintViolation(
                self.schema.name,
                f"expected {len(self.schema.columns)} values, got {len(row)}",
            )
        self._check_not_null(row)
        self._check_conditions(row, evaluator)

    def _check_not_null(self, row: tuple) -> None:
        for column, value in zip(self.schema.columns, row):
            if not column.nullable and is_null(value):
                raise ConstraintViolation(
                    self.schema.name, f"column {column.name} is NOT NULL"
                )

    def _check_conditions(self, row: tuple, evaluator: "Evaluator | None") -> None:
        if not self.schema.checks:
            return
        if evaluator is None:
            from .evaluator import Evaluator  # local import breaks the cycle

            evaluator = Evaluator()
        schema = RelSchema.for_table(self.schema.name, self.schema.column_names)
        scope = Scope(schema, row)
        for check in self.schema.checks:
            verdict = evaluator.predicate(check.condition, scope)
            # SQL2: a CHECK is violated only when definitely false.
            if not verdict.true_interpreted():
                raise ConstraintViolation(
                    self.schema.name,
                    f"{check.describe()} fails for row "
                    f"({', '.join(format_value(v) for v in row)})",
                )

    def _check_keys(self, row: tuple) -> None:
        for key, index in zip(self.schema.candidate_keys, self._key_indexes):
            key_value = self._key_tuple(key.columns, row)
            if key_value in index:
                raise UniquenessViolationError(self.schema.name, key.describe())

    def _index_row(self, row: tuple) -> None:
        for key, index in zip(self.schema.candidate_keys, self._key_indexes):
            index[self._key_tuple(key.columns, row)] = row
        with self._index_lock:
            for columns, hash_index in self._hash_indexes.items():
                hash_index.setdefault(
                    self._key_tuple(columns, row), []
                ).append(row)
        self.version += 1

    def _key_tuple(self, columns: tuple[str, ...], row: tuple) -> tuple:
        values = tuple(row[self.schema.column_index(name)] for name in columns)
        # row_sort_key canonicalizes NULL so NULL keys collide, matching
        # SQL2's treatment of NULL as a single special key value.
        return row_sort_key(values)
