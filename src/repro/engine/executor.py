"""Reference query executor.

This interpreter implements the paper's algebra *directly*: FROM clauses
form extended Cartesian products, WHERE filters with the
false-interpretation, projection is ALL or DISTINCT, and set operations
follow the SQL2 ``min(j,k)`` / ``max(j-k, 0)`` multiset semantics of
Section 2.2.  Correlated subqueries re-execute naively for every
candidate row — the very strategy whose cost the paper's rewrites avoid.

It is deliberately strategy-free: the cost-aware physical operators live
in :mod:`repro.engine.operators` and :mod:`repro.engine.planner`.  The
property-based tests execute every query through both paths and require
identical results.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Iterable, Iterator, Sequence

from ..errors import (
    ExecutionError,
    ReproError,
    ResourceError,
    UnknownTableError,
)
from ..observe.trace import NULL_SPAN, TRACER
from ..resilience.budgets import ExecutionGuard
from ..resilience.faults import FAULTS, SITE_OPERATOR
from ..sql.ast import (
    Query,
    SelectItem,
    SelectQuery,
    SetOperation,
    SetOpKind,
    Star,
)
from ..sql.expressions import (
    ColumnRef,
    Comparison,
    Expr,
    HostVar,
    Literal,
    conjuncts,
)
from ..sql.parser import parse_query
from ..types.values import SqlValue, row_sort_key, sort_key
from .database import Database
from .evaluator import Evaluator
from .projection import resolve_projection
from .result import Result
from .schema import ColumnInfo, RelSchema, Scope
from .stats import Stats


#: Sentinel: a conjunct operand that cannot serve as an index probe.
_NO_PROBE = object()


def _executor_tick_noop(rows: int = 1) -> None:
    """The unguarded, fault-free checkpoint: nothing to do."""


class Executor:
    """Executes queries against a :class:`Database`.

    With ``use_indexes`` (the default), single-table SELECT blocks whose
    WHERE carries a top-level ``column = constant-or-outer-reference``
    conjunct on an auto-indexed column are evaluated over the hash
    index's matching bucket instead of the full table.  Correlated
    EXISTS/IN subqueries — re-executed once per outer candidate row —
    are exactly this shape, so each re-execution becomes an O(1) probe.
    The *full* WHERE still runs over the candidates, so results are
    identical to the scan; only the rows that could never qualify (they
    fail the probed equality) are skipped.
    """

    def __init__(
        self,
        database: Database,
        params: dict[str, SqlValue] | None = None,
        stats: Stats | None = None,
        use_indexes: bool = True,
        guard: ExecutionGuard | None = None,
    ) -> None:
        self.database = database
        self.stats = stats or Stats()
        self.use_indexes = use_indexes
        self.guard = guard
        self.evaluator = Evaluator(
            params=params, stats=self.stats, subquery_runner=self._run_subquery
        )
        # Bind the cheapest checkpoint for the common configurations; the
        # method below stays as the general (faults-armed) path.
        if not FAULTS.armed:
            if guard is not None:
                self._tick = guard.tick
            else:
                self._tick = _executor_tick_noop

    def _tick(self) -> None:
        """Cooperative checkpoint for the interpreter's row loops."""
        if self.guard is not None:
            self.guard.tick()
        if FAULTS.armed:
            FAULTS.check(SITE_OPERATOR)

    # ------------------------------------------------------------------
    # public API

    def execute(self, query: Query | str) -> Result:
        """Execute *query* (AST or SQL text) and return its result."""
        if isinstance(query, str):
            query = parse_query(query)
        span_cm = (
            TRACER.span("interpreter.execute", stats=self.stats)
            if TRACER.enabled
            else NULL_SPAN
        )
        with span_cm as span:
            names, schema, rows = self._query(query, outer=None)
            rows = list(rows)
            self.stats.rows_output += len(rows)
            if span:
                span.attributes["rows"] = len(rows)
        return Result(names, rows)

    # ------------------------------------------------------------------
    # query dispatch

    def _query(
        self, query: Query, outer: Scope | None
    ) -> tuple[list[str], RelSchema, list[tuple]]:
        if isinstance(query, SelectQuery):
            return self._select(query, outer)
        if isinstance(query, SetOperation):
            return self._set_operation(query, outer)
        raise ExecutionError(f"cannot execute {type(query).__name__}")

    def _run_subquery(self, query: object, scope: Scope) -> Iterable[tuple]:
        if not isinstance(query, (SelectQuery, SetOperation)):
            raise ExecutionError("subquery is not a query AST")
        _, _, rows = self._query(query, outer=scope)
        return rows

    # ------------------------------------------------------------------
    # SELECT blocks

    def _select(
        self, query: SelectQuery, outer: Scope | None
    ) -> tuple[list[str], RelSchema, list[tuple]]:
        frames = self._table_frames(query)
        merged = RelSchema(())
        for schema, _ in frames:
            merged = merged.concat(schema)

        names, indices = self._projection(query, merged)

        candidates = None
        if self.use_indexes and len(frames) == 1 and query.where is not None:
            candidates = self._index_candidates(query, outer)
        if candidates is None:
            candidates = self._product_rows(frames)

        output: list[tuple] = []
        for combined in candidates:
            self._tick()
            scope = Scope(merged, combined, outer=outer)
            if not self.evaluator.qualifies(query.where, scope):
                continue
            output.append(tuple(combined[i] for i in indices))

        if query.distinct:
            output = self._sort_distinct(output)

        if query.order_by:
            output = self._order(query, names, merged, indices, output)

        out_schema = RelSchema(ColumnInfo(None, name) for name in names)
        return names, out_schema, output

    def _table_frames(
        self, query: SelectQuery
    ) -> list[tuple[RelSchema, list[tuple]]]:
        frames: list[tuple[RelSchema, list[tuple]]] = []
        seen: set[str] = set()
        for table_ref in query.tables:
            name = table_ref.effective_name
            if name in seen:
                raise ExecutionError(
                    f"duplicate correlation name {name!r} in FROM clause"
                )
            seen.add(name)
            schema = self.database.catalog.table(table_ref.name)
            rel = RelSchema.for_table(name, schema.column_names)
            frames.append((rel, self.database.table(table_ref.name).rows))
        return frames

    def _index_candidates(
        self, query: SelectQuery, outer: Scope | None
    ) -> Iterator[tuple] | None:
        """Candidate rows for a single-table block via a hash-index probe.

        Returns None when no WHERE conjunct is usable (the caller scans).
        Usable means a top-level ``column = operand`` where the column is
        auto-indexed (key or FK column of the one FROM table) and the
        operand is a literal, a bound host variable, or an outer-scope
        column reference.  Soundness: the conjunct is AND-ed into WHERE,
        so every qualifying row must carry the probed value — restricting
        the scan to the index bucket (and still applying the full WHERE)
        cannot change the result.  A NULL probe matches nothing, exactly
        as the equality would.
        """
        table_ref = query.tables[0]
        alias = table_ref.effective_name
        data = self.database.table(table_ref.name)
        indexable = data.indexable_columns()
        if not indexable:
            return None
        inner_columns = set(data.schema.column_names)
        for conjunct in conjuncts(query.where):
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                continue
            for ref, operand in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(ref, ColumnRef):
                    continue
                if ref.qualifier is not None and ref.qualifier != alias:
                    continue
                if ref.column not in indexable:
                    continue
                value = self._probe_value(operand, alias, inner_columns, outer)
                if value is _NO_PROBE:
                    continue
                self.stats.index_probes += 1
                try:
                    matches = data.index_lookup((ref.column,), (value,))
                except ResourceError:
                    raise
                except Exception:
                    # Index machinery failed (e.g. an injected build
                    # fault): fall back to the full scan, which applies
                    # the identical WHERE and so returns the same rows.
                    self.stats.index_fallbacks += 1
                    return None
                self.stats.index_rows += len(matches)
                return iter(matches)
        return None

    def _probe_value(
        self,
        operand: Expr,
        alias: str,
        inner_columns: set[str],
        outer: Scope | None,
    ):
        """Evaluate a probe operand without any inner row, or _NO_PROBE.

        Anything that *might* reference the inner table, or that fails to
        evaluate (unknown column, unbound host variable), falls back to
        the scan path — which reproduces the identical error, if any.
        """
        if isinstance(operand, Literal):
            return operand.value
        if isinstance(operand, HostVar):
            if operand.name not in self.evaluator.params:
                return _NO_PROBE
            return self.evaluator.params[operand.name]
        if isinstance(operand, ColumnRef):
            if operand.qualifier is None:
                if operand.column in inner_columns:
                    return _NO_PROBE  # resolves to the inner table
            elif operand.qualifier == alias:
                return _NO_PROBE
            if outer is None:
                return _NO_PROBE
            try:
                return outer.resolve(operand)
            except ReproError:
                return _NO_PROBE
        return _NO_PROBE

    def _product_rows(
        self, frames: list[tuple[RelSchema, list[tuple]]]
    ) -> Iterator[tuple]:
        row_lists = [rows for _, rows in frames]
        for parts in itertools.product(*row_lists):
            self.stats.rows_joined += 1
            combined: tuple = ()
            for part in parts:
                combined += part
            yield combined

    def _projection(
        self, query: SelectQuery, merged: RelSchema
    ) -> tuple[list[str], list[int]]:
        return resolve_projection(query.select_list, merged)

    def _sort_distinct(self, rows: list[tuple]) -> list[tuple]:
        """Sort-based duplicate elimination, charging sort cost."""
        self.stats.sorts += 1
        self.stats.sort_rows += len(rows)
        rows_sorted = sorted(rows, key=row_sort_key)
        output: list[tuple] = []
        previous_key = None
        for row in rows_sorted:
            key = row_sort_key(row)
            if key != previous_key:
                output.append(row)
                previous_key = key
            else:
                self.stats.duplicates_removed += 1
        return output

    def _order(
        self,
        query: SelectQuery,
        names: list[str],
        merged: RelSchema,
        indices: list[int],
        rows: list[tuple],
    ) -> list[tuple]:
        """Apply ORDER BY over the projected rows.

        Order keys must reference projected columns (by output name or by
        their qualified source name).
        """
        key_specs: list[tuple[int, bool]] = []
        for item in query.order_by:
            expr = item.expr
            if not isinstance(expr, ColumnRef):
                raise ExecutionError("ORDER BY supports column references only")
            if expr.qualifier is None and expr.column in names:
                position = names.index(expr.column)
            else:
                source = merged.index_of(expr.qualifier, expr.column)
                if source not in indices:
                    raise ExecutionError(
                        "ORDER BY column must appear in the select list"
                    )
                position = indices.index(source)
            key_specs.append((position, item.ascending))
        self.stats.sorts += 1
        self.stats.sort_rows += len(rows)

        def key_fn(row: tuple):
            parts = []
            for position, ascending in key_specs:
                key = sort_key(row[position])
                parts.append(key if ascending else _Reversed(key))
            return tuple(parts)

        return sorted(rows, key=key_fn)

    # ------------------------------------------------------------------
    # set operations

    def _set_operation(
        self, operation: SetOperation, outer: Scope | None
    ) -> tuple[list[str], RelSchema, list[tuple]]:
        left_names, left_schema, left_rows = self._query(operation.left, outer)
        right_names, _, right_rows = self._query(operation.right, outer)
        if len(left_names) != len(right_names):
            raise ExecutionError(
                "set operation operands are not union-compatible"
            )

        # Charge the classic sort-both-operands cost model the paper
        # assumes for Intersect (§5.3).
        self.stats.sorts += 2
        self.stats.sort_rows += len(left_rows) + len(right_rows)

        left_counts, left_repr = _count_rows(left_rows)
        right_counts, _ = _count_rows(right_rows)

        output: list[tuple] = []
        kind, all_rows = operation.kind, operation.all
        if kind is SetOpKind.INTERSECT:
            for key, j in left_counts.items():
                k = right_counts.get(key, 0)
                copies = min(j, k) if all_rows else (1 if min(j, k) > 0 else 0)
                output.extend([left_repr[key]] * copies)
        elif kind is SetOpKind.EXCEPT:
            for key, j in left_counts.items():
                k = right_counts.get(key, 0)
                copies = max(j - k, 0) if all_rows else (1 if k == 0 else 0)
                output.extend([left_repr[key]] * copies)
        elif kind is SetOpKind.UNION:
            if all_rows:
                output = list(left_rows) + list(right_rows)
            else:
                merged_rows = list(left_rows) + list(right_rows)
                output = self._sort_distinct(merged_rows)
        else:  # pragma: no cover
            raise ExecutionError(f"unsupported set operation {kind}")

        out_schema = RelSchema(ColumnInfo(None, name) for name in left_names)
        return left_names, out_schema, output


class _Reversed:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key


def _count_rows(rows: Sequence[tuple]) -> tuple[Counter, dict]:
    """Multiset of canonical keys plus a representative row per key."""
    counts: Counter = Counter()
    representatives: dict = {}
    for row in rows:
        key = row_sort_key(row)
        counts[key] += 1
        representatives.setdefault(key, row)
    return counts, representatives


def execute(
    query: Query | str,
    database: Database,
    params: dict[str, SqlValue] | None = None,
    stats: Stats | None = None,
    use_indexes: bool = True,
) -> Result:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(
        database, params=params, stats=stats, use_indexes=use_indexes
    ).execute(query)
