"""Select-list resolution shared by the interpreter and the planner."""

from __future__ import annotations

from typing import Sequence

from ..errors import ExecutionError, UnknownTableError
from ..sql.ast import SelectItem, Star
from ..sql.expressions import ColumnRef
from .schema import RelSchema


def resolve_projection(
    select_list: Sequence[SelectItem | Star], merged: RelSchema
) -> tuple[list[str], list[int]]:
    """Resolve a select list against an input schema.

    Returns output column names and the input indices they project.
    ``*`` expands to every column; ``q.*`` to the columns of qualifier
    ``q``.  Only column references are supported (the paper's query class
    has no arithmetic or aggregates).
    """
    names: list[str] = []
    indices: list[int] = []
    for item in select_list:
        if isinstance(item, Star):
            if item.qualifier is None:
                targets = list(range(len(merged)))
            else:
                targets = merged.columns_of(item.qualifier)
                if not targets:
                    raise UnknownTableError(item.qualifier)
            for index in targets:
                names.append(merged.columns[index].name)
                indices.append(index)
        else:
            expr = item.expr
            if not isinstance(expr, ColumnRef):
                raise ExecutionError(
                    "select list supports column references and *"
                )
            indices.append(merged.index_of(expr.qualifier, expr.column))
            names.append(item.output_name())
    return names, indices
