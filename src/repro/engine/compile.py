"""Predicate compilation: lowering an ``Expr`` tree into a row closure.

The interpretive :class:`~repro.engine.evaluator.Evaluator` pays, for
*every row*, a :class:`~repro.engine.schema.Scope` allocation, a chain
of ``isinstance`` dispatches, and — worst — a linear scan over the
schema for every column reference (``RelSchema.try_index_of``).  On a
filter over a large input that dispatch dominates the wall clock.

This module performs that work *once* per (expression, schema) pair and
returns a plain Python closure over the row tuple:

* column references are resolved to tuple indices at compile time,
* host variables and literals are folded to constants (and constant
  subtrees are evaluated during compilation — ``5 = 5`` compiles to the
  constant ``TRUE``),
* ``AND``/``OR`` keep the evaluator's three-valued short-circuit
  semantics (``FALSE`` absorbs conjunctions, ``TRUE`` disjunctions),
* everything the interpreter would have to defer — subqueries,
  correlated (outer-scope) column references, missing host variables,
  ambiguous names — aborts compilation, and the caller falls back to
  the interpretive path, so behaviour is *identical* by construction.

Compiled subexpressions are total functions: any input that would make
the interpreter raise (unknown column, non-scalar operand, missing host
variable) is rejected at compile time instead, which is what makes
constant folding across siblings sound.

The global :func:`set_compilation_enabled` switch exists so benchmarks
and property tests can A/B the compiled and interpretive paths.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import AmbiguousColumnError
from ..resilience.faults import FAULTS, SITE_COMPILE, SITE_COMPILED_EVAL
from ..sql.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    HostVar,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from ..types.tristate import FALSE, TRUE, UNKNOWN, Tristate
from ..types.values import SqlValue, compare_where, is_null
from .schema import RelSchema

#: A compiled predicate: row tuple -> three-valued truth value.
PredicateFn = Callable[[Sequence[SqlValue]], Tristate]
#: A compiled scalar operand: row tuple -> SQL value.
ScalarFn = Callable[[Sequence[SqlValue]], SqlValue]

_enabled = True


def set_compilation_enabled(enabled: bool) -> bool:
    """Toggle predicate compilation process-wide; returns the previous
    setting.  With compilation off every operator uses the interpretive
    evaluator, which is the reference semantics."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def compilation_enabled() -> bool:
    """Whether operators may use compiled predicates."""
    return _enabled


class CannotCompile(Exception):
    """Internal control flow: the expression needs the interpreter."""


def compile_predicate(
    expr: Expr,
    schema: RelSchema,
    params: dict[str, SqlValue] | None = None,
) -> PredicateFn | None:
    """Compile a search condition against a fixed row schema.

    Returns ``None`` when the expression cannot be compiled (contains a
    subquery, an outer-scope or ambiguous column reference, or an
    unbound host variable); callers then fall back to the interpretive
    evaluator, which reproduces the exact error/semantics lazily.
    """
    if not _enabled:
        return None
    if FAULTS.armed:
        # Fault hooks: a "compile" fault raises out of here (callers own
        # the fall-back to the interpreter); a "compiled_eval" fault
        # instruments the returned closure so it can fail per row.
        FAULTS.check(SITE_COMPILE)
    try:
        fn, const = _predicate(expr, schema, params or {})
    except CannotCompile:
        return None
    if const is not None:
        fn = lambda row: const  # noqa: E731
    if FAULTS.armed:
        fn = FAULTS.wrap_callable(SITE_COMPILED_EVAL, fn)
    return fn


def compile_filter(
    expr: Expr | None,
    schema: RelSchema,
    params: dict[str, SqlValue] | None = None,
) -> Callable[[Sequence[SqlValue]], bool] | None:
    """Compile a WHERE-clause row test (the false-interpretation ⌊P⌋).

    The returned closure maps a row tuple to a plain bool: keep the row
    only when the predicate is definitely TRUE.  Returns ``None`` when
    *expr* is ``None`` (nothing to test) or uncompilable.
    """
    if expr is None:
        return None
    predicate = compile_predicate(expr, schema, params)
    if predicate is None:
        return None
    return lambda row: predicate(row) is TRUE


# ----------------------------------------------------------------------
# scalar operands

def _scalar(
    expr: Expr, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[ScalarFn | None, object]:
    """Compile a scalar operand; returns ``(fn, const)``.

    Exactly one of the pair is meaningful: a constant-folded operand
    comes back as ``(None, value)``, a row-dependent one as
    ``(fn, _DYNAMIC)``.
    """
    if isinstance(expr, Literal):
        return None, expr.value
    if isinstance(expr, HostVar):
        if expr.name not in params:
            raise CannotCompile(f"unbound host variable :{expr.name}")
        return None, params[expr.name]
    if isinstance(expr, ColumnRef):
        try:
            index = schema.try_index_of(expr.qualifier, expr.column)
        except AmbiguousColumnError as exc:
            raise CannotCompile(str(exc)) from None
        if index is None:
            raise CannotCompile(f"outer reference {expr!r}")
        return (lambda row: row[index]), _DYNAMIC
    raise CannotCompile(f"{type(expr).__name__} is not a scalar operand")


#: Marker: the scalar/predicate depends on the row.
_DYNAMIC = object()


# ----------------------------------------------------------------------
# predicates

def _predicate(
    expr: Expr, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[PredicateFn | None, Tristate | None]:
    """Compile a condition; returns ``(fn, const)`` with ``const`` set
    (and ``fn`` None) when the whole subtree folded to a constant."""
    if isinstance(expr, Literal):
        if is_null(expr.value):
            return None, UNKNOWN
        if isinstance(expr.value, bool):
            return None, (TRUE if expr.value else FALSE)
        raise CannotCompile(f"literal {expr.value!r} is not a condition")
    if isinstance(expr, Comparison):
        return _comparison(expr, schema, params)
    if isinstance(expr, And):
        return _connective(expr.operands, schema, params, conjunctive=True)
    if isinstance(expr, Or):
        return _connective(expr.operands, schema, params, conjunctive=False)
    if isinstance(expr, Not):
        fn, const = _predicate(expr.operand, schema, params)
        if const is not None:
            return None, ~const
        return (lambda row: ~fn(row)), None
    if isinstance(expr, IsNull):
        return _is_null(expr, schema, params)
    if isinstance(expr, Between):
        return _between(expr, schema, params)
    if isinstance(expr, InList):
        return _in_list(expr, schema, params)
    # Exists / InSubquery / anything exotic: interpreter territory.
    raise CannotCompile(f"cannot compile {type(expr).__name__}")


def _comparison(
    expr: Comparison, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[PredicateFn | None, Tristate | None]:
    op = expr.op
    left_fn, left_const = _scalar(expr.left, schema, params)
    right_fn, right_const = _scalar(expr.right, schema, params)
    if left_fn is None and right_fn is None:
        return None, compare_where(op, left_const, right_const)
    if left_fn is None:
        lv = left_const
        return (lambda row: compare_where(op, lv, right_fn(row))), None
    if right_fn is None:
        rv = right_const
        return (lambda row: compare_where(op, left_fn(row), rv)), None
    return (lambda row: compare_where(op, left_fn(row), right_fn(row))), None


def _connective(
    operands: Sequence[Expr],
    schema: RelSchema,
    params: dict[str, SqlValue],
    conjunctive: bool,
) -> tuple[PredicateFn | None, Tristate | None]:
    """Shared AND/OR compilation with constant folding.

    Constant operands fold into an accumulator; an absorbing constant
    (FALSE for AND, TRUE for OR) decides the whole connective because
    compiled siblings can never raise.  The runtime closure keeps the
    evaluator's short-circuit behaviour over the remaining parts.
    """
    absorbing = FALSE if conjunctive else TRUE
    identity = TRUE if conjunctive else FALSE
    folded = identity
    parts: list[PredicateFn] = []
    for operand in operands:
        fn, const = _predicate(operand, schema, params)
        if const is not None:
            folded = (folded & const) if conjunctive else (folded | const)
            if folded is absorbing:
                return None, absorbing
        else:
            parts.append(fn)
    if not parts:
        return None, folded
    if len(parts) == 1 and folded is identity:
        return parts[0], None

    if conjunctive:
        def fn(row, _parts=tuple(parts), _seed=folded):
            result = _seed
            for part in _parts:
                result = result & part(row)
                if result is FALSE:
                    return FALSE
            return result
    else:
        def fn(row, _parts=tuple(parts), _seed=folded):
            result = _seed
            for part in _parts:
                result = result | part(row)
                if result is TRUE:
                    return TRUE
            return result

    return fn, None


def _is_null(
    expr: IsNull, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[PredicateFn | None, Tristate | None]:
    fn, const = _scalar(expr.operand, schema, params)
    negated = expr.negated
    if fn is None:
        outcome = is_null(const) != negated
        return None, (TRUE if outcome else FALSE)
    return (
        lambda row: TRUE if (is_null(fn(row)) != negated) else FALSE
    ), None


def _between(
    expr: Between, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[PredicateFn | None, Tristate | None]:
    operand_fn, operand_const = _scalar(expr.operand, schema, params)
    low_fn, low_const = _scalar(expr.low, schema, params)
    high_fn, high_const = _scalar(expr.high, schema, params)
    negated = expr.negated

    def fn(row):
        value = operand_const if operand_fn is None else operand_fn(row)
        low = low_const if low_fn is None else low_fn(row)
        high = high_const if high_fn is None else high_fn(row)
        result = compare_where(">=", value, low) & compare_where(
            "<=", value, high
        )
        return ~result if negated else result

    if operand_fn is None and low_fn is None and high_fn is None:
        return None, fn(())
    return fn, None


def _in_list(
    expr: InList, schema: RelSchema, params: dict[str, SqlValue]
) -> tuple[PredicateFn | None, Tristate | None]:
    operand_fn, operand_const = _scalar(expr.operand, schema, params)
    items = [_scalar(item, schema, params) for item in expr.items]
    negated = expr.negated

    def fn(row):
        value = operand_const if operand_fn is None else operand_fn(row)
        result = FALSE
        for item_fn, item_const in items:
            item = item_const if item_fn is None else item_fn(row)
            result = result | compare_where("=", value, item)
            if result is TRUE:
                break
        return ~result if negated else result

    if operand_fn is None and all(item_fn is None for item_fn, _ in items):
        return None, fn(())
    return fn, None
