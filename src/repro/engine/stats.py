"""Execution statistics.

Every operator credits work to a :class:`Stats` object.  The benchmark
harness reports these counters alongside wall-clock time, because the
paper's arguments are about *work avoided* (sorts skipped, nested-loop
probes saved), which the counters expose directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Stats:
    """Counters accumulated during query execution.

    Attributes:
        rows_scanned: rows produced by base-table scans.
        rows_joined: rows produced by join/product operators.
        predicate_evals: WHERE/ON predicate evaluations.
        sorts: number of sort operations performed.
        sort_rows: total rows fed to sort operators (the paper's "expensive
            sort of the query result" shows up here).
        duplicates_removed: rows dropped by duplicate elimination.
        hash_builds: rows inserted into join/distinct hash tables.
        hash_probes: hash table lookups.
        subquery_executions: number of times a correlated subquery was
            (re-)executed — the cost of a naive nested-loop strategy.
        rows_output: rows in the final result.
        predicates_compiled: predicates lowered to row closures (once
            per operator execution, not per row).
        compiled_evals: rows evaluated through a compiled predicate
            instead of the recursive interpreter.
        index_probes: hash-index lookups that replaced a full table
            scan (IndexScan keys and correlated subquery probes).
        index_rows: rows returned by those index probes — compare with
            ``rows_scanned`` to see the scan work avoided.
        plan_cache_hits: physical plans served from the plan cache.
        plan_cache_misses: plans built because the cache had no entry.
        compile_fallbacks: compiled-predicate failures recovered by
            switching (possibly mid-stream) to the interpretive
            evaluator.
        index_fallbacks: hash-index probe failures recovered by scanning
            the base table instead.
        cache_skips: cache lookups skipped fail-closed because the
            fingerprint (or the lookup itself) failed.
        parallel_scans: filtered base-table scans executed as row-range
            morsels on the worker pool instead of one serial loop.
        parallel_joins: hash joins whose build and/or probe phase was
            partitioned across the worker pool.
        parallel_morsels: total morsel tasks dispatched to the pool.
        vectorized_batches: column batches produced by vectorized
            operator kernels (scan, mask-select, slice, probe).
        vectorized_rows: rows flowing through those batches — compare
            with ``predicate_evals`` to see the per-row dispatch avoided.
        vectorized_fallbacks: batch-kernel failures recovered by
            demoting (possibly mid-stream) to the tuple interpreter.
        stats_estimates: cardinality estimates produced by the
            statistics-driven estimator (one per plan estimated).
        adaptive_corrections: plan nodes whose observed cardinality
            was folded into the adaptive correction store.
        estimator_fallbacks: statistics estimations that fell back to
            the heuristic cost model (stale/missing statistics or an
            estimation error) — the degradation ladder's evidence.
        rows_inserted: rows buffered by INSERT execution.
        rows_updated: rows rewritten by UPDATE execution.
        rows_deleted: rows removed by DELETE execution.
    """

    rows_scanned: int = 0
    rows_joined: int = 0
    predicate_evals: int = 0
    sorts: int = 0
    sort_rows: int = 0
    duplicates_removed: int = 0
    hash_builds: int = 0
    hash_probes: int = 0
    subquery_executions: int = 0
    rows_output: int = 0
    predicates_compiled: int = 0
    compiled_evals: int = 0
    index_probes: int = 0
    index_rows: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    compile_fallbacks: int = 0
    index_fallbacks: int = 0
    cache_skips: int = 0
    parallel_scans: int = 0
    parallel_joins: int = 0
    parallel_morsels: int = 0
    vectorized_batches: int = 0
    vectorized_rows: int = 0
    vectorized_fallbacks: int = 0
    stats_estimates: int = 0
    adaptive_corrections: int = 0
    estimator_fallbacks: int = 0
    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dictionary."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def snapshot(self) -> "Stats":
        """An independent copy of the current counter values."""
        return type(self)(**self.as_dict())

    # Arithmetic iterates fields(self) and constructs type(self), so a
    # counter added later — including in a subclass — participates in
    # merging automatically instead of being silently dropped.

    def __add__(self, other: "Stats") -> "Stats":
        merged = type(self)()
        for f in fields(self):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def __sub__(self, other: "Stats") -> "Stats":
        merged = type(self)()
        for f in fields(self):
            setattr(merged, f.name, getattr(self, f.name) - getattr(other, f.name))
        return merged

    def describe(self) -> str:
        """Non-zero counters as a compact single-line summary."""
        parts = [
            f"{name}={value}" for name, value in self.as_dict().items() if value
        ]
        return ", ".join(parts) if parts else "(no work recorded)"
