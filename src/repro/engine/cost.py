"""Cardinality-based cost estimation for physical plans.

The paper positions its rewrites as *strategy-space expanders*: "Once
the optimizer identifies possible transformations, it can then choose
the most appropriate strategy on the basis of its cost model" (§5).
This module supplies that cost model for the physical operators, and
:mod:`repro.core.strategy` uses it to pick among rewrite variants.

Estimates follow the textbook recipe: base-table cardinalities come
from the live :class:`~repro.engine.database.Database`; selectivities
use fixed heuristics (equality 0.1, range 0.3, default 0.5); join output
is ``|L|·|R| / max(|L|, |R|)`` for equi-joins.  Costs are abstract "row
touch" units: a scan costs its cardinality, a sort ``n·log2 n``, a
nested loop ``|L|·|R|``, and a correlated subquery its estimated cost
once per candidate row — which is exactly why flattening wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sql.expressions import (
    Between,
    Comparison,
    Exists,
    Expr,
    InList,
    InSubquery,
    IsNull,
    Not,
    And,
    Or,
    conjuncts,
)
from .database import Database
from .operators import (
    Filter,
    HashDistinct,
    HashJoin,
    HashSemiJoin,
    IndexScan,
    NestedLoopJoin,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    SortDistinct,
    SortMergeJoin,
    SortSetOp,
)

EQUALITY_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 0.3
DEFAULT_SELECTIVITY = 0.5
DISTINCT_RETENTION = 0.6  # fraction of rows surviving duplicate elimination


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated output cardinality and total cost of a plan."""

    rows: float
    cost: float

    def __str__(self) -> str:
        return f"~{self.rows:.0f} rows, cost {self.cost:.0f}"


class CostModel:
    """Estimates plans against a concrete database's cardinalities."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # ------------------------------------------------------------------

    def estimate(self, plan: PlanNode) -> PlanEstimate:
        """Recursively estimate *plan*."""
        if isinstance(plan, SeqScan):
            rows = float(len(self.database.table(plan.table_name)))
            return PlanEstimate(rows, rows)
        if isinstance(plan, IndexScan):
            table_rows = float(len(self.database.table(plan.table_name)))
            rows = max(
                table_rows * EQUALITY_SELECTIVITY ** len(plan.key_columns), 1.0
            )
            if plan.residual is not None:
                rows *= self.predicate_selectivity(plan.residual)
            # A hash probe touches only the matched rows, not the table.
            return PlanEstimate(rows, rows + 1.0)
        if isinstance(plan, Filter):
            child = self.estimate(plan.child)
            selectivity = self.predicate_selectivity(plan.predicate)
            cost = child.cost + child.rows
            cost += self._subquery_cost(plan.predicate) * child.rows
            return PlanEstimate(child.rows * selectivity, cost)
        if isinstance(plan, Project):
            child = self.estimate(plan.child)
            return PlanEstimate(child.rows, child.cost + child.rows)
        if isinstance(plan, (SortDistinct, HashDistinct)):
            child = self.estimate(plan.child)
            rows = child.rows * DISTINCT_RETENTION
            if isinstance(plan, SortDistinct):
                cost = child.cost + _sort_cost(child.rows)
            else:
                cost = child.cost + child.rows
            return PlanEstimate(rows, cost)
        if isinstance(plan, Sort):
            child = self.estimate(plan.child)
            return PlanEstimate(child.rows, child.cost + _sort_cost(child.rows))
        if isinstance(plan, (HashJoin, SortMergeJoin)):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            rows = _equi_join_rows(left.rows, right.rows)
            if isinstance(plan, HashJoin):
                cost = left.cost + right.cost + left.rows + right.rows
            else:
                cost = (
                    left.cost
                    + right.cost
                    + _sort_cost(left.rows)
                    + _sort_cost(right.rows)
                )
            if plan.residual is not None:
                rows *= self.predicate_selectivity(plan.residual)
            return PlanEstimate(rows, cost + rows)
        if isinstance(plan, NestedLoopJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            product = left.rows * right.rows
            cost = left.cost + right.cost + product
            if plan.predicate is None:
                return PlanEstimate(product, cost)
            rows = product * self.predicate_selectivity(plan.predicate)
            return PlanEstimate(rows, cost)
        if isinstance(plan, HashSemiJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            rows = left.rows * DEFAULT_SELECTIVITY
            return PlanEstimate(rows, left.cost + right.cost + left.rows + right.rows)
        if isinstance(plan, SortSetOp):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            rows = min(left.rows, right.rows) * DEFAULT_SELECTIVITY
            cost = (
                left.cost
                + right.cost
                + _sort_cost(left.rows)
                + _sort_cost(right.rows)
            )
            return PlanEstimate(rows, cost)
        # Unknown operator: pass through pessimistically.
        children = [self.estimate(child) for child in plan.children()]
        rows = max((c.rows for c in children), default=1.0)
        cost = sum(c.cost for c in children) + rows
        return PlanEstimate(rows, cost)

    # ------------------------------------------------------------------

    def predicate_selectivity(self, predicate: Expr) -> float:
        """Heuristic selectivity of a search condition."""
        selectivity = 1.0
        for conjunct in conjuncts(predicate):
            selectivity *= self._atom_selectivity(conjunct)
        return max(selectivity, 1e-4)

    def _atom_selectivity(self, atom: Expr) -> float:
        if isinstance(atom, Comparison):
            return (
                EQUALITY_SELECTIVITY
                if atom.op == "="
                else RANGE_SELECTIVITY
            )
        if isinstance(atom, (Between, InList, IsNull)):
            return RANGE_SELECTIVITY
        if isinstance(atom, Or):
            combined = 1.0
            for operand in atom.operands:
                combined *= 1.0 - self._atom_selectivity(operand)
            return 1.0 - combined
        if isinstance(atom, And):
            return self.predicate_selectivity(atom)
        if isinstance(atom, Not):
            return 1.0 - self._atom_selectivity(atom.operand)
        if isinstance(atom, (Exists, InSubquery)):
            return DEFAULT_SELECTIVITY
        return DEFAULT_SELECTIVITY

    def _subquery_cost(self, predicate: Expr) -> float:
        """Estimated cost of one evaluation of embedded subqueries.

        The interpreter re-runs a correlated subquery per candidate row;
        we approximate one run as a product scan of the inner tables.
        """
        total = 0.0
        for node in predicate.walk():
            if isinstance(node, (Exists, InSubquery)):
                total += self._query_scan_cost(node.query)
        return total

    def _query_scan_cost(self, query: object) -> float:
        from ..sql.ast import SelectQuery, SetOperation

        if isinstance(query, SetOperation):
            return self._query_scan_cost(query.left) + self._query_scan_cost(
                query.right
            )
        if not isinstance(query, SelectQuery):
            return 1.0
        cost = 1.0
        for ref in query.tables:
            if self.database.has_table(ref.name):
                cost *= max(float(len(self.database.table(ref.name))), 1.0)
        inner = 0.0
        if query.where is not None:
            inner = self._subquery_cost(query.where) * cost
        return cost + inner


def _sort_cost(rows: float) -> float:
    return rows * math.log2(rows + 2.0)


def _equi_join_rows(left: float, right: float) -> float:
    return (left * right) / max(left, right, 1.0)
