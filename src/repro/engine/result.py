"""Query results and multiset comparison helpers."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from ..types.values import SqlValue, format_value, row_sort_key


class Result:
    """The rows produced by executing a query.

    Row identity for comparisons follows the paper's ≐ semantics: two
    rows are the same when corresponding values are equal or both NULL.
    """

    def __init__(
        self, columns: Sequence[str], rows: Iterable[Sequence[SqlValue]]
    ) -> None:
        self.columns: list[str] = list(columns)
        self.rows: list[tuple] = [tuple(row) for row in rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        """Multiset equality under ≐ (column names must also match)."""
        if not isinstance(other, Result):
            return NotImplemented
        return self.columns == other.columns and self.multiset() == other.multiset()

    def __hash__(self):  # Results are mutable containers
        raise TypeError("Result is unhashable")

    def multiset(self) -> Counter:
        """Row multiset keyed by the canonical (≐-respecting) sort key."""
        return Counter(row_sort_key(row) for row in self.rows)

    def sorted_rows(self) -> list[tuple]:
        """Rows in canonical order (NULLs first), for deterministic output."""
        return sorted(self.rows, key=row_sort_key)

    def has_duplicates(self) -> bool:
        """Whether any row appears more than once (under ≐)."""
        return any(count > 1 for count in self.multiset().values())

    def same_rows(self, other: "Result") -> bool:
        """Multiset equality ignoring column names."""
        return self.multiset() == other.multiset()

    def column_values(self, name: str) -> list[SqlValue]:
        """All values of the named output column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_table(self, limit: int | None = 20) -> str:
        """A printable ASCII table of (up to *limit*) rows."""
        shown = self.sorted_rows()
        truncated = False
        if limit is not None and len(shown) > limit:
            shown = shown[:limit]
            truncated = True
        cells = [[format_value(value) for value in row] for row in shown]
        widths = [len(name) for name in self.columns]
        for row in cells:
            for i, text in enumerate(row):
                widths[i] = max(widths[i], len(text))
        header = " | ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        rule = "-+-".join("-" * width for width in widths)
        lines = [header, rule]
        for row in cells:
            lines.append(
                " | ".join(text.ljust(widths[i]) for i, text in enumerate(row))
            )
        if truncated:
            lines.append(f"... ({len(self.rows)} rows total)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Result({len(self.rows)} rows x {len(self.columns)} columns)"
