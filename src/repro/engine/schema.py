"""Runtime row schemas and name-resolution scopes.

A :class:`RelSchema` describes the shape of an intermediate result: an
ordered list of ``(qualifier, column)`` pairs.  A :class:`Scope` chains a
row/schema frame with an optional outer scope, which is how correlated
subqueries see the columns of their enclosing query block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import AmbiguousColumnError, UnknownColumnError
from ..sql.expressions import ColumnRef
from ..types.values import SqlValue


@dataclass(frozen=True)
class ColumnInfo:
    """One output column of an intermediate result."""

    qualifier: str | None
    name: str

    def matches(self, qualifier: str | None, name: str) -> bool:
        """Whether this column answers to (qualifier, name)."""
        if name != self.name:
            return False
        return qualifier is None or qualifier == self.qualifier


class RelSchema:
    """Ordered columns of a (derived) relation, with lookup by name."""

    def __init__(self, columns: Iterable[ColumnInfo]) -> None:
        self.columns: tuple[ColumnInfo, ...] = tuple(columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    @staticmethod
    def for_table(qualifier: str, column_names: Sequence[str]) -> "RelSchema":
        """Schema of a base-table scan under correlation name *qualifier*."""
        return RelSchema(ColumnInfo(qualifier, name) for name in column_names)

    def concat(self, other: "RelSchema") -> "RelSchema":
        """Schema of the Cartesian product of two inputs."""
        return RelSchema((*self.columns, *other.columns))

    def try_index_of(self, qualifier: str | None, name: str) -> int | None:
        """Index of a column, or None when absent.

        Raises:
            AmbiguousColumnError: if an unqualified *name* matches columns
                from several qualifiers.
        """
        matches = [
            i for i, col in enumerate(self.columns) if col.matches(qualifier, name)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            qualifiers = [self.columns[i].qualifier or "?" for i in matches]
            raise AmbiguousColumnError(name, qualifiers)
        return matches[0]

    def index_of(self, qualifier: str | None, name: str) -> int:
        """Index of a column; raises when absent or ambiguous."""
        index = self.try_index_of(qualifier, name)
        if index is None:
            raise UnknownColumnError(qualifier or "?", name)
        return index

    def qualifiers(self) -> list[str]:
        """Distinct qualifiers appearing in this schema, in order."""
        seen: list[str] = []
        for column in self.columns:
            if column.qualifier and column.qualifier not in seen:
                seen.append(column.qualifier)
        return seen

    def columns_of(self, qualifier: str) -> list[int]:
        """Indexes of all columns belonging to *qualifier*."""
        return [
            i for i, col in enumerate(self.columns) if col.qualifier == qualifier
        ]

    def output_names(self) -> list[str]:
        """Bare column names, for result headers."""
        return [column.name for column in self.columns]


class Scope:
    """A name-resolution frame: a schema plus the current row.

    Scopes chain through ``outer`` so a correlated subquery can resolve
    columns of the enclosing block (innermost frame wins).
    """

    def __init__(
        self,
        schema: RelSchema,
        row: Sequence[SqlValue],
        outer: "Scope | None" = None,
    ) -> None:
        self.schema = schema
        self.row = row
        self.outer = outer

    def resolve(self, ref: ColumnRef) -> SqlValue:
        """The value of *ref* in this scope chain.

        Raises:
            UnknownColumnError: when no frame defines the column.
        """
        scope: Scope | None = self
        while scope is not None:
            index = scope.schema.try_index_of(ref.qualifier, ref.column)
            if index is not None:
                return scope.row[index]
            scope = scope.outer
        raise UnknownColumnError(ref.qualifier or "?", ref.column)

    def child(self, schema: RelSchema, row: Sequence[SqlValue]) -> "Scope":
        """A new innermost frame chained onto this scope."""
        return Scope(schema, row, outer=self)
