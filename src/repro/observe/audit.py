"""The rewrite audit trail: every uniqueness decision, with its witness.

The paper's rewrites all hinge on a provable uniqueness property —
Theorem 1 via Algorithm 1, Theorem 2's at-most-one-match test, Theorem
3 / Corollary 2's duplicate-free operand.  A rule firing (or declining
to fire) is therefore a *decision with evidence*: the bound-attribute
closure per disjunctive term, the table whose key failed to bind, the
flattening precondition that broke.  :class:`AuditTrail` records those
decisions so ``optimize`` can print a human-readable proof sketch and
tooling can assert which theorem justified each rewrite.

Records are plain data (strings, dicts, lists) — no AST references —
so trails serialize directly and survive the queries they describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Decision kinds: a rule applied, a rule examined-and-declined, or a
#: standalone verdict recorded for completeness (e.g. Algorithm 1 on a
#: query no rule needed to touch).
FIRED = "fired"
REJECTED = "rejected"
VERDICT = "verdict"


@dataclass
class AuditRecord:
    """One theorem/algorithm decision.

    Attributes:
        rule: the rewrite rule (or analysis) that made the decision.
        theorem: the paper result invoked — "Theorem 1", "Theorem 2",
            "Corollary 1", "Theorem 3", "Corollary 2", "Algorithm 1",
            "inclusion dependency", or a normalization label.
        decision: ``fired``, ``rejected``, or ``verdict``.
        target: the SQL text the decision was made about.
        note: one-sentence account of why.
        witness: the evidence — bound closures, missing keys, dropped
            clauses — as plain serializable data.
    """

    rule: str
    theorem: str
    decision: str
    target: str
    note: str
    witness: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """The record as an indented multi-line block."""
        lines = [f"[{self.decision.upper()}] {self.theorem} via {self.rule}: {self.note}"]
        lines.append(f"  target: {self.target}")
        for key, value in self.witness.items():
            lines.append(f"  {key}: {_render(value)}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "theorem": self.theorem,
            "decision": self.decision,
            "target": self.target,
            "note": self.note,
            "witness": self.witness,
        }

    def _identity(self) -> tuple:
        return (self.rule, self.theorem, self.decision, self.target, self.note)


class AuditTrail:
    """An ordered, deduplicated list of :class:`AuditRecord`.

    The optimizer's fixpoint loop revisits queries, so identical
    decisions recur across passes; the trail keeps the first occurrence
    only (identity ignores the witness, which is derived from the same
    inputs and therefore equal too).
    """

    def __init__(self) -> None:
        self.records: list[AuditRecord] = []
        self._seen: set[tuple] = set()

    def record(
        self,
        rule: str,
        theorem: str,
        decision: str,
        target: str,
        note: str,
        witness: dict[str, Any] | None = None,
    ) -> AuditRecord:
        """Append a decision (deduplicated); returns the record."""
        entry = AuditRecord(
            rule=rule,
            theorem=theorem,
            decision=decision,
            target=target,
            note=note,
            witness=witness or {},
        )
        identity = entry._identity()
        if identity not in self._seen:
            self._seen.add(identity)
            self.records.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def fired(self) -> list[AuditRecord]:
        """Records of rules that applied."""
        return [r for r in self.records if r.decision == FIRED]

    def rejected(self) -> list[AuditRecord]:
        """Records of rules examined but declined, with the reason."""
        return [r for r in self.records if r.decision == REJECTED]

    def theorems_fired(self) -> list[str]:
        """Theorem labels of the fired decisions, in order."""
        return [r.theorem for r in self.fired()]

    def proof_sketch(self) -> str:
        """The trail as a numbered, human-readable proof sketch."""
        if not self.records:
            return "(no uniqueness decisions were made)"
        blocks = []
        for number, record in enumerate(self.records, start=1):
            body = record.describe().replace("\n", "\n   ")
            blocks.append(f"{number}. {body}")
        return "\n".join(blocks)

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-ready list of the records."""
        return [record.to_dict() for record in self.records]


def _render(value: Any) -> str:
    if isinstance(value, dict):
        return "{" + ", ".join(
            f"{k}: {_render(v)}" for k, v in value.items()
        ) + "}"
    if isinstance(value, (list, tuple)):
        rendered = ", ".join(_render(item) for item in value)
        return f"[{rendered}]"
    return str(value)
