"""Observability: trace spans, EXPLAIN ANALYZE, audit trail, metrics.

Four cooperating pieces, all zero-dependency:

* :mod:`~repro.observe.trace` — hierarchical spans with wall time and
  :class:`~repro.engine.stats.Stats` deltas, near-zero cost when off;
* :mod:`~repro.observe.analyze` — EXPLAIN ANALYZE over instrumented
  plan clones (actual rows, loops, time, per-node q-error);
* :mod:`~repro.observe.audit` — the rewrite audit trail: every
  Theorem 1/2/3 and Algorithm 1 decision with its witness;
* :mod:`~repro.observe.metrics` — a registry exporting engine, cache,
  resilience, and DL/I counters as JSON or Prometheus text.
"""

from .audit import FIRED, REJECTED, VERDICT, AuditRecord, AuditTrail
from .analyze import (
    AnalyzedExecution,
    NodeStats,
    PlanAnalysis,
    clone_plan,
    execute_analyzed,
    explain_analyze,
    instrument_plan,
)
from .metrics import PROCESS_METRICS, MetricsRegistry
from .trace import NULL_SPAN, TRACER, Span, Tracer, set_tracing, tracing_enabled

__all__ = [
    "AuditRecord",
    "AuditTrail",
    "FIRED",
    "REJECTED",
    "VERDICT",
    "AnalyzedExecution",
    "NodeStats",
    "PlanAnalysis",
    "clone_plan",
    "execute_analyzed",
    "explain_analyze",
    "instrument_plan",
    "MetricsRegistry",
    "PROCESS_METRICS",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "TRACER",
    "set_tracing",
    "tracing_enabled",
]
