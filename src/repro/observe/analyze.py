"""EXPLAIN ANALYZE: per-operator actuals over a physical plan.

An *instrumented* execution runs a cloned plan whose nodes count loops,
output rows, and inclusive wall time; afterwards each node is annotated
with those actuals plus the cost model's estimate and the resulting
q-error (``max(est/actual, actual/est)``, both floored at one row — the
standard cardinality-quality measure).

The cached/shared plan is never touched: :func:`clone_plan` makes
shallow per-node copies (rewiring the ``child``/``left``/``right``
links) and the counting wrappers are installed as *instance* attributes
on the clones only.  The normal execution path therefore keeps its
generators bare — this module adds zero cost when analyze mode is off.

Engine imports stay inside function bodies: the engine itself imports
:mod:`repro.observe.trace`, and keeping this module lazily bound
prevents a partially-initialized-package cycle.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from .trace import TRACER, Span

#: Attributes under which plan nodes store their inputs.
_CHILD_ATTRS = ("child", "left", "right")


@dataclass
class NodeStats:
    """Actuals for one plan node across one execution."""

    label: str
    loops: int = 0
    rows: int = 0
    batches: int = 0  # column batches emitted (vectorized mode only)
    seconds: float = 0.0  # inclusive of children, like EXPLAIN ANALYZE
    est_rows: float | None = None
    #: True while the node's batches() wrapper is live, so a batches
    #: implementation that falls back through the node's own rows()
    #: (the default re-batch, or an explicit tuple-path delegation)
    #: does not double-count loops/rows/time.
    suspended: bool = False

    @property
    def q_error(self) -> float | None:
        """max(est/actual, actual/est) per loop, floored at one row."""
        if self.est_rows is None or self.loops == 0:
            return None
        actual = max(self.rows / self.loops, 1.0)
        estimated = max(self.est_rows, 1.0)
        return max(actual / estimated, estimated / actual)


@dataclass
class PlanAnalysis:
    """Per-node actuals for one instrumented plan, keyed by node id."""

    wall_seconds: float = 0.0
    _stats: dict[int, NodeStats] = field(default_factory=dict)

    def register(self, node: Any) -> NodeStats:
        stats = NodeStats(label=node.label())
        self._stats[id(node)] = stats
        return stats

    def for_node(self, node: Any) -> NodeStats | None:
        return self._stats.get(id(node))

    def annotate(self, node: Any) -> str:
        """The EXPLAIN suffix for *node*: actuals, estimate, q-error."""
        stats = self.for_node(node)
        if stats is None:
            return ""
        if stats.loops == 0:
            return "  [never executed]"
        parts = [
            f"actual rows={stats.rows}",
            f"loops={stats.loops}",
            f"time={stats.seconds * 1000:.3f} ms",
        ]
        if stats.batches:
            parts.append(f"batches={stats.batches}")
        if stats.est_rows is not None:
            parts.append(f"est rows={stats.est_rows:.0f}")
            parts.append(f"q-error={stats.q_error:.2f}")
        return "  [" + " ".join(parts) + "]"

    def max_q_error(self) -> float | None:
        """The worst per-node q-error of this execution, or None.

        The per-query cardinality-quality headline: 1.0 means every
        estimate matched its actual; the adaptive loop drives this
        down across repeated analyzed runs.
        """
        errors = [
            stats.q_error
            for stats in self._stats.values()
            if stats.q_error is not None
        ]
        return max(errors) if errors else None

    def attach_estimates(
        self, plan: Any, database: Any, model: Any | None = None
    ) -> None:
        """Fill ``est_rows`` from the cost model, node by node.

        *model* (any object with ``estimate(node)``) selects the
        estimator; default is the heuristic
        :class:`~repro.engine.cost.CostModel` — statistics-driven runs
        pass the estimator their plan was actually costed with, so the
        reported q-error measures the model that made the decisions.
        """
        if model is None:
            from ..engine.cost import CostModel

            model = CostModel(database)
        for node in _walk(plan):
            stats = self.for_node(node)
            if stats is None:
                continue
            try:
                stats.est_rows = float(model.estimate(node).rows)
            except Exception:
                stats.est_rows = None  # estimation must never break EXPLAIN

    def to_dict(self, plan: Any) -> dict[str, Any]:
        """The annotated plan as a nested JSON-ready tree."""
        stats = self.for_node(plan)
        payload: dict[str, Any] = {"operator": plan.label()}
        if stats is not None:
            payload.update(
                actual_rows=stats.rows,
                loops=stats.loops,
                time_ms=stats.seconds * 1000,
            )
            if stats.batches:
                payload["batches"] = stats.batches
            if stats.est_rows is not None:
                payload["est_rows"] = stats.est_rows
                payload["q_error"] = stats.q_error
        children = [self.to_dict(child) for child in plan.children()]
        if children:
            payload["children"] = children
        return payload

    def to_spans(self, plan: Any) -> Span:
        """Synthesize a finished span subtree mirroring the plan.

        Operator generators interleave across the plan, so live spans
        cannot nest around them; instead the recorded actuals become a
        span tree after the fact, attachable to the global tracer.
        """
        stats = self.for_node(plan)
        span = Span(f"operator.{plan.label()}")
        if stats is not None:
            span.ended = stats.seconds  # started stays 0.0: elapsed = seconds
            span.attributes = {"rows": stats.rows, "loops": stats.loops}
        for child in plan.children():
            span.children.append(self.to_spans(child))
        return span


def _walk(node: Any):
    yield node
    for child in node.children():
        yield from _walk(child)


def clone_plan(node: Any) -> Any:
    """Shallow per-node copy of a plan tree.

    Shared, immutable parts (schemas, expressions, key lists) stay
    shared; only the tree structure is duplicated, so instrumentation
    never leaks into plans held by the plan cache.
    """
    clone = copy.copy(node)
    for attr in _CHILD_ATTRS:
        child = getattr(clone, attr, None)
        if child is not None and hasattr(child, "rows") and hasattr(child, "label"):
            setattr(clone, attr, clone_plan(child))
    return clone


def instrument_plan(plan: Any) -> tuple[Any, PlanAnalysis]:
    """A cloned plan whose nodes record actuals into a fresh analysis."""
    analysis = PlanAnalysis()
    clone = clone_plan(plan)
    for node in _walk(clone):
        _instrument_node(node, analysis)
    return clone, analysis


def _instrument_node(node: Any, analysis: PlanAnalysis) -> None:
    stats = analysis.register(node)
    original = type(node).rows  # the plain function, not a bound method
    original_batches = type(node).batches

    def counting_rows(ctx, outer=None, _node=node, _orig=original, _stats=stats):
        if _stats.suspended:
            # This node's batches() wrapper is already accounting; the
            # inner rows() call is its tuple-path fallback, not a loop.
            yield from _orig(_node, ctx, outer)
            return
        _stats.loops += 1
        start = perf_counter()
        try:
            for row in _orig(_node, ctx, outer):
                _stats.seconds += perf_counter() - start
                _stats.rows += 1
                yield row
                start = perf_counter()
            _stats.seconds += perf_counter() - start
        except BaseException:
            _stats.seconds += perf_counter() - start
            raise

    def counting_batches(
        ctx, outer=None, _node=node, _orig=original_batches, _stats=stats
    ):
        _stats.loops += 1
        _stats.suspended = True
        start = perf_counter()
        try:
            for batch in _orig(_node, ctx, outer):
                _stats.seconds += perf_counter() - start
                _stats.rows += batch.length
                _stats.batches += 1
                yield batch
                start = perf_counter()
            _stats.seconds += perf_counter() - start
        except BaseException:
            _stats.seconds += perf_counter() - start
            raise
        finally:
            _stats.suspended = False

    # Instance attributes shadow the class methods for this clone only.
    node.rows = counting_rows
    node.batches = counting_batches


@dataclass
class AnalyzedExecution:
    """Everything one EXPLAIN ANALYZE execution produced."""

    result: Any
    plan: Any
    analysis: PlanAnalysis
    stats: Any
    #: subsystem → degradation-ladder tier when the execution ran under
    #: a health tracker (see :mod:`repro.resilience.health`), else None.
    health: dict[str, str] | None = None

    def explain(self) -> str:
        """The plan tree annotated with actuals (and estimates)."""
        return self.plan.explain(analysis=self.analysis)

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "wall_ms": self.analysis.wall_seconds * 1000,
            "plan": self.analysis.to_dict(self.plan),
            "stats": {
                name: value
                for name, value in self.stats.as_dict().items()
                if value
            },
        }
        max_q_error = self.analysis.max_q_error()
        if max_q_error is not None:
            payload["max_q_error"] = max_q_error
        if self.health is not None:
            payload["health"] = dict(self.health)
        return payload


def execute_analyzed(
    query: Any,
    database: Any,
    params: dict | None = None,
    stats: Any | None = None,
    options: Any | None = None,
    use_indexes: bool = True,
    guard: Any | None = None,
    engine_mode: str | None = None,
    batch_rows: int | None = None,
) -> AnalyzedExecution:
    """Plan *query*, execute an instrumented clone, return the actuals.

    Plans fresh (never from the plan cache — instrumented nodes must not
    be shared) and records per-node loops/rows/time plus the cost
    model's estimates.  Under a vectorized *engine_mode* each node also
    reports the column batches it emitted.  When tracing is enabled the
    per-operator actuals are additionally attached to the global tracer
    as a span subtree.
    """
    from ..engine.planner import Planner, PlannerOptions, execute_plan
    from ..engine.stats import Stats
    from ..sql.parser import parse_query

    if isinstance(query, str):
        query = parse_query(query)
    planner_options = options or PlannerOptions()
    if not use_indexes and planner_options.index_scans:
        from dataclasses import replace

        planner_options = replace(planner_options, index_scans=False)
    stats = stats if stats is not None else Stats()
    planner = Planner(
        database.catalog, planner_options, database=database, stats=stats
    )
    plan = planner.plan(query)
    instrumented, analysis = instrument_plan(plan)
    with TRACER.span("analyze.execute", stats=stats) as span:
        start = perf_counter()
        result = execute_plan(
            instrumented,
            database,
            params=params,
            stats=stats,
            use_indexes=use_indexes,
            guard=guard,
            engine_mode=engine_mode,
            batch_rows=batch_rows,
        )
        analysis.wall_seconds = perf_counter() - start
        if span:
            span.attributes["rows"] = len(result)
        from ..stats.estimator import estimator_for

        model = estimator_for(database, planner_options, stats=stats)
        analysis.attach_estimates(instrumented, database, model=model)
        if TRACER.enabled:
            # While the span is still open the synthesized per-operator
            # subtree nests under it instead of becoming its own root.
            TRACER.attach(analysis.to_spans(instrumented))
    return AnalyzedExecution(
        result=result, plan=instrumented, analysis=analysis, stats=stats
    )


def explain_analyze(
    query: Any,
    database: Any,
    params: dict | None = None,
    options: Any | None = None,
) -> str:
    """One-shot convenience: execute and return the annotated plan."""
    return execute_analyzed(
        query, database, params=params, options=options
    ).explain()
