"""Hierarchical trace spans with a near-zero-cost disabled path.

A :class:`Span` is a context manager recording wall time, free-form
attributes, and — when a stats sink is supplied — the delta of its
counters over the span's lifetime.  Spans nest: entering a span while
another is open attaches it as a child, so one traced query produces a
tree mirroring the layers it passed through (guard → rewrite →
plan cache → planner → execution).

Cost discipline: tracing is off by default, and the instrumented hot
paths guard every site with one attribute test (``TRACER.enabled``)
before building any arguments.  :meth:`Tracer.span` itself returns a
shared no-op context manager when disabled, so even unguarded sites pay
only a method call and an empty ``with``.  This module imports nothing
from the engine — stats sinks are duck-typed on ``snapshot()`` and
``__sub__`` — so any layer can import it without cycles.
"""

from __future__ import annotations

import threading
import time
from typing import Any


class Span:
    """One timed, attributed node of a trace tree.

    Entered spans are wired into the owning tracer's stack; manually
    constructed spans (``tracer=None``) are inert containers used to
    synthesize per-operator subtrees after an instrumented execution.
    """

    __slots__ = (
        "name",
        "attributes",
        "started",
        "ended",
        "stats_delta",
        "children",
        "_tracer",
        "_stats",
        "_before",
    )

    def __init__(
        self,
        name: str,
        attributes: dict[str, Any] | None = None,
        tracer: "Tracer | None" = None,
        stats: Any | None = None,
    ) -> None:
        self.name = name
        self.attributes: dict[str, Any] = attributes or {}
        self.started = 0.0
        self.ended = 0.0
        self.stats_delta: Any | None = None
        self.children: list[Span] = []
        self._tracer = tracer
        self._stats = stats
        self._before = None

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        if self._stats is not None:
            self._before = self._stats.snapshot()
        if self._tracer is not None:
            self._tracer._stack.append(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.ended = time.perf_counter()
        if self._stats is not None and self._before is not None:
            self.stats_delta = self._stats.snapshot() - self._before
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._close(self)
        return False  # never suppress

    # -- reporting ------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds between enter and exit."""
        return self.ended - self.started

    def render(self, indent: int = 0) -> str:
        """The span subtree as an indented text block."""
        pad = "  " * indent
        line = f"{pad}{self.name} ({self.elapsed * 1000:.3f} ms)"
        if self.attributes:
            rendered = ", ".join(
                f"{key}={value}" for key, value in self.attributes.items()
            )
            line += f" [{rendered}]"
        if self.stats_delta is not None:
            described = self.stats_delta.describe()
            if described and described != "(no work recorded)":
                line += f" {{{described}}}"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the span subtree."""
        payload: dict[str, Any] = {
            "name": self.name,
            "elapsed_ms": self.elapsed * 1000,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.stats_delta is not None:
            payload["stats"] = {
                name: value
                for name, value in self.stats_delta.as_dict().items()
                if value
            }
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def walk(self):
        """Yield this span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()


class _NullSpan:
    """The shared disabled-path context manager: enters to None."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees for one process.

    ``enabled`` gates everything; ``max_spans`` bounds memory — once the
    budget is spent further spans degrade to the shared no-op (the trace
    is truncated, never the execution).

    Thread safety: the open-span stack is *per thread*, so spans opened
    on different service workers nest within their own thread's tree
    and never interleave; completed root trees are collected under a
    leaf lock.  One query's span tree therefore stays coherent no
    matter which worker ran it.
    """

    def __init__(self, max_spans: int = 10_000, max_roots: int = 256) -> None:
        self.enabled = False
        self.max_spans = max_spans
        self.max_roots = max_roots
        self.truncated = 0
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._count = 0

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(
        self, name: str, stats: Any | None = None, **attributes: Any
    ) -> Any:
        """A context manager for one traced section.

        Yields the :class:`Span` when tracing is enabled, else None —
        call sites guard optional attribute updates with ``if span:``.
        """
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            if self._count >= self.max_spans:
                self.truncated += 1
                return NULL_SPAN
            self._count += 1
        return Span(name, dict(attributes) or {}, tracer=self, stats=stats)

    def attach(self, span: Span) -> None:
        """Adopt an already-finished span tree (synthesized subtrees)."""
        if not self.enabled:
            return
        size = sum(1 for _ in span.walk())
        with self._lock:
            if self._count + size > self.max_spans:
                self.truncated += size
                return
            self._count += size
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            with self._lock:
                if len(self.roots) < self.max_roots:
                    self.roots.append(span)

    def _close(self, span: Span) -> None:
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exception unwound past open children
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                if len(self.roots) < self.max_roots:
                    self.roots.append(span)

    # -- inspection -----------------------------------------------------

    def last_root(self) -> Span | None:
        """The most recently completed top-level span, if any."""
        return self.roots[-1] if self.roots else None

    def render(self) -> str:
        """Every collected root span tree, rendered."""
        if not self.roots:
            return "(no spans recorded)"
        blocks = [root.render() for root in self.roots]
        if self.truncated:
            blocks.append(f"({self.truncated} span(s) dropped over budget)")
        return "\n".join(blocks)

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-ready list of the collected root span trees."""
        return [root.to_dict() for root in self.roots]

    def clear(self) -> None:
        """Drop collected spans and reset the budget (keeps ``enabled``)."""
        with self._lock:
            self.roots.clear()
            self._local = threading.local()  # drops every thread's stack
            self._count = 0
            self.truncated = 0


#: The process-wide tracer every instrumented layer reports to.
TRACER = Tracer()


def set_tracing(enabled: bool) -> bool:
    """Toggle the global tracer; returns the previous state."""
    previous = TRACER.enabled
    TRACER.enabled = enabled
    return previous


def tracing_enabled() -> bool:
    """Whether the global tracer is currently collecting spans."""
    return TRACER.enabled
