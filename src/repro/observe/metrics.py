"""Metrics registry: engine counters, cache rates, resilience events,
and DL/I call counts, exportable as JSON or Prometheus-style text.

Naming follows the Prometheus conventions: every metric is prefixed
with the ``repro_`` namespace, cumulative counters end in ``_total``,
point-in-time values are gauges, and dimensions ride in labels —
``repro_ims_dli_calls_total{call="GNP",segment="PARTS"} 42``.  A
registry can scope one query (``for_query``-style throwaway instances)
or the whole process (:data:`PROCESS_METRICS`).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterable

LabelKey = tuple[tuple[str, str], ...]


class MetricsRegistry:
    """A flat store of named, labelled numeric series.

    Thread-safe: ``inc``/``set`` run under a per-registry leaf lock, so
    the shared :data:`PROCESS_METRICS` (and a
    :class:`~repro.service.QueryService`'s registry, which every worker
    folds per-query counters into) never loses an update under
    concurrent recording.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._values: dict[tuple[str, LabelKey], float] = {}
        self._lock = threading.Lock()

    # -- primitives -----------------------------------------------------

    @staticmethod
    def _key(name: str, labels: dict[str, Any]) -> tuple[str, LabelKey]:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add *value* to the counter *name* (creating it at 0)."""
        key = self._key(name, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def set(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge (or sampled cumulative counter) *name*."""
        with self._lock:
            self._values[self._key(name, labels)] = float(value)

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a series (0.0 when never touched)."""
        with self._lock:
            return self._values.get(self._key(name, labels), 0.0)

    def series(self) -> Iterable[tuple[str, LabelKey, float]]:
        """Every (name, labels, value), sorted for stable output."""
        with self._lock:
            snapshot = sorted(self._values.items())
        for (name, labels), value in snapshot:
            yield name, labels, value

    # -- recorders for the engine's own stat carriers -------------------

    def record_stats(self, stats: Any, prefix: str = "engine") -> None:
        """Fold a :class:`~repro.engine.stats.Stats` (or any object with
        ``as_dict``) into ``<prefix>_<counter>_total`` counters."""
        for counter, value in stats.as_dict().items():
            if value:
                self.inc(f"{prefix}_{counter}_total", value)

    def record_caches(self, stats: dict[str, dict[str, int]] | None = None) -> None:
        """Sample every registered cache's cumulative hit/miss counters
        and current occupancy (:func:`repro.cache.cache_stats` shape)."""
        if stats is None:
            from ..cache import cache_stats  # deferred: keeps this module cycle-free

            stats = cache_stats()
        for cache_name, counters in stats.items():
            self.set("cache_hits_total", counters["hits"], cache=cache_name)
            self.set("cache_misses_total", counters["misses"], cache=cache_name)
            self.set("cache_entries", counters["entries"], cache=cache_name)

    def record_gateway(self, gateway_stats: Any) -> None:
        """Fold one IMS gateway execution's :class:`GatewayStats`."""
        for (call, segment), count in gateway_stats.dli.calls.items():
            self.inc("ims_dli_calls_total", count, call=call, segment=segment)
        if gateway_stats.retries:
            self.inc("ims_retries_total", gateway_stats.retries)
        if gateway_stats.strategy:
            self.inc("ims_executions_total", 1, strategy=gateway_stats.strategy)
        if gateway_stats.used_post_processing:
            self.inc("ims_post_processed_total")
            self.inc(
                "ims_post_filter_evals_total", gateway_stats.post_filter_evals
            )

    def record_vectorized(self, stats: Any) -> None:
        """Fold one execution's columnar-engine counters.

        Emits the dedicated ``vectorized_*_total`` series (batches and
        rows processed through column kernels, and demotions to the
        tuple interpreter), independent of the ``engine_*_total``
        counters :meth:`record_stats` produces.
        """
        if stats is None:
            return
        if stats.vectorized_batches:
            self.inc("vectorized_batches_total", stats.vectorized_batches)
        if stats.vectorized_rows:
            self.inc("vectorized_rows_total", stats.vectorized_rows)
        if stats.vectorized_fallbacks:
            self.inc(
                "vectorized_fallbacks_total", stats.vectorized_fallbacks
            )

    def record_estimator(self, stats: Any) -> None:
        """Fold one execution's cardinality-estimator counters.

        Emits ``stats_estimates_total`` (plans costed with table
        statistics), ``adaptive_corrections_total`` (observed-row
        corrections folded by the adaptive feedback loop), and
        ``estimator_fallbacks_total`` (demotions to the heuristic cost
        model — the degradation ladder's evidence stream).
        """
        if stats is None:
            return
        if getattr(stats, "stats_estimates", 0):
            self.inc("stats_estimates_total", stats.stats_estimates)
        if getattr(stats, "adaptive_corrections", 0):
            self.inc(
                "adaptive_corrections_total", stats.adaptive_corrections
            )
        if getattr(stats, "estimator_fallbacks", 0):
            self.inc(
                "estimator_fallbacks_total", stats.estimator_fallbacks
            )

    def record_outcome(self, outcome: Any) -> None:
        """Fold one guarded execution's resilience events."""
        self.inc("queries_total")
        self.record_vectorized(getattr(outcome, "stats", None))
        self.record_estimator(getattr(outcome, "stats", None))
        analyzed = getattr(outcome, "analysis", None)
        if analyzed is not None:
            # Most recent analyzed query's worst per-node q-error — a
            # gauge, so dashboards watch the adaptive loop converge.
            q_error = analyzed.analysis.max_q_error()
            if q_error is not None:
                self.set("query_max_q_error", q_error)
        if outcome.rewritten:
            self.inc("queries_rewritten_total")
        for rule in outcome.rules:
            self.inc("rewrites_total", 1, rule=rule)
        if outcome.verified:
            self.inc("safe_mode_checks_total")
        if outcome.mismatch:
            self.inc("safe_mode_mismatches_total")
            self.inc("cache_evictions_total", outcome.evicted)
        for rule in outcome.quarantined:
            self.inc("rules_quarantined_total", 1, rule=rule)

    def record_http(
        self, route: str, status: int, seconds: float
    ) -> None:
        """Fold one HTTP request served by :mod:`repro.net.server`."""
        self.inc("http_requests_total", route=route, status=str(status))
        self.inc("http_request_seconds_total", seconds, route=route)

    def record_audit(self, trail: Any) -> None:
        """Count an audit trail's decisions by rule and outcome."""
        for record in trail:
            self.inc(
                "rewrite_decisions_total",
                1,
                rule=record.rule,
                decision=record.decision,
            )

    # -- export ---------------------------------------------------------

    def full_name(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def as_dict(self) -> dict[str, float]:
        """Flat ``{rendered_series_name: value}`` mapping."""
        flattened: dict[str, float] = {}
        for name, labels, value in self.series():
            flattened[self._render_series(name, labels)] = value
        return flattened

    def to_json(self) -> str:
        payload = {
            "namespace": self.namespace,
            "metrics": [
                {
                    "name": self.full_name(name),
                    "labels": dict(labels),
                    "value": value,
                }
                for name, labels, value in self.series()
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one # TYPE per metric)."""
        lines: list[str] = []
        typed: set[str] = set()
        for name, labels, value in self.series():
            full = self.full_name(name)
            if full not in typed:
                typed.add(full)
                kind = "counter" if name.endswith("_total") else "gauge"
                lines.append(f"# TYPE {full} {kind}")
            lines.append(f"{self._render_series(name, labels)} {_fmt(value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def write(self, path: str) -> str:
        """Write this registry to *path*: ``.prom`` selects the
        Prometheus text format, anything else gets JSON."""
        text = (
            self.to_prometheus()
            if str(path).endswith(".prom")
            else self.to_json()
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return path

    def _render_series(self, name: str, labels: LabelKey) -> str:
        full = self.full_name(name)
        if not labels:
            return full
        rendered = ",".join(
            f'{key}="{_escape(value)}"' for key, value in labels
        )
        return f"{full}{{{rendered}}}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _fmt(value: float) -> str:
    return str(int(value)) if value == int(value) else repr(value)


#: Process-lifetime registry — the CLI and bench harness fold per-query
#: registries (or sample the caches) into this one.
PROCESS_METRICS = MetricsRegistry()
